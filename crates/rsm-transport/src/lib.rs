//! # rsm-transport
//!
//! Framed socket transport for the threaded runtime: real TCP (loopback
//! or otherwise) and Unix-domain-socket links carrying the binary wire
//! format defined in [`rsm_core::wire`].
//!
//! The crate is deliberately small and `std`-only — blocking sockets and
//! one thread per direction of each link, matching the runtime's
//! thread-per-replica architecture:
//!
//! * [`Endpoint`] — a TCP socket address or a Unix socket path.
//! * [`Listener`] — binds an endpoint and spawns one reader thread per
//!   accepted connection. Each reader decodes length-prefixed frames
//!   ([`FrameHeader`](rsm_core::wire::FrameHeader) + payload), verifies
//!   the checksum, and hands the decoded message to a deliver callback.
//! * [`Hub`] — a node's outbound side: one [`PeerLink`] writer thread
//!   per peer with a **bounded, blocking** queue (backpressure, never
//!   drops), plus a one-entry encode cache keyed by
//!   [`WireMsg::shares_encoding`](rsm_core::wire::WireMsg::shares_encoding)
//!   so a broadcast encodes its payload **once** and every per-peer send
//!   reuses the same `Bytes` buffer.
//! * [`MsgSink`] — the object-safe sending trait the runtime stores, so
//!   its node harness stays free of `WireMsg` bounds.
//!
//! ## Link semantics
//!
//! Each ordered replica pair `(i → j)` uses one connection, dialed by
//! `i`'s writer thread and accepted by `j`'s listener, so delivery is
//! FIFO per link — the channel assumption every protocol in the
//! workspace relies on. Writer threads coalesce all queued due frames
//! into a single vectored write (pipelining), honour a per-link minimum
//! delay (the runtime's WAN emulation rides on it), and reconnect with
//! exponential backoff, retaining unsent frames. Frames carry a strictly
//! increasing per-link sequence number; receivers drop non-increasing
//! sequences so a resend after a torn connection can never duplicate a
//! delivered frame.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod endpoint;
mod hub;
mod link;
mod listener;
mod queue;

pub use endpoint::Endpoint;
pub use hub::{Hub, MsgSink, TransportMetrics};
pub use link::PeerLink;
pub use listener::Listener;

#[cfg(test)]
mod tests;
