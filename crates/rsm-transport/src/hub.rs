//! A node's outbound fan-out: per-peer links plus the encode-once cache.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use rsm_core::id::ReplicaId;
use rsm_core::wire::{checksum, encode_payload, FrameHeader, WireMsg};

use crate::endpoint::Endpoint;
use crate::link::{OutFrame, PeerLink};

/// Object-safe message sink: what the runtime's node harness holds so it
/// can stay generic over the protocol without a `WireMsg` bound. The
/// socket transport's implementation is [`Hub`].
pub trait MsgSink<M>: Send {
    /// Sends `msg` to replica `to`. Self-sends are delivered locally
    /// without touching a socket or encoding anything.
    fn send_msg(&mut self, to: ReplicaId, msg: M);
}

/// A cloneable, lock-free view of a hub's per-peer outbound queue
/// depths, readable after the hub itself has moved into its node
/// thread. Admission control samples it to detect a peer link whose
/// socket (or emulated WAN delay) has fallen far behind.
#[derive(Clone, Default)]
pub struct OutboundDepth {
    gauges: Vec<Arc<AtomicUsize>>,
}

impl OutboundDepth {
    /// The deepest per-peer outbound queue right now (0 with no peers).
    pub fn max(&self) -> usize {
        self.gauges
            .iter()
            .map(|g| g.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for OutboundDepth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutboundDepth")
            .field("max", &self.max())
            .finish()
    }
}

struct EncodeCache<M> {
    msg: M,
    payload: Bytes,
    checksum: u32,
}

struct Peer {
    link: PeerLink,
    delay: Duration,
    /// Strictly increasing per-link frame sequence, the receiver's
    /// reconnect dedup key.
    seq: u64,
}

/// The outbound half of one replica: a [`PeerLink`] per peer and a
/// one-entry encode cache.
///
/// The cache is what makes broadcasts zero-re-encode: protocols send the
/// same `Arc`-shared batch message to every peer back-to-back, and
/// [`WireMsg::shares_encoding`] recognises the repeat, so the payload is
/// encoded (and checksummed) once and every per-peer frame clones the
/// same `Bytes` buffer. Only the 32-byte header differs per peer.
pub struct Hub<M: WireMsg> {
    from: ReplicaId,
    peers: Vec<Option<Peer>>,
    loopback: Box<dyn FnMut(M) + Send>,
    cache: Option<EncodeCache<M>>,
}

impl<M: WireMsg> Hub<M> {
    /// Creates the hub for replica `from`. `loopback` receives self-sends
    /// (typically forwarding into the node's own inbox).
    pub fn new(from: ReplicaId, loopback: Box<dyn FnMut(M) + Send>) -> Hub<M> {
        Hub {
            from,
            peers: Vec::new(),
            loopback,
            cache: None,
        }
    }

    /// Adds the link to peer `to` at `endpoint`. `delay` is the minimum
    /// link latency applied before frames hit the socket (the runtime's
    /// WAN emulation; `Duration::ZERO` for plain loopback).
    pub fn add_peer(&mut self, to: ReplicaId, endpoint: Endpoint, delay: Duration) {
        let idx = to.index();
        if self.peers.len() <= idx {
            self.peers.resize_with(idx + 1, || None);
        }
        self.peers[idx] = Some(Peer {
            link: PeerLink::spawn(endpoint),
            delay,
            seq: 0,
        });
    }

    /// A depth gauge over every peer link added so far. Grab it before
    /// handing the hub to its node thread; links added later are not
    /// covered.
    pub fn outbound_depth(&self) -> OutboundDepth {
        OutboundDepth {
            gauges: self
                .peers
                .iter()
                .flatten()
                .map(|p| p.link.depth_handle())
                .collect(),
        }
    }

    /// Encoded payload + checksum for `msg`, reusing the cached buffer
    /// when `msg` shares its encoding with the previous send.
    fn payload_for(&mut self, msg: &M) -> (Bytes, u32) {
        if let Some(cache) = &self.cache {
            if msg.shares_encoding(&cache.msg) {
                return (cache.payload.clone(), cache.checksum);
            }
        }
        let payload = encode_payload(msg);
        let sum = checksum(&payload);
        self.cache = Some(EncodeCache {
            msg: msg.clone(),
            payload: payload.clone(),
            checksum: sum,
        });
        (payload, sum)
    }
}

impl<M: WireMsg> MsgSink<M> for Hub<M> {
    fn send_msg(&mut self, to: ReplicaId, msg: M) {
        if to == self.from {
            (self.loopback)(msg);
            return;
        }
        let (payload, sum) = self.payload_for(&msg);
        let peer = match self.peers.get_mut(to.index()).and_then(Option::as_mut) {
            Some(p) => p,
            None => return, // Unknown peer: drop, like an unreachable host.
        };
        peer.seq += 1;
        let header = FrameHeader {
            from: self.from,
            to,
            len: payload.len() as u32,
            seq: peer.seq,
            checksum: sum,
        }
        .encode();
        peer.link.send(OutFrame {
            header,
            payload,
            due: Instant::now() + peer.delay,
        });
    }
}
