//! A node's outbound fan-out: per-peer links plus the encode-once cache.

use std::time::{Duration, Instant};

use bytes::Bytes;
use rsm_core::id::ReplicaId;
use rsm_core::wire::{checksum, encode_payload, FrameHeader, WireMsg, MSG_HEADER_BYTES};
use rsm_obs::{Counter, Gauge, Registry};

use crate::endpoint::Endpoint;
use crate::link::{OutFrame, PeerLink};

/// Object-safe message sink: what the runtime's node harness holds so it
/// can stay generic over the protocol without a `WireMsg` bound. The
/// socket transport's implementation is [`Hub`].
pub trait MsgSink<M>: Send {
    /// Sends `msg` to replica `to`. Self-sends are delivered locally
    /// without touching a socket or encoding anything.
    fn send_msg(&mut self, to: ReplicaId, msg: M);
}

/// Shared counters for one node's transport activity. The cells are
/// plain `rsm-obs` counters: created detached by `Default` (they still
/// count, just unobserved) or adopted into a metrics [`Registry`] via
/// [`TransportMetrics::register`], where they appear as
/// `r<node>.transport.*`. Cloning shares the cells.
#[derive(Clone, Debug, Default)]
pub struct TransportMetrics {
    /// Frames handed to peer links (self-sends excluded).
    pub frames_sent: Counter,
    /// Header + payload bytes handed to peer links.
    pub bytes_sent: Counter,
    /// Verified frames delivered by the listener.
    pub frames_recv: Counter,
    /// Header + payload bytes of verified delivered frames.
    pub bytes_recv: Counter,
    /// Successful redials after a torn connection (per-link dials beyond
    /// the first).
    pub reconnects: Counter,
    /// Frames dropped by the receiver's per-sender sequence dedup (a
    /// reconnect resend overlapped what was already delivered).
    pub dup_frames: Counter,
}

impl TransportMetrics {
    /// Counters registered under `r<node>.transport.*` in `registry`.
    pub fn register(registry: &Registry, node: u16) -> TransportMetrics {
        let name = |metric: &str| format!("r{node}.transport.{metric}");
        TransportMetrics {
            frames_sent: registry.counter(&name("frames_sent")),
            bytes_sent: registry.counter(&name("bytes_sent")),
            frames_recv: registry.counter(&name("frames_recv")),
            bytes_recv: registry.counter(&name("bytes_recv")),
            reconnects: registry.counter(&name("reconnects")),
            dup_frames: registry.counter(&name("dup_frames")),
        }
    }
}

struct EncodeCache<M> {
    msg: M,
    payload: Bytes,
    checksum: u32,
}

struct Peer {
    link: PeerLink,
    delay: Duration,
    /// Strictly increasing per-link frame sequence, the receiver's
    /// reconnect dedup key.
    seq: u64,
}

/// The outbound half of one replica: a [`PeerLink`] per peer and a
/// one-entry encode cache.
///
/// The cache is what makes broadcasts zero-re-encode: protocols send the
/// same `Arc`-shared batch message to every peer back-to-back, and
/// [`WireMsg::shares_encoding`] recognises the repeat, so the payload is
/// encoded (and checksummed) once and every per-peer frame clones the
/// same `Bytes` buffer. Only the 32-byte header differs per peer.
pub struct Hub<M: WireMsg> {
    from: ReplicaId,
    peers: Vec<Option<Peer>>,
    loopback: Box<dyn FnMut(M) + Send>,
    cache: Option<EncodeCache<M>>,
    metrics: TransportMetrics,
}

impl<M: WireMsg> Hub<M> {
    /// Creates the hub for replica `from`. `loopback` receives self-sends
    /// (typically forwarding into the node's own inbox).
    pub fn new(from: ReplicaId, loopback: Box<dyn FnMut(M) + Send>) -> Hub<M> {
        Hub {
            from,
            peers: Vec::new(),
            loopback,
            cache: None,
            metrics: TransportMetrics::default(),
        }
    }

    /// Replaces the hub's outbound counters (typically with
    /// registry-backed cells from [`TransportMetrics::register`]). Call
    /// **before** [`add_peer`](Hub::add_peer): links spawned earlier keep
    /// the previous reconnect counter.
    pub fn set_metrics(&mut self, metrics: TransportMetrics) {
        self.metrics = metrics;
    }

    /// Adds the link to peer `to` at `endpoint`. `delay` is the minimum
    /// link latency applied before frames hit the socket (the runtime's
    /// WAN emulation; `Duration::ZERO` for plain loopback).
    pub fn add_peer(&mut self, to: ReplicaId, endpoint: Endpoint, delay: Duration) {
        let idx = to.index();
        if self.peers.len() <= idx {
            self.peers.resize_with(idx + 1, || None);
        }
        self.peers[idx] = Some(Peer {
            link: PeerLink::spawn(endpoint, self.metrics.reconnects.clone()),
            delay,
            seq: 0,
        });
    }

    /// The `(peer, depth gauge)` pair of every peer link added so far —
    /// the gauges mirror each link's queued-frame count, updated by the
    /// queue itself. Grab them before handing the hub to its node
    /// thread; links added later are not covered.
    pub fn depth_gauges(&self) -> Vec<(ReplicaId, Gauge)> {
        self.peers
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                p.as_ref()
                    .map(|p| (ReplicaId::new(i as u16), p.link.depth_gauge()))
            })
            .collect()
    }

    /// Encoded payload + checksum for `msg`, reusing the cached buffer
    /// when `msg` shares its encoding with the previous send.
    fn payload_for(&mut self, msg: &M) -> (Bytes, u32) {
        if let Some(cache) = &self.cache {
            if msg.shares_encoding(&cache.msg) {
                return (cache.payload.clone(), cache.checksum);
            }
        }
        let payload = encode_payload(msg);
        let sum = checksum(&payload);
        self.cache = Some(EncodeCache {
            msg: msg.clone(),
            payload: payload.clone(),
            checksum: sum,
        });
        (payload, sum)
    }
}

impl<M: WireMsg> MsgSink<M> for Hub<M> {
    fn send_msg(&mut self, to: ReplicaId, msg: M) {
        if to == self.from {
            (self.loopback)(msg);
            return;
        }
        let (payload, sum) = self.payload_for(&msg);
        let peer = match self.peers.get_mut(to.index()).and_then(Option::as_mut) {
            Some(p) => p,
            None => return, // Unknown peer: drop, like an unreachable host.
        };
        self.metrics.frames_sent.inc();
        self.metrics
            .bytes_sent
            .add((MSG_HEADER_BYTES + payload.len()) as u64);
        peer.seq += 1;
        let header = FrameHeader {
            from: self.from,
            to,
            len: payload.len() as u32,
            seq: peer.seq,
            checksum: sum,
        }
        .encode();
        peer.link.send(OutFrame {
            header,
            payload,
            due: Instant::now() + peer.delay,
        });
    }
}
