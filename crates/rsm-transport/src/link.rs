//! Outbound side: one writer thread per peer link.

use std::collections::VecDeque;
use std::io::{IoSlice, Write};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use rsm_core::wire::MSG_HEADER_BYTES;
use rsm_obs::{Counter, Gauge};

use crate::endpoint::{Conn, Endpoint};
use crate::queue::{bounded, QueueReceiver, QueueSender};

/// An encoded frame queued on a link: pre-built header, shared payload
/// buffer, and the earliest instant it may hit the socket (the runtime's
/// WAN emulation: `due = enqueue + one_way(from, to) × scale`).
pub(crate) struct OutFrame {
    pub(crate) header: [u8; MSG_HEADER_BYTES],
    pub(crate) payload: Bytes,
    pub(crate) due: Instant,
}

/// Most frames coalesced into one vectored write; two iovecs per frame
/// keeps the batch far under any platform's `IOV_MAX`.
const MAX_COALESCE: usize = 64;

/// Outbound queue capacity per link. Sends block (never drop) when a
/// peer's socket falls this far behind — backpressure propagates to the
/// protocol thread, which is the correct failure mode for gap-free FIFO
/// links.
const LINK_QUEUE_CAP: usize = 4096;

const BACKOFF_START: Duration = Duration::from_micros(200);
const BACKOFF_MAX: Duration = Duration::from_millis(100);

/// One direction of a replica pair: a bounded queue drained by a
/// dedicated writer thread that dials the peer lazily, coalesces queued
/// due frames into a single vectored write, and reconnects with
/// exponential backoff, retaining every frame it could not prove fully
/// written.
pub struct PeerLink {
    tx: Option<QueueSender<OutFrame>>,
    handle: Option<JoinHandle<()>>,
}

impl PeerLink {
    /// Spawns the writer thread for the link to `endpoint`. `reconnects`
    /// is bumped on every successful dial after the first (a torn
    /// connection was replaced).
    pub(crate) fn spawn(endpoint: Endpoint, reconnects: Counter) -> PeerLink {
        let (tx, rx) = bounded(LINK_QUEUE_CAP);
        let handle = std::thread::Builder::new()
            .name("rsm-writer".into())
            .spawn(move || writer_loop(&endpoint, &rx, &reconnects))
            .expect("spawn link writer thread");
        PeerLink {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// A lock-free handle on this link's queued-frame count.
    pub(crate) fn depth_gauge(&self) -> Gauge {
        self.tx
            .as_ref()
            .expect("link queue alive until drop")
            .depth_gauge()
    }

    /// Enqueues a frame, blocking while the link queue is full.
    pub(crate) fn send(&self, frame: OutFrame) {
        if let Some(tx) = &self.tx {
            // Err only if the writer died (shutdown race): drop silently,
            // links are lossy at teardown by design.
            let _ = tx.send(frame);
        }
    }
}

impl Drop for PeerLink {
    fn drop(&mut self) {
        // Dropping the sender lets the writer drain its queue and exit.
        self.tx = None;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn writer_loop(endpoint: &Endpoint, rx: &QueueReceiver<OutFrame>, reconnects: &Counter) {
    let mut conn: Option<Conn> = None;
    let mut connected_before = false;
    let mut pending: VecDeque<OutFrame> = VecDeque::new();
    let mut carry: Option<OutFrame> = None;
    loop {
        // Refill: keep at least one frame to write, honouring due times.
        if pending.is_empty() {
            let first = match carry.take().or_else(|| rx.recv()) {
                Some(f) => f,
                None => return, // Hub dropped and queue drained.
            };
            let now = Instant::now();
            if first.due > now {
                std::thread::sleep(first.due - now);
            }
            pending.push_back(first);
            // Coalesce whatever else is already due.
            let now = Instant::now();
            while pending.len() < MAX_COALESCE {
                match rx.try_recv() {
                    Some(f) if f.due <= now => pending.push_back(f),
                    Some(f) => {
                        carry = Some(f);
                        break;
                    }
                    None => break,
                }
            }
        }
        // Connect (lazily / after a failure), giving up only once the
        // hub is gone — an unreachable peer must not wedge shutdown.
        let mut backoff = BACKOFF_START;
        while conn.is_none() {
            match Conn::connect(endpoint) {
                Ok(c) => {
                    if connected_before {
                        reconnects.inc();
                    }
                    connected_before = true;
                    conn = Some(c);
                }
                Err(_) => {
                    if rx.senders_gone() {
                        return;
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_MAX);
                }
            }
        }
        let c = conn.as_mut().expect("connected above");
        if flush(c, &mut pending).is_err() {
            // Torn connection: drop it and redial. `flush` already
            // removed every fully written frame; the partially written
            // one is resent whole on the new connection, and the
            // receiver's per-link sequence dedup swallows any overlap.
            if let Some(c) = conn.take() {
                c.shutdown();
            }
        }
    }
}

/// Writes every frame in `pending` as one pipelined vectored write
/// (looping on partial writes). On success `pending` is empty; on error
/// it retains exactly the frames not fully handed to the kernel.
fn flush(conn: &mut Conn, pending: &mut VecDeque<OutFrame>) -> std::io::Result<()> {
    let bufs: Vec<&[u8]> = pending
        .iter()
        .flat_map(|f| [&f.header[..], &f.payload[..]])
        .collect();
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut written = 0usize;
    let result = write_all_vectored(conn, &bufs, &mut written);
    debug_assert!(result.is_ok() == (written == total));
    drop(bufs);
    if result.is_ok() {
        pending.clear();
        return Ok(());
    }
    // Drop the frames that were fully written before the error.
    let mut covered = 0usize;
    while let Some(f) = pending.front() {
        let frame_len = MSG_HEADER_BYTES + f.payload.len();
        if covered + frame_len > written {
            break;
        }
        covered += frame_len;
        pending.pop_front();
    }
    result
}

/// Vectored `write_all`: advances through `bufs` across partial writes,
/// tracking progress in `written` so the caller can tell which buffers
/// were fully consumed when an error cuts the write short.
fn write_all_vectored(conn: &mut Conn, bufs: &[&[u8]], written: &mut usize) -> std::io::Result<()> {
    let mut idx = 0usize; // First buffer not fully written.
    let mut off = 0usize; // Bytes of bufs[idx] already written.
    while idx < bufs.len() {
        if off == bufs[idx].len() {
            idx += 1;
            off = 0;
            continue;
        }
        let iov: Vec<IoSlice<'_>> = std::iter::once(&bufs[idx][off..])
            .chain(bufs[idx + 1..].iter().copied())
            .map(IoSlice::new)
            .collect();
        let n = match conn.write_vectored(&iov) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        *written += n;
        let mut left = n;
        while left > 0 {
            let remaining_in_buf = bufs[idx].len() - off;
            if left < remaining_in_buf {
                off += left;
                left = 0;
            } else {
                left -= remaining_in_buf;
                idx += 1;
                off = 0;
            }
        }
    }
    Ok(())
}
