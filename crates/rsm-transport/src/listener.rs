//! Inbound side: accept loop + per-connection frame readers.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use bytes::Bytes;
use rsm_core::id::ReplicaId;
use rsm_core::wire::{decode_payload, FrameHeader, WireMsg, MSG_HEADER_BYTES};

use crate::endpoint::{Conn, Endpoint};
use crate::hub::TransportMetrics;

enum Acceptor {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Acceptor {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Acceptor::Tcp(l) => Conn::from_tcp(l.accept()?.0),
            Acceptor::Uds(l) => Ok(Conn::Uds(l.accept()?.0)),
        }
    }
}

/// A bound endpoint accepting framed connections.
///
/// Each accepted connection gets its own reader thread: it reads the
/// 32-byte [`FrameHeader`], validates magic/version/length, reads the
/// payload, verifies the checksum, deduplicates by per-sender sequence
/// number, decodes the message, and invokes the deliver callback. Any
/// framing or decode error closes the connection (the sending peer
/// reconnects and resends); EOF ends the thread cleanly.
pub struct Listener {
    endpoint: Endpoint,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    conns: Arc<Mutex<Vec<Conn>>>,
}

impl Listener {
    /// Binds `endpoint` and starts accepting. `deliver` is called on the
    /// reader thread for every verified, deduplicated frame, with the
    /// sending replica and the decoded message; it must hand off fast
    /// (typically one channel send into the node's inbox).
    pub fn bind<M, F>(endpoint: &Endpoint, deliver: F) -> io::Result<Listener>
    where
        M: WireMsg,
        F: Fn(ReplicaId, M) + Send + Sync + 'static,
    {
        Self::bind_with_metrics(endpoint, TransportMetrics::default(), deliver)
    }

    /// [`bind`](Listener::bind) with inbound counters: every verified
    /// delivered frame bumps `frames_recv`/`bytes_recv`, and frames
    /// dropped by the reconnect-resend sequence dedup bump `dup_frames`.
    pub fn bind_with_metrics<M, F>(
        endpoint: &Endpoint,
        metrics: TransportMetrics,
        deliver: F,
    ) -> io::Result<Listener>
    where
        M: WireMsg,
        F: Fn(ReplicaId, M) + Send + Sync + 'static,
    {
        let (acceptor, bound) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let actual = Endpoint::Tcp(l.local_addr()?);
                (Acceptor::Tcp(l), actual)
            }
            Endpoint::Uds(path) => {
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                (Acceptor::Uds(l), Endpoint::Uds(path.clone()))
            }
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let conns: Arc<Mutex<Vec<Conn>>> = Arc::new(Mutex::new(Vec::new()));
        // Last delivered frame sequence per sender, shared by all reader
        // threads of this listener: a reconnecting peer resends anything
        // it could not prove fully written, and this map drops the
        // overlap so links stay exactly-once from the node's viewpoint.
        let last_seq: Arc<Mutex<HashMap<u16, u64>>> = Arc::new(Mutex::new(HashMap::new()));
        let deliver = Arc::new(deliver);

        let accept_handle = {
            let shutdown = Arc::clone(&shutdown);
            let readers = Arc::clone(&readers);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("rsm-accept".into())
                .spawn(move || loop {
                    let conn = match acceptor.accept() {
                        Ok(c) => c,
                        Err(_) => {
                            if shutdown.load(Ordering::Acquire) {
                                return;
                            }
                            continue;
                        }
                    };
                    if shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    if let Ok(clone) = conn.try_clone() {
                        conns.lock().unwrap().push(clone);
                    }
                    let deliver = Arc::clone(&deliver);
                    let last_seq = Arc::clone(&last_seq);
                    let metrics = metrics.clone();
                    let handle = std::thread::Builder::new()
                        .name("rsm-reader".into())
                        .spawn(move || read_frames(conn, &*deliver, &last_seq, &metrics))
                        .expect("spawn reader thread");
                    readers.lock().unwrap().push(handle);
                })
                .expect("spawn accept thread")
        };

        Ok(Listener {
            endpoint: bound,
            shutdown,
            accept_handle: Some(accept_handle),
            readers,
            conns,
        })
    }

    /// The actual bound endpoint — for TCP with port `0`, this carries
    /// the OS-assigned port peers must dial.
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Stops accepting, unblocks and joins every reader, and removes a
    /// UDS socket file. Idempotent; also run by `Drop`.
    pub fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the accept loop with a throwaway connection.
        let _ = Conn::connect(&self.endpoint);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Unblock readers still parked in read() on live connections.
        for conn in self.conns.lock().unwrap().drain(..) {
            conn.shutdown();
        }
        let readers = std::mem::take(&mut *self.readers.lock().unwrap());
        for h in readers {
            let _ = h.join();
        }
        if let Endpoint::Uds(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads frames off one connection until EOF or the first malformed
/// frame.
fn read_frames<M: WireMsg>(
    mut conn: Conn,
    deliver: &(dyn Fn(ReplicaId, M) + Send + Sync),
    last_seq: &Mutex<HashMap<u16, u64>>,
    metrics: &TransportMetrics,
) {
    let mut header_buf = [0u8; MSG_HEADER_BYTES];
    loop {
        if conn.read_exact(&mut header_buf).is_err() {
            return; // EOF or torn connection; peer will redial.
        }
        let header = match FrameHeader::decode(&header_buf) {
            Ok(h) => h,
            Err(_) => return, // Bad magic/version: drop the connection.
        };
        let mut payload = vec![0u8; header.len as usize];
        if conn.read_exact(&mut payload).is_err() {
            return;
        }
        let payload = Bytes::from(payload);
        if header.verify_payload(&payload).is_err() {
            return;
        }
        {
            let mut seqs = last_seq.lock().unwrap();
            let last = seqs.entry(header.from.as_u16()).or_insert(0);
            if header.seq <= *last {
                metrics.dup_frames.inc();
                continue; // Duplicate from a reconnect resend.
            }
            *last = header.seq;
        }
        match decode_payload::<M>(payload) {
            Ok(msg) => {
                metrics.frames_recv.inc();
                metrics
                    .bytes_recv
                    .add((MSG_HEADER_BYTES + header.len as usize) as u64);
                deliver(header.from, msg);
            }
            Err(_) => return,
        }
    }
}
