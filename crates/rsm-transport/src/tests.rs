use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use rsm_core::id::ReplicaId;
use rsm_core::wire::{WireDecode, WireEncode, WireError, WireMsg, WireReader};

use crate::{Endpoint, Hub, Listener, MsgSink};

static ENCODES: AtomicUsize = AtomicUsize::new(0);

#[derive(Debug, Clone, PartialEq, Eq)]
struct TestMsg {
    tag: u64,
    body: Bytes,
}

impl TestMsg {
    fn new(tag: u64, body: &[u8]) -> TestMsg {
        TestMsg {
            tag,
            body: Bytes::copy_from_slice(body),
        }
    }
}

impl WireEncode for TestMsg {
    fn encode(&self, buf: &mut BytesMut) {
        ENCODES.fetch_add(1, Ordering::Relaxed);
        self.tag.encode(buf);
        self.body.encode(buf);
    }
}

impl WireDecode for TestMsg {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(TestMsg {
            tag: u64::decode(r)?,
            body: Bytes::decode(r)?,
        })
    }
}

impl WireMsg for TestMsg {
    fn shares_encoding(&self, prev: &Self) -> bool {
        self == prev
    }
}

fn deliver_into(
    tx: mpsc::Sender<(ReplicaId, TestMsg)>,
) -> impl Fn(ReplicaId, TestMsg) + Send + Sync {
    move |from, msg| {
        let _ = tx.send((from, msg));
    }
}

fn round_trip_over(endpoint: Endpoint) {
    let (tx, rx) = mpsc::channel();
    let listener = Listener::bind(&endpoint, deliver_into(tx)).expect("bind");
    let r0 = ReplicaId::new(0);
    let r1 = ReplicaId::new(1);
    let mut hub: Hub<TestMsg> = Hub::new(r0, Box::new(|_| panic!("no self-sends here")));
    hub.add_peer(r1, listener.endpoint().clone(), Duration::ZERO);

    for i in 0..100u64 {
        hub.send_msg(r1, TestMsg::new(i, format!("payload-{i}").as_bytes()));
    }
    for i in 0..100u64 {
        let (from, msg) = rx.recv_timeout(Duration::from_secs(5)).expect("frame");
        assert_eq!(from, r0);
        assert_eq!(msg.tag, i, "frames must arrive in FIFO order");
        assert_eq!(&msg.body[..], format!("payload-{i}").as_bytes());
    }
    drop(hub);
}

#[test]
fn tcp_frames_round_trip_in_order() {
    round_trip_over(Endpoint::tcp_loopback());
}

#[test]
fn uds_frames_round_trip_in_order() {
    round_trip_over(Endpoint::uds_temp("roundtrip", 1));
}

#[test]
fn self_sends_bypass_the_socket() {
    let (tx, rx) = mpsc::channel();
    let r0 = ReplicaId::new(0);
    let mut hub: Hub<TestMsg> = Hub::new(
        r0,
        Box::new(move |msg| {
            let _ = tx.send(msg);
        }),
    );
    let before = ENCODES.load(Ordering::Relaxed);
    hub.send_msg(r0, TestMsg::new(7, b"loop"));
    assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap().tag, 7);
    assert_eq!(
        ENCODES.load(Ordering::Relaxed),
        before,
        "a self-send must not encode"
    );
}

#[test]
fn broadcast_encodes_the_payload_once() {
    let (tx1, rx1) = mpsc::channel();
    let (tx2, rx2) = mpsc::channel();
    let l1 = Listener::bind(&Endpoint::tcp_loopback(), deliver_into(tx1)).expect("bind");
    let l2 = Listener::bind(&Endpoint::tcp_loopback(), deliver_into(tx2)).expect("bind");
    let r0 = ReplicaId::new(0);
    let mut hub: Hub<TestMsg> = Hub::new(r0, Box::new(|_| ()));
    hub.add_peer(ReplicaId::new(1), l1.endpoint().clone(), Duration::ZERO);
    hub.add_peer(ReplicaId::new(2), l2.endpoint().clone(), Duration::ZERO);

    let msg = TestMsg::new(42, &[9u8; 1024]);
    let before = ENCODES.load(Ordering::Relaxed);
    hub.send_msg(ReplicaId::new(1), msg.clone());
    hub.send_msg(ReplicaId::new(2), msg.clone());
    assert_eq!(
        ENCODES.load(Ordering::Relaxed) - before,
        1,
        "the second per-peer send must reuse the cached encoding"
    );
    assert_eq!(rx1.recv_timeout(Duration::from_secs(5)).unwrap().1, msg);
    assert_eq!(rx2.recv_timeout(Duration::from_secs(5)).unwrap().1, msg);
}

#[test]
fn link_delay_holds_frames_back() {
    let (tx, rx) = mpsc::channel();
    let listener = Listener::bind(&Endpoint::tcp_loopback(), deliver_into(tx)).expect("bind");
    let r0 = ReplicaId::new(0);
    let mut hub: Hub<TestMsg> = Hub::new(r0, Box::new(|_| ()));
    hub.add_peer(
        ReplicaId::new(1),
        listener.endpoint().clone(),
        Duration::from_millis(50),
    );
    let start = Instant::now();
    hub.send_msg(ReplicaId::new(1), TestMsg::new(1, b"delayed"));
    rx.recv_timeout(Duration::from_secs(5)).expect("frame");
    assert!(
        start.elapsed() >= Duration::from_millis(40),
        "a 50ms link must not deliver in {:?}",
        start.elapsed()
    );
}

#[test]
fn garbage_connections_do_not_poison_the_listener() {
    let (tx, rx) = mpsc::channel();
    let listener = Listener::bind(&Endpoint::tcp_loopback(), deliver_into(tx)).expect("bind");
    let addr = match listener.endpoint() {
        Endpoint::Tcp(addr) => *addr,
        Endpoint::Uds(_) => unreachable!(),
    };
    // A connection that speaks nonsense: the reader must drop it at the
    // bad magic and keep serving other connections.
    let mut garbage = TcpStream::connect(addr).unwrap();
    garbage.write_all(&[0xAA; 64]).unwrap();
    drop(garbage);

    let r0 = ReplicaId::new(0);
    let mut hub: Hub<TestMsg> = Hub::new(r0, Box::new(|_| ()));
    hub.add_peer(
        ReplicaId::new(1),
        listener.endpoint().clone(),
        Duration::ZERO,
    );
    hub.send_msg(ReplicaId::new(1), TestMsg::new(3, b"still-alive"));
    let (_, msg) = rx.recv_timeout(Duration::from_secs(5)).expect("frame");
    assert_eq!(msg.tag, 3);
}

#[test]
fn listener_stop_is_idempotent_and_unblocks() {
    let (tx, _rx) = mpsc::channel();
    let mut listener =
        Listener::bind(&Endpoint::uds_temp("stop", 0), deliver_into(tx)).expect("bind");
    let r0 = ReplicaId::new(0);
    let mut hub: Hub<TestMsg> = Hub::new(r0, Box::new(|_| ()));
    hub.add_peer(
        ReplicaId::new(1),
        listener.endpoint().clone(),
        Duration::ZERO,
    );
    hub.send_msg(ReplicaId::new(1), TestMsg::new(1, b"x"));
    // Give the writer a moment to establish the connection so stop()
    // exercises the live-reader shutdown path too.
    std::thread::sleep(Duration::from_millis(50));
    listener.stop();
    listener.stop();
    drop(hub);
}
