//! Multi-Paxos wire messages.
//!
//! The leader funnel is where batching pays in Paxos (the paper explains
//! its small-command throughput advantage exactly this way), so every
//! data-plane message is batch-shaped: commands travel in ordered
//! [`Batch`]es bound to contiguous instance runs, and acknowledgements
//! and commit notifications are **cumulative watermarks** over the
//! instance space rather than per-instance messages.
//!
//! Every data-plane message is tagged with the [`Ballot`] of the leader
//! regime that produced it. With fail-over disabled this is always the
//! initial ballot; with fail-over enabled the ballot is what fences a
//! deposed leader — acceptors [`Nack`](PaxosMsg::Nack) anything below
//! their promise — and the control plane
//! ([`Prepare`](PaxosMsg::Prepare) / [`Promise`](PaxosMsg::Promise) /
//! [`Repair`](PaxosMsg::Repair)) is classic Paxos phase 1 lifted from the
//! single decree to the instance-log suffix.

use bytes::BytesMut;
use rsm_core::batch::Batch;
use rsm_core::checkpoint::{StateTransferReply, StateTransferRequest};
use rsm_core::command::Command;
use rsm_core::id::ReplicaId;
use rsm_core::read::{ReadReply, ReadRequest};
use rsm_core::wire::MSG_HEADER_BYTES;
use rsm_core::wire::{WireDecode, WireEncode, WireError, WireMsg, WireReader, WireSize};

use crate::synod::Ballot;

/// Encoded size of a [`Ballot`] on the wire: round plus proposer id.
const BALLOT_BYTES: usize = 10;

/// One instance of the log suffix, as reported by an acceptor in a
/// [`Promise`](PaxosMsg::Promise) or re-proposed by a new leader in a
/// [`Repair`](PaxosMsg::Repair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixEntry {
    /// The instance number.
    pub instance: u64,
    /// In a `Promise`: the ballot at which the value was accepted. In a
    /// `Repair`: the new leader's ballot (every repaired instance is
    /// re-proposed at it).
    pub ballot: Ballot,
    /// The command bound to the instance and its originating replica, or
    /// `None` for a **no-op filler**: a hole the new leader proved
    /// unchosen and closes so execution can pass it.
    pub value: Option<(Command, ReplicaId)>,
}

impl WireSize for SuffixEntry {
    fn wire_size(&self) -> usize {
        8 + BALLOT_BYTES
            + self
                .value
                .as_ref()
                .map_or(1, |(cmd, _)| 1 + 2 + cmd.wire_size())
    }
}

impl WireEncode for SuffixEntry {
    fn encode(&self, buf: &mut BytesMut) {
        self.instance.encode(buf);
        self.ballot.encode(buf);
        self.value.encode(buf);
    }
}

impl WireDecode for SuffixEntry {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(SuffixEntry {
            instance: u64::decode(r)?,
            ballot: Ballot::decode(r)?,
            value: Option::<(Command, ReplicaId)>::decode(r)?,
        })
    }
}

/// Messages exchanged by [`MultiPaxos`](crate::MultiPaxos) replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaxosMsg {
    /// A follower forwards a batch of its clients' commands to the
    /// leader, remembering itself as the commands' origin so replies
    /// return to the right data center.
    Forward {
        /// The client commands, in submission order.
        cmds: Batch,
        /// The replica whose clients issued the commands.
        origin: ReplicaId,
    },
    /// Phase 2a: the leader asks replicas to accept the batch in the
    /// contiguous instance run `[first_instance, first_instance +
    /// cmds.len())`, at its regime ballot.
    Accept {
        /// The proposing leader's regime ballot.
        ballot: Ballot,
        /// First instance of the run (consecutive numbers follow).
        first_instance: u64,
        /// The commands bound to the run, in instance order.
        cmds: Batch,
        /// The replica whose clients issued the commands.
        origin: ReplicaId,
    },
    /// Phase 2b, cumulative: the sender vouches, **for the tagged
    /// regime**, that every instance below `up_to` is logged at its site.
    /// Sound because the leader assigns consecutive instances and
    /// channels are FIFO, so accepts arrive gap-free; tagging with the
    /// regime ballot is what keeps a quorum honest across fail-overs
    /// (watermarks earned under a deposed leader are never counted
    /// toward the new regime's commits). Sent to the leader (plain
    /// Paxos) or broadcast (Paxos-bcast); one ack covers a whole batch.
    Accepted {
        /// The regime the vouch is for.
        ballot: Ballot,
        /// Exclusive watermark: all instances `< up_to` are logged.
        up_to: u64,
    },
    /// Commit notification from the leader (plain Paxos only),
    /// cumulative: every instance below `up_to` is committed. Commitment
    /// is final regardless of the announcing regime, so receivers honour
    /// the watermark even from a since-deposed leader (it only announces
    /// quorums it really observed).
    Commit {
        /// The announcing leader's regime ballot.
        ballot: Ballot,
        /// Exclusive watermark: all instances `< up_to` are committed.
        up_to: u64,
    },
    /// Lease renewal from an idle leader: proves the regime is alive and
    /// carries the commit watermark so followers keep executing without
    /// data-plane traffic. Fenced like an `Accept` — a deposed leader's
    /// heartbeat draws a [`Nack`](PaxosMsg::Nack), which is how it learns
    /// it was deposed.
    Heartbeat {
        /// The sending leader's regime ballot.
        ballot: Ballot,
        /// Exclusive watermark: all instances `< committed` are committed.
        committed: u64,
    },
    /// Phase 1a over the log suffix: a candidate whose leader lease
    /// expired solicits leadership at `ballot` and asks each acceptor for
    /// everything it has accepted from `from_instance` up.
    Prepare {
        /// The candidate's ballot.
        ballot: Ballot,
        /// The candidate's committed watermark: report instances at or
        /// above this.
        from_instance: u64,
    },
    /// Phase 1b: the acceptor promises to reject anything below `ballot`
    /// and reports its accepted log suffix so the candidate can adopt
    /// the highest-ballot value per instance.
    Promise {
        /// The promised ballot (echo of the 1a ballot).
        ballot: Ballot,
        /// Echo of the solicited suffix start.
        from_instance: u64,
        /// The acceptor's committed watermark (everything below is
        /// globally decided and needs no repair).
        committed: u64,
        /// Accepted instances at or above `from_instance`, with the
        /// ballots they were accepted at.
        entries: Vec<SuffixEntry>,
    },
    /// A rejection carrying the acceptor's current promise: tells a
    /// stale-ballot sender (deposed leader or outbid candidate) which
    /// ballot it must outbid — or defer to.
    Nack {
        /// The acceptor's promised ballot.
        promised: Ballot,
    },
    /// Phase 2a for the election outcome: the new leader re-proposes the
    /// merged log suffix `[floor, floor + entries.len())` at its ballot —
    /// highest-ballot accepted values kept, unchosen holes closed with
    /// no-ops — and thereby announces its regime. Processing a `Repair`
    /// is what switches an acceptor to the new regime; FIFO channels
    /// guarantee it precedes the regime's `Accept` traffic.
    Repair {
        /// The new leader's ballot.
        ballot: Ballot,
        /// Start of the repaired range: the highest committed watermark
        /// among the promise quorum. Everything below it is final, and
        /// the receiver may adopt it as its own committed watermark.
        floor: u64,
        /// The re-proposed suffix, one entry per instance, contiguous
        /// from `floor`.
        entries: Vec<SuffixEntry>,
    },
    /// A follower that sees an accept run land *past* its vouch
    /// watermark (a gap — per-link FIFO means the missing accepts were
    /// lost while it was down, or while the leader lacked a majority to
    /// commit them) asks the leader to retransmit the uncommitted range.
    /// Without this, instances proposed while the leader was in a
    /// minority could never commit: the survivors' cumulative acks can
    /// never soundly cross the hole, and nothing else retransmits
    /// uncommitted proposals.
    FillRequest {
        /// First missing instance (the requester's vouch watermark).
        from_instance: u64,
        /// Exclusive end of the gap (the run that revealed it).
        to_instance: u64,
    },
    /// The leader's retransmission of still-pending instances from its
    /// slot table, re-asserted at its regime ballot. Unlike
    /// [`Repair`](PaxosMsg::Repair) it carries no floor and drops
    /// nothing at the receiver — it is a plain re-`Accept` of an
    /// explicit instance set.
    Fill {
        /// The serving leader's regime ballot.
        ballot: Ballot,
        /// The retransmitted instances.
        entries: Vec<SuffixEntry>,
    },
    /// A replica stalled at a committed hole (the `ACCEPT`s were lost
    /// while it was down, or its local suffix was superseded by a
    /// fail-over it missed) asks a peer for a checkpoint covering the
    /// gap (shared subsystem, `rsm_core::checkpoint`). The watermark is
    /// the requester's next-to-execute instance.
    StateRequest(StateTransferRequest<u64>),
    /// A peer's checkpoint: its state through every instance below the
    /// carried (exclusive) watermark. The requester installs it and
    /// resumes execution and acknowledgements from the watermark. The
    /// reply also carries the sender's promised ballot so an installing
    /// replica can never regress its own promise below a regime the
    /// cluster has already moved to (the compacted log it writes after
    /// the install re-pins the promise durably).
    StateReply {
        /// The checkpoint.
        reply: StateTransferReply<u64>,
        /// The serving replica's promised ballot.
        promised: Ballot,
    },
    /// Pre-vote probe (opt-in, [`pre_vote`]): before bumping its ballot, a
    /// would-be candidate asks whether the receiver would *currently*
    /// promise `ballot`. The receiver answers from the same tests a real
    /// [`Prepare`](PaxosMsg::Prepare) faces — promise ordering and the
    /// leader-stickiness lease gate — but **nothing mutates**: no promise
    /// moves, no lease renews, no round is burned. A replica flapping
    /// behind a partition therefore cannot drive real ballots up (and
    /// depose a healthy leader on heal); it only ever probes, and its
    /// probes die quietly while a majority still hears the leader.
    ///
    /// [`pre_vote`]: rsm_core::lease::LeaseConfig::pre_vote
    PreVote {
        /// The ballot the sender would campaign at.
        ballot: Ballot,
    },
    /// Affirmative answer to a [`PreVote`](PaxosMsg::PreVote): the sender
    /// would promise `ballot` if asked now. A majority of grants licenses
    /// the real election. There is no negative counterpart — refusals are
    /// silent, exactly like the stickiness gate's silence on `Prepare`
    /// (except a probe below the receiver's promise, which draws the
    /// usual [`Nack`](PaxosMsg::Nack) so a lagging candidate can learn
    /// the round to beat).
    PreVoteGrant {
        /// Echo of the probed ballot.
        ballot: Ballot,
    },
    /// Quorum-read probe (`rsm_core::read`): a replica that cannot serve
    /// a read locally — a follower, or a leader whose read lease is
    /// uncertain — asks a peer for its read mark. Clock-free: safety
    /// comes from quorum intersection, not from any lease.
    ReadProbe(ReadRequest),
    /// Answer to a [`ReadProbe`](PaxosMsg::ReadProbe): the responder's
    /// read mark (its commit watermark raised to the top of its
    /// accepted log). Deliberately **not** ballot-tagged and never
    /// counted as leader-lease evidence: answering a probe does not
    /// imply the responder recently heard the leader, so counting it
    /// would let a near-deposed replica's answer extend the read lease
    /// past an election it is about to enable. Only messages whose
    /// *send* implies current-regime leader contact (an
    /// [`Accepted`](PaxosMsg::Accepted)) feed the lease.
    ReadMark(ReadReply),
}

impl WireSize for PaxosMsg {
    fn wire_size(&self) -> usize {
        match self {
            PaxosMsg::Forward { cmds, .. } => MSG_HEADER_BYTES + cmds.wire_size(),
            PaxosMsg::Accept { cmds, .. } => MSG_HEADER_BYTES + BALLOT_BYTES + cmds.wire_size(),
            PaxosMsg::Accepted { .. } | PaxosMsg::Commit { .. } | PaxosMsg::Heartbeat { .. } => {
                MSG_HEADER_BYTES + BALLOT_BYTES
            }
            PaxosMsg::Prepare { .. }
            | PaxosMsg::Nack { .. }
            | PaxosMsg::PreVote { .. }
            | PaxosMsg::PreVoteGrant { .. } => MSG_HEADER_BYTES + BALLOT_BYTES,
            PaxosMsg::FillRequest { .. } => MSG_HEADER_BYTES + 16,
            PaxosMsg::Fill { entries, .. } => {
                MSG_HEADER_BYTES
                    + BALLOT_BYTES
                    + entries.iter().map(WireSize::wire_size).sum::<usize>()
            }
            // Promise: from_instance + committed; Repair: floor.
            PaxosMsg::Promise { entries, .. } => {
                MSG_HEADER_BYTES
                    + BALLOT_BYTES
                    + 16
                    + entries.iter().map(WireSize::wire_size).sum::<usize>()
            }
            PaxosMsg::Repair { entries, .. } => {
                MSG_HEADER_BYTES
                    + BALLOT_BYTES
                    + 8
                    + entries.iter().map(WireSize::wire_size).sum::<usize>()
            }
            PaxosMsg::StateRequest(req) => req.wire_size(),
            PaxosMsg::StateReply { reply, .. } => reply.wire_size() + BALLOT_BYTES,
            PaxosMsg::ReadProbe(req) => req.wire_size(),
            PaxosMsg::ReadMark(reply) => reply.wire_size(),
        }
    }
}

impl WireEncode for PaxosMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            PaxosMsg::Forward { cmds, origin } => {
                0u8.encode(buf);
                cmds.encode(buf);
                origin.encode(buf);
            }
            PaxosMsg::Accept {
                ballot,
                first_instance,
                cmds,
                origin,
            } => {
                1u8.encode(buf);
                ballot.encode(buf);
                first_instance.encode(buf);
                cmds.encode(buf);
                origin.encode(buf);
            }
            PaxosMsg::Accepted { ballot, up_to } => {
                2u8.encode(buf);
                ballot.encode(buf);
                up_to.encode(buf);
            }
            PaxosMsg::Commit { ballot, up_to } => {
                3u8.encode(buf);
                ballot.encode(buf);
                up_to.encode(buf);
            }
            PaxosMsg::Heartbeat { ballot, committed } => {
                4u8.encode(buf);
                ballot.encode(buf);
                committed.encode(buf);
            }
            PaxosMsg::Prepare {
                ballot,
                from_instance,
            } => {
                5u8.encode(buf);
                ballot.encode(buf);
                from_instance.encode(buf);
            }
            PaxosMsg::Promise {
                ballot,
                from_instance,
                committed,
                entries,
            } => {
                6u8.encode(buf);
                ballot.encode(buf);
                from_instance.encode(buf);
                committed.encode(buf);
                entries.encode(buf);
            }
            PaxosMsg::Nack { promised } => {
                7u8.encode(buf);
                promised.encode(buf);
            }
            PaxosMsg::Repair {
                ballot,
                floor,
                entries,
            } => {
                8u8.encode(buf);
                ballot.encode(buf);
                floor.encode(buf);
                entries.encode(buf);
            }
            PaxosMsg::FillRequest {
                from_instance,
                to_instance,
            } => {
                9u8.encode(buf);
                from_instance.encode(buf);
                to_instance.encode(buf);
            }
            PaxosMsg::Fill { ballot, entries } => {
                10u8.encode(buf);
                ballot.encode(buf);
                entries.encode(buf);
            }
            PaxosMsg::StateRequest(req) => {
                11u8.encode(buf);
                req.encode(buf);
            }
            PaxosMsg::StateReply { reply, promised } => {
                12u8.encode(buf);
                reply.encode(buf);
                promised.encode(buf);
            }
            PaxosMsg::ReadProbe(req) => {
                13u8.encode(buf);
                req.encode(buf);
            }
            PaxosMsg::ReadMark(reply) => {
                14u8.encode(buf);
                reply.encode(buf);
            }
            PaxosMsg::PreVote { ballot } => {
                15u8.encode(buf);
                ballot.encode(buf);
            }
            PaxosMsg::PreVoteGrant { ballot } => {
                16u8.encode(buf);
                ballot.encode(buf);
            }
        }
    }
}

impl WireDecode for PaxosMsg {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => PaxosMsg::Forward {
                cmds: Batch::decode(r)?,
                origin: ReplicaId::decode(r)?,
            },
            1 => PaxosMsg::Accept {
                ballot: Ballot::decode(r)?,
                first_instance: u64::decode(r)?,
                cmds: Batch::decode(r)?,
                origin: ReplicaId::decode(r)?,
            },
            2 => PaxosMsg::Accepted {
                ballot: Ballot::decode(r)?,
                up_to: u64::decode(r)?,
            },
            3 => PaxosMsg::Commit {
                ballot: Ballot::decode(r)?,
                up_to: u64::decode(r)?,
            },
            4 => PaxosMsg::Heartbeat {
                ballot: Ballot::decode(r)?,
                committed: u64::decode(r)?,
            },
            5 => PaxosMsg::Prepare {
                ballot: Ballot::decode(r)?,
                from_instance: u64::decode(r)?,
            },
            6 => PaxosMsg::Promise {
                ballot: Ballot::decode(r)?,
                from_instance: u64::decode(r)?,
                committed: u64::decode(r)?,
                entries: Vec::<SuffixEntry>::decode(r)?,
            },
            7 => PaxosMsg::Nack {
                promised: Ballot::decode(r)?,
            },
            8 => PaxosMsg::Repair {
                ballot: Ballot::decode(r)?,
                floor: u64::decode(r)?,
                entries: Vec::<SuffixEntry>::decode(r)?,
            },
            9 => PaxosMsg::FillRequest {
                from_instance: u64::decode(r)?,
                to_instance: u64::decode(r)?,
            },
            10 => PaxosMsg::Fill {
                ballot: Ballot::decode(r)?,
                entries: Vec::<SuffixEntry>::decode(r)?,
            },
            11 => PaxosMsg::StateRequest(StateTransferRequest::<u64>::decode(r)?),
            12 => PaxosMsg::StateReply {
                reply: StateTransferReply::<u64>::decode(r)?,
                promised: Ballot::decode(r)?,
            },
            13 => PaxosMsg::ReadProbe(ReadRequest::decode(r)?),
            14 => PaxosMsg::ReadMark(ReadReply::decode(r)?),
            15 => PaxosMsg::PreVote {
                ballot: Ballot::decode(r)?,
            },
            16 => PaxosMsg::PreVoteGrant {
                ballot: Ballot::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    ty: "PaxosMsg",
                    tag,
                })
            }
        })
    }
}

impl WireMsg for PaxosMsg {
    /// The broadcast-heavy variants — an [`Accept`](PaxosMsg::Accept) run
    /// fanned out to every acceptor, a [`Forward`](PaxosMsg::Forward)
    /// relayed unchanged — are clones sharing one `Arc`'d [`Batch`], so
    /// batch identity plus the scalar fields decides byte-identity
    /// without comparing command payloads.
    fn shares_encoding(&self, prev: &Self) -> bool {
        match (self, prev) {
            (
                PaxosMsg::Accept {
                    ballot: b1,
                    first_instance: f1,
                    cmds: c1,
                    origin: o1,
                },
                PaxosMsg::Accept {
                    ballot: b2,
                    first_instance: f2,
                    cmds: c2,
                    origin: o2,
                },
            ) => b1 == b2 && f1 == f2 && o1 == o2 && c1.ptr_eq(c2),
            (
                PaxosMsg::Forward {
                    cmds: c1,
                    origin: o1,
                },
                PaxosMsg::Forward {
                    cmds: c2,
                    origin: o2,
                },
            ) => o1 == o2 && c1.ptr_eq(c2),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::{Command, CommandId};
    use rsm_core::id::ClientId;

    fn cmd(len: usize) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1),
            Bytes::from(vec![0u8; len]),
        )
    }

    fn b(round: u64) -> Ballot {
        Ballot {
            round,
            proposer: ReplicaId::new(0),
        }
    }

    #[test]
    fn payload_bearing_messages_are_larger() {
        let accept = PaxosMsg::Accept {
            ballot: b(0),
            first_instance: 1,
            cmds: Batch::single(cmd(100)),
            origin: ReplicaId::new(0),
        };
        let ack = PaxosMsg::Accepted {
            ballot: b(0),
            up_to: 2,
        };
        assert!(accept.wire_size() > ack.wire_size() + 100);
        assert_eq!(ack.wire_size(), MSG_HEADER_BYTES + BALLOT_BYTES);
    }

    #[test]
    fn batched_accept_amortizes_the_header() {
        let one = PaxosMsg::Accept {
            ballot: b(0),
            first_instance: 0,
            cmds: Batch::single(cmd(10)),
            origin: ReplicaId::new(0),
        };
        let eight = PaxosMsg::Accept {
            ballot: b(0),
            first_instance: 0,
            cmds: Batch::new((0..8).map(|_| cmd(10)).collect()),
            origin: ReplicaId::new(0),
        };
        assert!(eight.wire_size() < 8 * one.wire_size());
    }

    #[test]
    fn promise_size_scales_with_the_reported_suffix() {
        let entry = |i: u64| SuffixEntry {
            instance: i,
            ballot: b(1),
            value: Some((cmd(64), ReplicaId::new(1))),
        };
        let empty = PaxosMsg::Promise {
            ballot: b(2),
            from_instance: 0,
            committed: 0,
            entries: vec![],
        };
        let full = PaxosMsg::Promise {
            ballot: b(2),
            from_instance: 0,
            committed: 0,
            entries: (0..4).map(entry).collect(),
        };
        assert!(full.wire_size() > empty.wire_size() + 4 * 64);
        // A no-op filler costs almost nothing.
        let noop = SuffixEntry {
            instance: 9,
            ballot: b(2),
            value: None,
        };
        assert!(noop.wire_size() < entry(9).wire_size());
    }
}
