//! Multi-Paxos wire messages.
//!
//! The leader funnel is where batching pays in Paxos (the paper explains
//! its small-command throughput advantage exactly this way), so every
//! data-plane message is batch-shaped: commands travel in ordered
//! [`Batch`]es bound to contiguous instance runs, and acknowledgements
//! and commit notifications are **cumulative watermarks** over the
//! instance space rather than per-instance messages.

use rsm_core::batch::Batch;
use rsm_core::checkpoint::{StateTransferReply, StateTransferRequest};
use rsm_core::id::ReplicaId;
use rsm_core::wire::{WireSize, MSG_HEADER_BYTES};

/// Messages exchanged by [`MultiPaxos`](crate::MultiPaxos) replicas.
#[derive(Debug, Clone)]
pub enum PaxosMsg {
    /// A follower forwards a batch of its clients' commands to the
    /// leader, remembering itself as the commands' origin so replies
    /// return to the right data center.
    Forward {
        /// The client commands, in submission order.
        cmds: Batch,
        /// The replica whose clients issued the commands.
        origin: ReplicaId,
    },
    /// Phase 2a: the leader asks replicas to accept the batch in the
    /// contiguous instance run `[first_instance, first_instance +
    /// cmds.len())`.
    Accept {
        /// First instance of the run (consecutive numbers follow).
        first_instance: u64,
        /// The commands bound to the run, in instance order.
        cmds: Batch,
        /// The replica whose clients issued the commands.
        origin: ReplicaId,
    },
    /// Phase 2b, cumulative: the sender has logged **every** instance
    /// below `up_to`. Sound because the leader assigns consecutive
    /// instances and channels are FIFO, so accepts arrive gap-free. Sent
    /// to the leader (plain Paxos) or broadcast (Paxos-bcast); one ack
    /// covers a whole batch.
    Accepted {
        /// Exclusive watermark: all instances `< up_to` are logged.
        up_to: u64,
    },
    /// Commit notification from the leader (plain Paxos only),
    /// cumulative: every instance below `up_to` is committed.
    Commit {
        /// Exclusive watermark: all instances `< up_to` are committed.
        up_to: u64,
    },
    /// A replica stalled at a committed hole (the `ACCEPT`s were lost
    /// while it was down) asks a peer for a checkpoint covering the gap
    /// (shared subsystem, `rsm_core::checkpoint`). The watermark is the
    /// requester's next-to-execute instance.
    StateRequest(StateTransferRequest<u64>),
    /// A peer's checkpoint: its state through every instance below the
    /// carried (exclusive) watermark. The requester installs it and
    /// resumes execution and acknowledgements from the watermark.
    StateReply(StateTransferReply<u64>),
}

impl WireSize for PaxosMsg {
    fn wire_size(&self) -> usize {
        match self {
            PaxosMsg::Forward { cmds, .. } => MSG_HEADER_BYTES + cmds.wire_size(),
            PaxosMsg::Accept { cmds, .. } => MSG_HEADER_BYTES + cmds.wire_size(),
            PaxosMsg::Accepted { .. } | PaxosMsg::Commit { .. } => MSG_HEADER_BYTES,
            PaxosMsg::StateRequest(req) => req.wire_size(),
            PaxosMsg::StateReply(reply) => reply.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::{Command, CommandId};
    use rsm_core::id::ClientId;

    fn cmd(len: usize) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1),
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn payload_bearing_messages_are_larger() {
        let accept = PaxosMsg::Accept {
            first_instance: 1,
            cmds: Batch::single(cmd(100)),
            origin: ReplicaId::new(0),
        };
        let ack = PaxosMsg::Accepted { up_to: 2 };
        assert!(accept.wire_size() > ack.wire_size() + 100);
        assert_eq!(ack.wire_size(), MSG_HEADER_BYTES);
    }

    #[test]
    fn batched_accept_amortizes_the_header() {
        let one = PaxosMsg::Accept {
            first_instance: 0,
            cmds: Batch::single(cmd(10)),
            origin: ReplicaId::new(0),
        };
        let eight = PaxosMsg::Accept {
            first_instance: 0,
            cmds: Batch::new((0..8).map(|_| cmd(10)).collect()),
            origin: ReplicaId::new(0),
        };
        assert!(eight.wire_size() < 8 * one.wire_size());
    }
}
