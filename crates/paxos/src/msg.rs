//! Multi-Paxos wire messages.

use rsm_core::command::Command;
use rsm_core::id::ReplicaId;
use rsm_core::wire::{WireSize, MSG_HEADER_BYTES};

/// Messages exchanged by [`MultiPaxos`](crate::MultiPaxos) replicas.
#[derive(Debug, Clone)]
pub enum PaxosMsg {
    /// A follower forwards a client command to the leader, remembering
    /// itself as the command's origin so the reply returns to the right
    /// data center.
    Forward {
        /// The client command.
        cmd: Command,
        /// The replica whose client issued the command.
        origin: ReplicaId,
    },
    /// Phase 2a: the leader asks replicas to accept `cmd` in `instance`.
    Accept {
        /// Consecutive instance number assigned by the leader.
        instance: u64,
        /// The command bound to the instance.
        cmd: Command,
        /// The replica whose client issued the command.
        origin: ReplicaId,
    },
    /// Phase 2b: a replica has logged the instance. Sent to the leader
    /// (plain Paxos) or broadcast to everyone (Paxos-bcast).
    Accepted {
        /// The instance being acknowledged.
        instance: u64,
    },
    /// Commit notification from the leader (plain Paxos only).
    Commit {
        /// The committed instance.
        instance: u64,
    },
}

impl WireSize for PaxosMsg {
    fn wire_size(&self) -> usize {
        match self {
            PaxosMsg::Forward { cmd, .. } => MSG_HEADER_BYTES + cmd.wire_size(),
            PaxosMsg::Accept { cmd, .. } => MSG_HEADER_BYTES + cmd.wire_size(),
            PaxosMsg::Accepted { .. } | PaxosMsg::Commit { .. } => MSG_HEADER_BYTES,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::CommandId;
    use rsm_core::id::ClientId;

    #[test]
    fn payload_bearing_messages_are_larger() {
        let cmd = Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1),
            Bytes::from(vec![0u8; 100]),
        );
        let accept = PaxosMsg::Accept {
            instance: 1,
            cmd: cmd.clone(),
            origin: ReplicaId::new(0),
        };
        let ack = PaxosMsg::Accepted { instance: 1 };
        assert!(accept.wire_size() > ack.wire_size() + 100);
        assert_eq!(ack.wire_size(), MSG_HEADER_BYTES);
    }
}
