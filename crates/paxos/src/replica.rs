//! The Multi-Paxos replica state machine (plain and bcast variants).

use std::collections::BTreeMap;

use rsm_core::command::{Command, Committed};
use rsm_core::config::Membership;
use rsm_core::id::ReplicaId;
use rsm_core::protocol::{Context, Protocol, TimerToken};

use crate::msg::PaxosMsg;

/// Which phase-2b dissemination strategy to run (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaxosVariant {
    /// Phase 2b to the leader only; leader broadcasts commit notifications.
    Plain,
    /// Phase 2b broadcast to all replicas; everyone self-commits on a
    /// majority ("a well-known optimization ... saving the last message").
    Bcast,
}

/// Stable log record of Multi-Paxos: accepted instances and commit marks.
#[derive(Debug, Clone)]
pub enum PaxosLogRec {
    /// An accepted (logged) instance, phase 2.
    Accept {
        /// Instance number.
        instance: u64,
        /// The command.
        cmd: Command,
        /// Originating replica.
        origin: ReplicaId,
    },
    /// A commit mark for an instance.
    Commit {
        /// Instance number.
        instance: u64,
    },
}

#[derive(Debug, Default)]
struct Instance {
    cmd: Option<(Command, ReplicaId)>,
    acks: usize,
    committed: bool,
    executed: bool,
}

/// A Multi-Paxos replica with a fixed, stable leader.
///
/// See the crate docs for the latency characteristics of each
/// [`PaxosVariant`]. The implementation assumes the leader does not fail
/// (ballot 0 everywhere), which matches the paper's failure-free latency
/// and throughput evaluations of the baseline.
#[derive(Debug)]
pub struct MultiPaxos {
    id: ReplicaId,
    membership: Membership,
    leader: ReplicaId,
    variant: PaxosVariant,
    /// Leader only: next instance number to assign.
    next_instance: u64,
    instances: BTreeMap<u64, Instance>,
    /// Next instance to execute (all below are executed).
    exec_cursor: u64,
}

impl MultiPaxos {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `leader` is not in the membership spec.
    pub fn new(
        id: ReplicaId,
        membership: Membership,
        leader: ReplicaId,
        variant: PaxosVariant,
    ) -> Self {
        assert!(membership.in_spec(id), "replica {id} not in spec");
        assert!(membership.in_spec(leader), "leader {leader} not in spec");
        MultiPaxos {
            id,
            membership,
            leader,
            variant,
            next_instance: 0,
            instances: BTreeMap::new(),
            exec_cursor: 0,
        }
    }

    /// The designated leader replica.
    pub fn leader(&self) -> ReplicaId {
        self.leader
    }

    /// Whether this replica is the leader.
    pub fn is_leader(&self) -> bool {
        self.id == self.leader
    }

    /// The dissemination variant this replica runs.
    pub fn variant(&self) -> PaxosVariant {
        self.variant
    }

    /// Number of instances executed so far.
    pub fn executed(&self) -> u64 {
        self.exec_cursor
    }

    fn majority(&self) -> usize {
        self.membership.majority()
    }

    /// Leader: bind `cmd` to the next instance and start phase 2.
    fn propose(&mut self, cmd: Command, origin: ReplicaId, ctx: &mut dyn Context<Self>) {
        debug_assert!(self.is_leader());
        let instance = self.next_instance;
        self.next_instance += 1;
        for r in self.membership.config().to_vec() {
            ctx.send(
                r,
                PaxosMsg::Accept {
                    instance,
                    cmd: cmd.clone(),
                    origin,
                },
            );
        }
    }

    fn on_accept(
        &mut self,
        instance: u64,
        cmd: Command,
        origin: ReplicaId,
        ctx: &mut dyn Context<Self>,
    ) {
        if instance < self.exec_cursor {
            return; // stale: already executed
        }
        ctx.log_append(PaxosLogRec::Accept {
            instance,
            cmd: cmd.clone(),
            origin,
        });
        let inst = self.instances.entry(instance).or_default();
        inst.cmd = Some((cmd, origin));
        let ack = PaxosMsg::Accepted { instance };
        match self.variant {
            PaxosVariant::Plain => ctx.send(self.leader, ack),
            PaxosVariant::Bcast => {
                for r in self.membership.config().to_vec() {
                    ctx.send(r, ack.clone());
                }
            }
        }
    }

    fn on_accepted(&mut self, instance: u64, ctx: &mut dyn Context<Self>) {
        if instance < self.exec_cursor {
            return; // stale: already executed
        }
        let majority = self.majority();
        let inst = self.instances.entry(instance).or_default();
        inst.acks += 1;
        if inst.acks == majority && !inst.committed {
            match self.variant {
                PaxosVariant::Plain => {
                    // Only the leader counts 2b in plain Paxos; notify all.
                    debug_assert!(self.id == self.leader);
                    for r in self.membership.config().to_vec() {
                        ctx.send(r, PaxosMsg::Commit { instance });
                    }
                }
                PaxosVariant::Bcast => {
                    inst.committed = true;
                    ctx.log_append(PaxosLogRec::Commit { instance });
                    self.execute_ready(ctx);
                }
            }
        }
    }

    fn on_commit(&mut self, instance: u64, ctx: &mut dyn Context<Self>) {
        if instance < self.exec_cursor {
            return; // stale: already executed
        }
        let inst = self.instances.entry(instance).or_default();
        if !inst.committed {
            inst.committed = true;
            ctx.log_append(PaxosLogRec::Commit { instance });
            self.execute_ready(ctx);
        }
    }

    /// Executes committed instances in consecutive order.
    fn execute_ready(&mut self, ctx: &mut dyn Context<Self>) {
        while let Some(inst) = self.instances.get_mut(&self.exec_cursor) {
            if !inst.committed || inst.executed {
                break;
            }
            let (cmd, origin) = inst
                .cmd
                .clone()
                .expect("committed instance must hold its command (FIFO from leader)");
            inst.executed = true;
            let instance = self.exec_cursor;
            self.exec_cursor += 1;
            ctx.commit(Committed {
                cmd,
                origin,
                order_hint: instance,
            });
            self.instances.remove(&(instance));
        }
    }
}

impl Protocol for MultiPaxos {
    type Msg = PaxosMsg;
    type LogRec = PaxosLogRec;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, _ctx: &mut dyn Context<Self>) {}

    fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        if self.is_leader() {
            let origin = self.id;
            self.propose(cmd, origin, ctx);
        } else {
            ctx.send(
                self.leader,
                PaxosMsg::Forward {
                    cmd,
                    origin: self.id,
                },
            );
        }
    }

    fn on_message(&mut self, _from: ReplicaId, msg: PaxosMsg, ctx: &mut dyn Context<Self>) {
        match msg {
            PaxosMsg::Forward { cmd, origin } => {
                if self.is_leader() {
                    self.propose(cmd, origin, ctx);
                }
            }
            PaxosMsg::Accept {
                instance,
                cmd,
                origin,
            } => self.on_accept(instance, cmd, origin, ctx),
            PaxosMsg::Accepted { instance } => {
                // In plain Paxos only the leader receives and counts 2b.
                if self.variant == PaxosVariant::Bcast || self.is_leader() {
                    self.on_accepted(instance, ctx);
                }
            }
            PaxosMsg::Commit { instance } => self.on_commit(instance, ctx),
        }
    }

    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut dyn Context<Self>) {}

    fn on_recover(&mut self, log: &[PaxosLogRec], ctx: &mut dyn Context<Self>) {
        // Rebuild accepted instances, then re-execute the committed prefix.
        for rec in log {
            match rec {
                PaxosLogRec::Accept {
                    instance,
                    cmd,
                    origin,
                } => {
                    let inst = self.instances.entry(*instance).or_default();
                    inst.cmd = Some((cmd.clone(), *origin));
                }
                PaxosLogRec::Commit { instance } => {
                    self.instances.entry(*instance).or_default().committed = true;
                }
            }
        }
        self.next_instance = self
            .instances
            .keys()
            .max()
            .map_or(0, |m| m + 1)
            .max(self.next_instance);
        self.execute_ready(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::CommandId;
    use rsm_core::id::ClientId;
    use rsm_core::time::Micros;

    struct TestCtx {
        sends: Vec<(ReplicaId, PaxosMsg)>,
        commits: Vec<Committed>,
        log: Vec<PaxosLogRec>,
        clock: Micros,
    }

    impl TestCtx {
        fn new() -> Self {
            TestCtx {
                sends: Vec::new(),
                commits: Vec::new(),
                log: Vec::new(),
                clock: 0,
            }
        }
    }

    impl Context<MultiPaxos> for TestCtx {
        fn clock(&mut self) -> Micros {
            self.clock += 1;
            self.clock
        }
        fn send(&mut self, to: ReplicaId, msg: PaxosMsg) {
            self.sends.push((to, msg));
        }
        fn log_append(&mut self, rec: PaxosLogRec) {
            self.log.push(rec);
        }
        fn log_rewrite(&mut self, recs: Vec<PaxosLogRec>) {
            self.log = recs;
        }
        fn commit(&mut self, c: Committed) {
            self.commits.push(c);
        }
        fn set_timer(&mut self, _after: Micros, _token: TimerToken) {}
    }

    fn cmd(seq: u64) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from_static(b"op"),
        )
    }

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn follower_forwards_to_leader() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        p.on_client_request(cmd(1), &mut ctx);
        assert_eq!(ctx.sends.len(), 1);
        assert_eq!(ctx.sends[0].0, r(0));
        assert!(matches!(ctx.sends[0].1, PaxosMsg::Forward { .. }));
    }

    #[test]
    fn leader_assigns_consecutive_instances() {
        let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        p.on_client_request(cmd(1), &mut ctx);
        p.on_client_request(cmd(2), &mut ctx);
        let instances: Vec<u64> = ctx
            .sends
            .iter()
            .filter_map(|(_, m)| match m {
                PaxosMsg::Accept { instance, .. } => Some(*instance),
                _ => None,
            })
            .collect();
        // 3 replicas × 2 commands.
        assert_eq!(instances.len(), 6);
        assert_eq!(instances[0], 0);
        assert_eq!(instances[5], 1);
    }

    #[test]
    fn bcast_commits_on_majority_acks() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        p.on_message(
            r(0),
            PaxosMsg::Accept {
                instance: 0,
                cmd: cmd(1),
                origin: r(0),
            },
            &mut ctx,
        );
        // Logged and broadcast its own 2b.
        assert_eq!(ctx.log.len(), 1);
        let own_acks = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, PaxosMsg::Accepted { .. }))
            .count();
        assert_eq!(own_acks, 3);
        // Two 2b messages arrive (majority of 3 incl. someone else's).
        p.on_message(r(0), PaxosMsg::Accepted { instance: 0 }, &mut ctx);
        assert!(ctx.commits.is_empty());
        p.on_message(r(1), PaxosMsg::Accepted { instance: 0 }, &mut ctx);
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(ctx.commits[0].origin, r(0));
    }

    #[test]
    fn plain_follower_waits_for_commit_message() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Plain);
        let mut ctx = TestCtx::new();
        p.on_message(
            r(0),
            PaxosMsg::Accept {
                instance: 0,
                cmd: cmd(1),
                origin: r(2),
            },
            &mut ctx,
        );
        // 2b goes to the leader only.
        let (to, _) = ctx
            .sends
            .iter()
            .find(|(_, m)| matches!(m, PaxosMsg::Accepted { .. }))
            .unwrap();
        assert_eq!(*to, r(0));
        // Acks from others do nothing at a plain follower.
        p.on_message(r(0), PaxosMsg::Accepted { instance: 0 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { instance: 0 }, &mut ctx);
        assert!(ctx.commits.is_empty());
        p.on_message(r(0), PaxosMsg::Commit { instance: 0 }, &mut ctx);
        assert_eq!(ctx.commits.len(), 1);
    }

    #[test]
    fn plain_leader_broadcasts_commit_on_majority() {
        let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Plain);
        let mut ctx = TestCtx::new();
        p.on_client_request(cmd(1), &mut ctx);
        p.on_message(
            r(0),
            PaxosMsg::Accept {
                instance: 0,
                cmd: cmd(1),
                origin: r(0),
            },
            &mut ctx,
        );
        p.on_message(r(0), PaxosMsg::Accepted { instance: 0 }, &mut ctx);
        p.on_message(r(1), PaxosMsg::Accepted { instance: 0 }, &mut ctx);
        let commit_sends = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, PaxosMsg::Commit { .. }))
            .count();
        assert_eq!(commit_sends, 3);
    }

    #[test]
    fn execution_is_in_instance_order_despite_commit_reorder() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        for i in 0..2 {
            p.on_message(
                r(0),
                PaxosMsg::Accept {
                    instance: i,
                    cmd: cmd(i),
                    origin: r(0),
                },
                &mut ctx,
            );
        }
        // Majority for instance 1 arrives before instance 0.
        p.on_message(r(0), PaxosMsg::Accepted { instance: 1 }, &mut ctx);
        p.on_message(r(1), PaxosMsg::Accepted { instance: 1 }, &mut ctx);
        assert!(ctx.commits.is_empty(), "instance 1 must wait for 0");
        p.on_message(r(0), PaxosMsg::Accepted { instance: 0 }, &mut ctx);
        p.on_message(r(1), PaxosMsg::Accepted { instance: 0 }, &mut ctx);
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[0].order_hint, 0);
        assert_eq!(ctx.commits[1].order_hint, 1);
    }

    #[test]
    fn recovery_replays_committed_prefix() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        let log = vec![
            PaxosLogRec::Accept {
                instance: 0,
                cmd: cmd(1),
                origin: r(0),
            },
            PaxosLogRec::Accept {
                instance: 1,
                cmd: cmd(2),
                origin: r(2),
            },
            PaxosLogRec::Commit { instance: 0 },
        ];
        p.on_recover(&log, &mut ctx);
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(ctx.commits[0].order_hint, 0);
        assert_eq!(p.executed(), 1);
        // The uncommitted instance 1 stays pending; a later Commit resumes.
        p.on_message(r(0), PaxosMsg::Accepted { instance: 1 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { instance: 1 }, &mut ctx);
        assert_eq!(ctx.commits.len(), 2);
    }
}
