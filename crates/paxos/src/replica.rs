//! The Multi-Paxos replica state machine (plain and bcast variants).
//!
//! The data plane is fully batched: the leader binds whole client
//! [`Batch`]es to contiguous instance runs with one `ACCEPT`, and
//! replication progress flows as **cumulative watermarks** — one
//! `ACCEPTED` (and, in plain Paxos, one `COMMIT`) message covers every
//! instance up to its watermark. Per-instance ack counters disappear; the
//! hot path compares a handful of per-replica integers.
//!
//! # Leader election and lease-based fail-over
//!
//! With a [`LeaseConfig`] installed, the replica also runs classic
//! Multi-Paxos leader change, promoted from the single-decree machinery
//! in [`synod`](crate::synod) to the whole instance log:
//!
//! * every data-plane message carries the proposing regime's [`Ballot`];
//!   acceptors **reject** (`NACK`) anything below their promise;
//! * a follower whose leader lease expires broadcasts `PREPARE` over the
//!   log suffix above its committed watermark; acceptors answer
//!   `PROMISE` with their accepted entries and ballots;
//! * on a majority of promises the candidate **repairs** the suffix: it
//!   adopts the highest-ballot accepted value per instance, closes
//!   proven-unchosen holes with no-ops, re-proposes everything at its
//!   ballot (`REPAIR`), and resumes the batched data plane from the top
//!   of the repaired range.
//!
//! ## Why a deposed leader is harmless (the fencing invariant)
//!
//! The lease is **liveness only**; safety rests on ballots. A deposed
//! leader's in-flight `ACCEPT`s land in one of two worlds: at acceptors
//! that already promised the new ballot they are nacked outright; at
//! acceptors that have not, they may still be accepted — but then they
//! are sub-majority acceptances unless the old regime really did commit,
//! and either way the new leader's promise quorum intersects every
//! accept quorum, so its repair adopts any possibly-committed value and
//! supersedes the rest at a higher ballot. Cumulative `ACCEPTED`
//! watermarks are regime-tagged, so vouches earned under the old leader
//! are never counted toward the new regime's commits. Clock skew can
//! therefore cost an unneeded election, never agreement.

use std::collections::BTreeMap;

use rsm_core::batch::Batch;
use rsm_core::checkpoint::{
    Checkpoint, CheckpointPolicy, Checkpointer, StateTransferReply, StateTransferRequest,
};
use rsm_core::command::{Command, Committed, Reply};
use rsm_core::config::{Epoch, Membership};
use rsm_core::id::ReplicaId;
use rsm_core::lease::{Lease, LeaseConfig};
use rsm_core::obs::{names, TraceStage};
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::read::{ReadPath, ReadProbes, ReadQueue, ReadReply};
use rsm_core::session::SessionTable;
use rsm_core::time::Micros;

use crate::msg::{PaxosMsg, SuffixEntry};
use crate::synod::Ballot;

/// How long execution must sit at the *same* hole before a
/// [`PaxosMsg::StateRequest`] leaves, and how long to wait before
/// retrying an unanswered one. Comfortably above a WAN round trip, so a
/// hole whose `ACCEPT` is merely in flight (commit watermarks can outrun
/// accepts via faster relay paths) resolves itself and never triggers a
/// transfer; a hole whose accepts were lost to a crash persists and does.
const TRANSFER_RETRY_US: Micros = 500_000;

/// The lease/election timer (heartbeats, suspicion, candidate retries).
pub(crate) const TOKEN_LEASE: TimerToken = TimerToken(1);

/// The probe-flush escape timer: reads queued behind an in-flight quorum
/// probe normally ride the next probe the moment the current one
/// completes, but probes are fire-once (no retransmit) — if the gating
/// probe never reaches a majority (crashed or partitioned peers), this
/// timer launches a fresh probe carrying everything queued, so batching
/// can never turn into a deadlock.
pub(crate) const TOKEN_PROBE_FLUSH: TimerToken = TimerToken(2);

/// How long queued reads may wait behind an in-flight probe before the
/// escape timer forces their own probe out. A compromise between probe
/// traffic (the point of batching) and worst-case read latency when a
/// probe stalls.
pub(crate) const PROBE_FLUSH_US: Micros = 5_000;

/// Reads queue behind in-flight probes only past this concurrency cap.
/// Below it, each read probes immediately — parking a lone read behind a
/// wide-area probe RTT adds latency without saving a single message —
/// while a burst that would otherwise broadcast one probe per read
/// coalesces onto the next flush.
pub(crate) const MAX_INFLIGHT_PROBES: usize = 4;

/// Which phase-2b dissemination strategy to run (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaxosVariant {
    /// Phase 2b to the leader only; leader broadcasts commit notifications.
    Plain,
    /// Phase 2b broadcast to all replicas; everyone self-commits on a
    /// majority ("a well-known optimization ... saving the last message").
    Bcast,
}

/// Stable log record of Multi-Paxos: accepted instances, promises, and
/// commit marks.
#[derive(Debug, Clone)]
pub enum PaxosLogRec {
    /// An accepted (logged) instance, phase 2.
    Accept {
        /// Instance number.
        instance: u64,
        /// The ballot the value was accepted at.
        ballot: Ballot,
        /// The command.
        cmd: Command,
        /// Originating replica.
        origin: ReplicaId,
    },
    /// An accepted no-op filler: a hole the electing leader proved
    /// unchosen and closed (phase 2 of a [`PaxosMsg::Repair`]).
    Noop {
        /// Instance number.
        instance: u64,
        /// The repairing ballot.
        ballot: Ballot,
    },
    /// The acceptor promise: no ballot below this will ever be accepted.
    /// Logged before the corresponding `PROMISE`/acceptance leaves the
    /// replica, and preserved by compaction, so a crash can never
    /// regress the promise and let a deposed leader back in.
    Promised(Ballot),
    /// A commit mark for an instance.
    Commit {
        /// Instance number.
        instance: u64,
    },
    /// A state machine checkpoint (shared subsystem,
    /// `rsm_core::checkpoint`): the snapshot reflects every instance
    /// **below** the (exclusive) applied watermark. Recovery restores the
    /// newest checkpoint and replays only the records above it; with
    /// compaction the log is rewritten to the checkpoint plus the
    /// still-pending accepts whenever one is written.
    Checkpoint(Checkpoint<u64>),
}

/// One accepted instance held in memory until executed.
#[derive(Debug, Clone)]
struct Slot {
    /// The ballot the value was accepted at.
    ballot: Ballot,
    /// Whether this replica may execute and vouch for the value. Live
    /// acceptances are verified; entries rebuilt from the log after a
    /// crash are not (an election this replica slept through may have
    /// superseded them) until re-validated by current-regime traffic,
    /// their own commit mark, or a checkpoint install. Unverified slots
    /// are still *reported* in promises — acceptor durability — they are
    /// just never executed or vouched for.
    verified: bool,
    /// The command and its origin, or `None` for a no-op filler.
    value: Option<(Command, ReplicaId)>,
}

/// A candidate's in-flight election.
#[derive(Debug)]
struct Election {
    /// The candidacy ballot.
    ballot: Ballot,
    /// When the candidacy started (paces the retry at a higher round).
    started_at: Micros,
    /// Promises received so far: `(acceptor, committed watermark,
    /// accepted suffix)`.
    promises: Vec<(ReplicaId, u64, Vec<SuffixEntry>)>,
}

/// A candidate's in-flight pre-vote probe (opt-in,
/// [`LeaseConfig::pre_vote`]): the electability check that runs *before*
/// [`Election`], at a prospective ballot that has not been made durable
/// or promised anywhere. Dropped without trace if the leader proves
/// itself alive before a majority grants.
#[derive(Debug)]
struct PreVoteRound {
    /// The prospective candidacy ballot (`max_round_seen + 1` at probe
    /// time — *not* reserved; the real election recomputes it).
    ballot: Ballot,
    /// When the probe started (paces the retry).
    started_at: Micros,
    /// Replicas that answered "I would promise that".
    grants: Vec<ReplicaId>,
}

/// A Multi-Paxos replica.
///
/// Starts under the designated leader's initial regime (ballot round 0).
/// Without a [`LeaseConfig`] the leader is assumed stable — the paper's
/// failure-free evaluation setup. With one ([`with_failover`]), a leader
/// crash is detected by lease expiry and survivors elect a replacement
/// via `PREPARE`/`PROMISE`/`REPAIR` (see the module docs); the deposed
/// leader rejoins as a follower, fenced by its stale ballot.
///
/// [`with_failover`]: MultiPaxos::with_failover
#[derive(Debug)]
pub struct MultiPaxos {
    id: ReplicaId,
    membership: Membership,
    variant: PaxosVariant,
    /// Fail-over timing policy; [`LeaseConfig::DISABLED`] pins the
    /// initial leader forever.
    lease_cfg: LeaseConfig,
    /// The leader regime in effect: the highest ballot whose election
    /// outcome (or initial designation) this replica has adopted.
    regime: Ballot,
    /// The acceptor promise; always `>= regime`. While `promised >
    /// regime` an election is pending somewhere and this replica fences
    /// the old regime but has not yet seen the new leader's repair.
    promised: Ballot,
    /// Highest ballot round observed anywhere; candidacies outbid it.
    max_round_seen: u64,
    /// Last instant the current regime proved itself (leader traffic,
    /// heartbeat, or a granted promise).
    lease: Lease,
    /// This replica's candidacy, while one is in flight.
    election: Option<Election>,
    /// This replica's pre-vote probe, while one is in flight (only with
    /// [`LeaseConfig::pre_vote`]; mutually exclusive with `election`).
    prevote: Option<PreVoteRound>,
    /// Client batches buffered while campaigning; proposed on victory,
    /// forwarded on defeat.
    pending: Vec<(Batch, ReplicaId)>,
    /// Leader only: next instance number to assign.
    next_instance: u64,
    /// Commands accepted but not yet executed, keyed by instance.
    instances: BTreeMap<u64, Slot>,
    /// The regime-tagged vouch watermark: every instance below it is
    /// either known committed or logged here at the current regime's
    /// ballot (gap-free thanks to consecutive leader assignment over
    /// FIFO channels). Recomputed from the slot table whenever the
    /// regime changes.
    logged_next: u64,
    /// `acked[k]`: replica `k`'s acknowledged watermark **under the
    /// current regime**. Reset on every regime change; tracked by
    /// everyone in bcast mode, by the leader in plain mode.
    acked: Vec<u64>,
    /// All instances below this are known committed.
    committed_next: u64,
    /// Next instance to execute (all below are executed).
    exec_cursor: u64,
    /// Shared checkpoint scheduler (`rsm_core::checkpoint`).
    checkpointer: Checkpointer,
    /// The execution hole currently being watched and since when:
    /// `(exec_cursor, first observed)`. A hole must persist for
    /// [`TRANSFER_RETRY_US`] before a state transfer is requested, and
    /// the same field paces the retries afterwards.
    stalled_at: Option<(u64, Micros)>,
    /// The vouch gap a [`PaxosMsg::FillRequest`] is out for, and when it
    /// was sent: `(gap start, asked at)`. Paces the retries of leader
    /// retransmission for instances lost while this replica was down.
    fill_asked: Option<(u64, Micros)>,
    /// Rotation cursor over the peers for state transfer requests: one
    /// peer is asked per round (a snapshot is large; asking everyone
    /// would make every peer serialize and ship one while the requester
    /// installs exactly one), and an unhelpful or dead peer just means
    /// the next retry asks the next one.
    transfer_target: usize,

    // ------ local reads (`rsm_core::read`) ------
    /// Reads parked on an instance mark, served once `exec_cursor`
    /// passes it.
    read_queue: ReadQueue<u64>,
    /// Quorum-read probes awaiting a majority of marks.
    read_probes: ReadProbes,
    /// Reads that arrived while a probe was in flight: they ride the
    /// *next* probe together (one `ReadRequest` carries many reads), cut
    /// loose by the completion of the current probe or by
    /// [`TOKEN_PROBE_FLUSH`]. A probe must begin after every read it
    /// carries arrived — attaching to an in-flight probe could park a
    /// read at a mark predating a write it must observe.
    queued_probe_reads: Vec<Command>,
    /// Whether a [`TOKEN_PROBE_FLUSH`] timer is outstanding.
    probe_flush_armed: bool,

    // ------ client sessions (exactly-once; `rsm_core::session`) ------
    /// Per-client dedup window: a retried command that already executed
    /// is answered from the cached reply instead of re-applying. Rides
    /// checkpoints and state transfer; rebuilt by replay on recovery.
    sessions: SessionTable,
    /// `regime_heard[k]`: local clock when replica `k` last sent
    /// evidence of the **current** regime (an `Accepted` or `ReadMark`
    /// at our ballot). Reset on regime change; feeds the leader's read
    /// lease (see [`MultiPaxos::read_lease_valid`]).
    regime_heard: Vec<Micros>,
    /// Top of the suffix this leader re-proposed when it won its
    /// election (0 for the initial regime). Leader-local reads must not
    /// be served below it: instances inherited from older regimes may
    /// hold writes that committed — and replied — before the fail-over,
    /// yet sit above our committed watermark until re-acknowledged.
    repair_top: u64,
}

impl MultiPaxos {
    /// Creates a replica under `leader`'s initial regime.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `leader` is not in the membership spec.
    pub fn new(
        id: ReplicaId,
        membership: Membership,
        leader: ReplicaId,
        variant: PaxosVariant,
    ) -> Self {
        assert!(membership.in_spec(id), "replica {id} not in spec");
        assert!(membership.in_spec(leader), "leader {leader} not in spec");
        let n = membership.spec().len();
        let initial = Ballot {
            round: 0,
            proposer: leader,
        };
        MultiPaxos {
            id,
            membership,
            variant,
            lease_cfg: LeaseConfig::DISABLED,
            regime: initial,
            promised: initial,
            max_round_seen: 0,
            lease: Lease::new(0),
            election: None,
            prevote: None,
            pending: Vec::new(),
            next_instance: 0,
            instances: BTreeMap::new(),
            logged_next: 0,
            acked: vec![0; n],
            committed_next: 0,
            exec_cursor: 0,
            checkpointer: Checkpointer::new(CheckpointPolicy::DISABLED),
            stalled_at: None,
            fill_asked: None,
            transfer_target: 0,
            read_queue: ReadQueue::new(),
            read_probes: ReadProbes::new(),
            queued_probe_reads: Vec::new(),
            probe_flush_armed: false,
            sessions: SessionTable::default(),
            regime_heard: vec![0; n],
            repair_top: 0,
        }
    }

    /// Enables periodic checkpoints (and, per the policy, log compaction)
    /// for this replica.
    pub fn with_checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpointer = Checkpointer::new(policy);
        self
    }

    /// Bounds the client-session dedup window (`rsm_core::session`);
    /// the default is [`rsm_core::session::DEFAULT_SESSION_WINDOW`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_session_window(mut self, n: usize) -> Self {
        self.sessions = SessionTable::new(n);
        self
    }

    /// Sets the session-table chaos-canary knob (**test-only**): when on,
    /// duplicate writes re-apply instead of deduplicating — the bug the
    /// chaos fuzzer proves it can find and shrink.
    pub fn with_session_canary(mut self, on: bool) -> Self {
        self.sessions.set_canary_skip_dedup(on);
        self
    }

    /// Enables lease-based fail-over: leader heartbeats, follower
    /// suspicion, and ballot elections per `lease`.
    pub fn with_failover(mut self, lease: LeaseConfig) -> Self {
        self.lease_cfg = lease;
        self
    }

    /// The replica this one currently believes leads (the proposer of
    /// the adopted regime).
    pub fn leader(&self) -> ReplicaId {
        self.regime.proposer
    }

    /// Whether this replica is the active, unfenced leader.
    pub fn is_leader(&self) -> bool {
        self.regime.proposer == self.id && self.promised == self.regime
    }

    /// The adopted leader regime's ballot.
    pub fn regime(&self) -> Ballot {
        self.regime
    }

    /// The acceptor promise (never below [`regime`](MultiPaxos::regime)).
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// Whether an election started by this replica is in flight.
    pub fn is_campaigning(&self) -> bool {
        self.election.is_some()
    }

    /// Whether a pre-vote probe started by this replica is in flight
    /// ([`LeaseConfig::pre_vote`]).
    pub fn is_pre_voting(&self) -> bool {
        self.prevote.is_some()
    }

    /// The dissemination variant this replica runs.
    pub fn variant(&self) -> PaxosVariant {
        self.variant
    }

    /// Number of instances executed so far (no-op fillers included).
    pub fn executed(&self) -> u64 {
        self.exec_cursor
    }

    fn majority(&self) -> usize {
        self.membership.majority()
    }

    /// The best current guess at who leads: the adopted regime's
    /// proposer, or — while fencing a newer promise — that promise's
    /// candidate.
    fn leader_hint(&self) -> ReplicaId {
        if self.promised > self.regime {
            self.promised.proposer
        } else {
            self.regime.proposer
        }
    }

    /// Records an observed ballot and durably raises the promise if it
    /// exceeds the current one.
    fn promise_at_least(&mut self, ballot: Ballot, ctx: &mut dyn Context<Self>) {
        self.max_round_seen = self.max_round_seen.max(ballot.round);
        if ballot > self.promised {
            self.promised = ballot;
            ctx.log_append(PaxosLogRec::Promised(ballot));
        }
    }

    /// Switches to a newer leader regime: discards regime-scoped state
    /// (per-replica ack watermarks), demotes acceptances from older
    /// ballots to unverified — a repair may have superseded them — and
    /// recomputes the vouch watermark. The caller has already raised the
    /// promise to at least `ballot`.
    fn adopt_regime(&mut self, ballot: Ballot, ctx: &mut dyn Context<Self>) {
        if ballot <= self.regime {
            return;
        }
        self.regime = ballot;
        for slot in self.instances.values_mut() {
            if slot.ballot < ballot {
                slot.verified = false;
            }
        }
        for a in &mut self.acked {
            *a = 0;
        }
        // Regime-freshness evidence (the read lease) must be re-earned
        // under the new ballot.
        for h in &mut self.regime_heard {
            *h = 0;
        }
        self.recompute_vouch();
        // A fresh regime restarts the stall confirmation window: its
        // repair may be about to fill (or re-cut) the hole.
        self.stalled_at = None;
        if let Some(e) = &self.election {
            if ballot >= e.ballot {
                self.election = None;
            }
        }
        let now = ctx.clock();
        self.lease.renew(now);
    }

    /// Renews the lease when `from` is the adopted regime's leader
    /// speaking at its own ballot.
    fn note_leader_alive(&mut self, from: ReplicaId, ballot: Ballot, ctx: &mut dyn Context<Self>) {
        if ballot == self.regime && from == self.regime.proposer {
            let now = ctx.clock();
            self.lease.renew(now);
        }
    }

    /// Recomputes the regime-tagged vouch watermark: starting from the
    /// committed watermark (decided instances need no local voucher —
    /// the same argument that lets a recovered replica's cumulative ack
    /// jump a committed gap), extend over contiguous verified slots.
    fn recompute_vouch(&mut self) {
        let mut w = self.committed_next;
        while self.instances.get(&w).is_some_and(|s| s.verified) {
            w += 1;
        }
        self.logged_next = w;
    }

    /// Sends the cumulative phase-2b watermark for the current regime.
    fn send_ack(&mut self, ctx: &mut dyn Context<Self>) {
        let ack = PaxosMsg::Accepted {
            ballot: self.regime,
            up_to: self.logged_next,
        };
        match self.variant {
            PaxosVariant::Plain => ctx.send(self.regime.proposer, ack),
            PaxosVariant::Bcast => {
                for r in self.membership.config().to_vec() {
                    ctx.send(r, ack.clone());
                }
            }
        }
    }

    /// Re-dispatches batches buffered during a candidacy once leadership
    /// is settled (either way).
    fn flush_pending(&mut self, ctx: &mut dyn Context<Self>) {
        if self.election.is_some() || self.pending.is_empty() {
            return;
        }
        let pending: Vec<(Batch, ReplicaId)> = self.pending.drain(..).collect();
        for (cmds, origin) in pending {
            if self.is_leader() {
                self.propose(cmds, origin, ctx);
            } else {
                ctx.send(self.leader_hint(), PaxosMsg::Forward { cmds, origin });
            }
        }
    }

    /// Leader: bind the batch to the next contiguous instance run and
    /// start phase 2 with a single ACCEPT.
    fn propose(&mut self, cmds: Batch, origin: ReplicaId, ctx: &mut dyn Context<Self>) {
        debug_assert!(self.is_leader());
        let first_instance = self.next_instance;
        self.next_instance += cmds.len() as u64;
        // Send to the peers, then log the run locally via a synchronous
        // self-delivery (not a network self-send): a leader that crashed
        // after broadcasting but before a looped-back self-delivery would
        // recover with these instances absent from its log, reset
        // next_instance below them, and re-propose the same numbers with
        // different commands — divergent execution at the followers.
        // Sending to peers first keeps Accept ahead of our own Accepted
        // on every FIFO channel.
        let ballot = self.regime;
        if ctx.obs_active() {
            for cmd in cmds.iter() {
                ctx.trace(cmd.id, TraceStage::Proposed);
            }
        }
        for r in self.membership.config().to_vec() {
            if r != self.id {
                ctx.send(
                    r,
                    PaxosMsg::Accept {
                        ballot,
                        first_instance,
                        cmds: cmds.clone(),
                        origin,
                    },
                );
            }
        }
        self.on_accept(self.id, ballot, first_instance, cmds, origin, ctx);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_accept(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        first_instance: u64,
        cmds: Batch,
        origin: ReplicaId,
        ctx: &mut dyn Context<Self>,
    ) {
        if ballot < self.promised {
            // Stale-ballot fencing: the sender was deposed (or outbid)
            // and must learn it rather than keep proposing into the void.
            ctx.send(
                from,
                PaxosMsg::Nack {
                    promised: self.promised,
                },
            );
            return;
        }
        // Accepting at a ballot implies promising it; an Accept can be
        // the first regime-b message a replica sees (it slept through
        // the repair), in which case it adopts the regime here.
        self.promise_at_least(ballot, ctx);
        self.adopt_regime(ballot, ctx);
        self.note_leader_alive(from, ballot, ctx);
        let last_next = first_instance + cmds.len() as u64;
        if last_next <= self.exec_cursor {
            self.flush_pending(ctx);
            return; // stale: the whole run is already executed
        }
        // Iterate by reference: the batch's storage is typically still
        // shared with the leader's other in-flight broadcast copies, so
        // consuming it would deep-clone the whole command vector just to
        // move commands we clone anyway (Command clones are cheap).
        for (i, cmd) in cmds.iter().enumerate() {
            let instance = first_instance + i as u64;
            if instance < self.exec_cursor {
                continue;
            }
            ctx.log_append(PaxosLogRec::Accept {
                instance,
                ballot,
                cmd: cmd.clone(),
                origin,
            });
            self.instances.insert(
                instance,
                Slot {
                    ballot,
                    verified: true,
                    value: Some((cmd.clone(), origin)),
                },
            );
        }
        // Advance the ack watermark only over a gap-free prefix. A gap
        // means accepts were lost while this replica was down (the only
        // loss mode — channels are FIFO); a cumulative ack crossing it
        // would falsely claim the lost instances and break quorum
        // intersection. The commands past the gap are still logged
        // above; this replica just never vouches for the hole — until
        // the hole is known committed: commitment was then established
        // by other replicas' evidence, so covering it cumulatively adds
        // no false quorum weight, and the watermark may jump (this is
        // what lets a recovered replica resume contributing to quorums
        // once the cluster commits past its outage).
        if first_instance <= self.logged_next {
            self.logged_next = self.logged_next.max(last_next);
        } else if self.committed_next >= first_instance {
            self.logged_next = last_next;
        } else {
            // A vouch gap: per-link FIFO means the accepts for
            // [logged_next, first_instance) were lost — either in our
            // own outage or, crucially, while the leader proposed
            // without a live majority (then *no one* can ack across the
            // hole and the uncommitted range would deadlock forever).
            // Ask the leader to retransmit from its slot table.
            self.request_gap_fill(first_instance, ctx);
        }
        // One cumulative ack for the whole batch.
        self.send_ack(ctx);
        // A late accept can fill an instance the commit watermark already
        // covers (its Accepted watermarks outran it via faster relays);
        // execution must resume here because nothing else will retry.
        self.execute_ready(true, ctx);
        self.flush_pending(ctx);
    }

    fn on_accepted(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        up_to: u64,
        ctx: &mut dyn Context<Self>,
    ) {
        if ballot != self.regime {
            // A vouch for another regime's log must never count toward
            // this one's quorums: the sender's prefix may hold values a
            // repair since superseded (older ballot), or values we have
            // not adopted yet (newer ballot — its repair will reach us
            // first on the leader's FIFO channel).
            return;
        }
        self.note_regime_heard(from, ctx);
        let k = from.index();
        if up_to <= self.acked[k] {
            return; // stale or duplicate watermark
        }
        self.acked[k] = up_to;
        self.advance_commit(ctx);
    }

    /// The instance watermark a majority has acknowledged: the
    /// `majority`-th largest per-replica watermark, found by advancing a
    /// candidate from the current committed watermark while a majority
    /// still covers it. Allocation-free and O(n) per advanced instance,
    /// so an ACCEPTED that advances nothing costs one counting pass.
    fn majority_watermark(&self) -> u64 {
        let mut w = self.committed_next;
        loop {
            let covered = self
                .membership
                .config()
                .iter()
                .filter(|r| self.acked[r.index()] > w)
                .count();
            if covered < self.majority() {
                return w;
            }
            w += 1;
        }
    }

    /// Recomputes the committed watermark from the acknowledgement
    /// watermarks; on advance, notifies (plain leader) and executes.
    /// Stamps [`Replicated`](TraceStage::Replicated) on the commands of
    /// instances `[from, to)`: the commit watermark passing an instance
    /// is exactly the majority-acknowledgement event. Write-only.
    fn obs_stamp_replicated(&self, from: u64, to: u64, ctx: &mut dyn Context<Self>) {
        for (_, slot) in self.instances.range(from..to) {
            if let Some((cmd, _)) = &slot.value {
                ctx.trace(cmd.id, TraceStage::Replicated);
            }
        }
    }

    fn advance_commit(&mut self, ctx: &mut dyn Context<Self>) {
        let w = self.majority_watermark();
        if w <= self.committed_next {
            return;
        }
        if ctx.obs_active() {
            self.obs_stamp_replicated(self.committed_next, w, ctx);
        }
        self.committed_next = w;
        self.recompute_vouch();
        if self.variant == PaxosVariant::Plain {
            // Only the leader counts 2b in plain Paxos; notify everyone
            // (itself included) with one cumulative COMMIT.
            debug_assert!(self.is_leader());
            for r in self.membership.config().to_vec() {
                ctx.send(
                    r,
                    PaxosMsg::Commit {
                        ballot: self.regime,
                        up_to: w,
                    },
                );
            }
        }
        self.execute_ready(true, ctx);
    }

    fn on_commit(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        up_to: u64,
        ctx: &mut dyn Context<Self>,
    ) {
        // Commitment is final whichever regime announces it: a (possibly
        // since-deposed) leader only announces quorums it really
        // observed, and any later repair preserves committed values. A
        // commit from a *newer* regime additionally proves that regime
        // won its election.
        self.promise_at_least(ballot, ctx);
        self.adopt_regime(ballot, ctx);
        self.note_leader_alive(from, ballot, ctx);
        if ballot < self.promised {
            ctx.send(
                from,
                PaxosMsg::Nack {
                    promised: self.promised,
                },
            );
        }
        if up_to <= self.committed_next {
            self.flush_pending(ctx);
            return; // stale or duplicate notification
        }
        if ctx.obs_active() {
            self.obs_stamp_replicated(self.committed_next, up_to, ctx);
        }
        self.committed_next = up_to;
        self.recompute_vouch();
        self.execute_ready(true, ctx);
        self.flush_pending(ctx);
    }

    fn on_heartbeat(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        committed: u64,
        ctx: &mut dyn Context<Self>,
    ) {
        // A heartbeat only ever comes from an elected leader, so a newer
        // ballot is adopted directly; a stale one draws the Nack that
        // tells a deposed leader to step down. Its commit watermark is
        // honoured either way (commitment is final).
        self.on_commit(from, ballot, committed, ctx);
        // Ack the heartbeat with our cumulative vouch watermark
        // (idempotent — stale watermarks dedup at the receiver). This
        // is the idle-regime feed of the leader's *read* lease: sending
        // it implies we just processed current-regime leader traffic,
        // i.e. our own suspicion clock reset at send time — exactly the
        // property the lease evidence must certify (see the read-path
        // section). Without it an idle leader earns no evidence and
        // every read falls back to a quorum probe.
        if self.lease_cfg.enabled() && ballot == self.regime && from == self.regime.proposer {
            ctx.send(
                from,
                PaxosMsg::Accepted {
                    ballot: self.regime,
                    up_to: self.logged_next,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Election: phase 1 over the log suffix
    // ------------------------------------------------------------------

    /// Starts a pre-vote probe ([`LeaseConfig::pre_vote`]): asks every
    /// replica whether it would promise `max_round_seen + 1` right now,
    /// without making that round durable, promising it locally, or
    /// sending a single real `Prepare`. Only a majority of grants
    /// escalates to [`start_election`](Self::start_election) — so a
    /// replica whose lease expired spuriously (isolated behind a
    /// partition, or fed a runaway clock) burns no ballots and deposes
    /// nobody: a majority still hearing the leader answers its probes
    /// with silence.
    fn start_prevote(&mut self, now: Micros, ctx: &mut dyn Context<Self>) {
        ctx.obs_count(names::PREVOTES, 1);
        let ballot = Ballot {
            round: self.max_round_seen + 1,
            proposer: self.id,
        };
        self.prevote = Some(PreVoteRound {
            ballot,
            started_at: now,
            grants: Vec::new(),
        });
        // Broadcast including self: our own would-promise test (the
        // stickiness gate over our own lease) flows through the same
        // path as everyone else's, exactly like the real election's
        // self-addressed Prepare.
        for r in self.membership.config().to_vec() {
            ctx.send(r, PaxosMsg::PreVote { ballot });
        }
    }

    /// Answers a pre-vote probe with the same tests a real `Prepare`
    /// faces — but **mutates nothing**: no `max_round_seen` bump, no
    /// promise, no lease renewal, no election abandonment. A probe is a
    /// question, not an event.
    fn on_prevote(&mut self, from: ReplicaId, ballot: Ballot, ctx: &mut dyn Context<Self>) {
        if ballot < self.promised {
            // The Nack teaches a lagging prober the round to beat —
            // without it a candidate behind on `max_round_seen` would
            // probe the same dead round forever (the real election
            // learns this through the same reply).
            ctx.send(
                from,
                PaxosMsg::Nack {
                    promised: self.promised,
                },
            );
            return;
        }
        // Leader stickiness, verbatim from `on_prepare`: while our own
        // lease on the current regime is fresh, we would refuse the real
        // Prepare — so we refuse the probe the same way (silently).
        if ballot > self.regime
            && self.lease_cfg.enabled()
            && !self.lease.expired(ctx.clock(), self.lease_cfg.timeout_us)
        {
            return;
        }
        ctx.send(from, PaxosMsg::PreVoteGrant { ballot });
    }

    /// Collects pre-vote grants; a majority licenses the real election.
    fn on_prevote_grant(&mut self, from: ReplicaId, ballot: Ballot, ctx: &mut dyn Context<Self>) {
        let majority = self.majority();
        let Some(pv) = &mut self.prevote else {
            return; // probe already escalated, abandoned, or superseded
        };
        if ballot != pv.ballot || pv.grants.contains(&from) {
            return;
        }
        pv.grants.push(from);
        if pv.grants.len() >= majority {
            self.prevote = None;
            // A majority just told us they would promise: the leader is
            // silent for a full timeout at each of them. Run the real
            // election (which re-derives its ballot from the freshest
            // `max_round_seen`, possibly above the probed round).
            self.start_election(ctx.clock(), ctx);
        }
    }

    fn start_election(&mut self, now: Micros, ctx: &mut dyn Context<Self>) {
        ctx.obs_count(names::ELECTIONS_STARTED, 1);
        self.prevote = None;
        self.max_round_seen += 1;
        let ballot = Ballot {
            round: self.max_round_seen,
            proposer: self.id,
        };
        // Make the candidacy round durable *before* the ballot leaves
        // this replica (the same crash window propose() closes with its
        // synchronous self-delivery): recovering from a crash mid-
        // candidacy must never reuse a ballot that peers may already
        // have promised — a second, differently-merged campaign at the
        // same ballot could count stale first-campaign promises.
        self.promise_at_least(ballot, ctx);
        self.election = Some(Election {
            ballot,
            started_at: now,
            promises: Vec::new(),
        });
        let from_instance = self.committed_next;
        // Broadcast including self: our own acceptor state (promise and
        // suffix report) flows through the same path as everyone else's.
        for r in self.membership.config().to_vec() {
            ctx.send(
                r,
                PaxosMsg::Prepare {
                    ballot,
                    from_instance,
                },
            );
        }
    }

    fn on_prepare(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        from_instance: u64,
        ctx: &mut dyn Context<Self>,
    ) {
        self.max_round_seen = self.max_round_seen.max(ballot.round);
        if ballot < self.promised {
            ctx.send(
                from,
                PaxosMsg::Nack {
                    promised: self.promised,
                },
            );
            return;
        }
        // Leader stickiness: while this acceptor's own lease on the
        // current regime is fresh — it heard the leader within the base
        // suspicion timeout — it refuses to promise a new ballot (the
        // candidate retries once leases genuinely expire). This is what
        // makes the leader's *read* lease sound: a new regime then
        // requires a majority of grantors each silent from the leader
        // for a full timeout, which (intersected with the leader's
        // fresh-evidence majority) bounds how soon after the leader's
        // last confirmation a new regime can commit anything. Without
        // it, one isolated replica whose lease expired could depose a
        // healthy leader instantly through promise grants from
        // followers that still hear it, and a leader-local read could
        // race the new regime's first commit. The gate applies to the
        // candidate's own self-addressed Prepare too — its vote must
        // carry the same silence guarantee as anyone else's, since the
        // soundness argument quantifies over every promise-quorum
        // member. Writes never needed this (ballots fence them); only
        // the read fast path does. Liveness is preserved: after a real
        // leader crash every follower's lease expires before the first
        // (staggered) candidacy starts, and candidates re-try past
        // transient refusals.
        if ballot > self.regime
            && self.lease_cfg.enabled()
            && !self.lease.expired(ctx.clock(), self.lease_cfg.timeout_us)
        {
            return;
        }
        self.promise_at_least(ballot, ctx);
        // Granting a promise renews the lease: give the candidate its
        // election window before suspecting the (dead) leader ourselves.
        let now = ctx.clock();
        self.lease.renew(now);
        if let Some(e) = &self.election {
            if ballot > e.ballot {
                self.election = None; // outbid: defer to the higher candidacy
            }
        }
        if let Some(pv) = &self.prevote {
            if ballot > pv.ballot {
                self.prevote = None; // a real candidacy trumps our probe
            }
        }
        let entries: Vec<SuffixEntry> = self
            .instances
            .range(from_instance..)
            .map(|(&instance, slot)| SuffixEntry {
                instance,
                ballot: slot.ballot,
                value: slot.value.clone(),
            })
            .collect();
        ctx.send(
            from,
            PaxosMsg::Promise {
                ballot,
                from_instance,
                committed: self.committed_next,
                entries,
            },
        );
    }

    fn on_promise(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        committed: u64,
        entries: Vec<SuffixEntry>,
        ctx: &mut dyn Context<Self>,
    ) {
        let Some(e) = &mut self.election else {
            return; // candidacy already won, lost, or abandoned
        };
        if ballot != e.ballot || e.promises.iter().any(|(r, _, _)| *r == from) {
            return;
        }
        e.promises.push((from, committed, entries));
        if e.promises.len() >= self.membership.majority() {
            self.win(ctx);
        }
    }

    /// A majority promised: merge the reported suffixes and repair.
    fn win(&mut self, ctx: &mut dyn Context<Self>) {
        ctx.obs_count(names::ELECTIONS_WON, 1);
        let e = self.election.take().expect("win() called mid-election");
        let ballot = e.ballot;
        // The repair floor: the highest committed watermark across the
        // promise quorum (and ourselves). Everything below it is final
        // and carries no repair — an instance executed somewhere can no
        // longer be reported from that replica's slot table, but it also
        // cannot need re-proposing.
        let floor = e
            .promises
            .iter()
            .map(|(_, c, _)| *c)
            .max()
            .unwrap_or(0)
            .max(self.committed_next);
        // Per instance at or above the floor, adopt the highest-ballot
        // reported acceptance (the classic phase-1 value rule, per
        // instance). Instances nobody reported are proven unchosen —
        // every accept quorum intersects this promise quorum — and are
        // closed with no-ops.
        let mut merged: BTreeMap<u64, (Ballot, Option<(Command, ReplicaId)>)> = BTreeMap::new();
        for (_, _, entries) in &e.promises {
            for entry in entries {
                if entry.instance < floor {
                    continue;
                }
                match merged.get(&entry.instance) {
                    Some((b, _)) if *b >= entry.ballot => {}
                    _ => {
                        merged.insert(entry.instance, (entry.ballot, entry.value.clone()));
                    }
                }
            }
        }
        let top = merged.keys().next_back().map_or(floor, |m| m + 1);
        let entries: Vec<SuffixEntry> = (floor..top)
            .map(|instance| SuffixEntry {
                instance,
                ballot,
                value: merged.remove(&instance).and_then(|(_, v)| v),
            })
            .collect();
        // The data plane resumes above everything merged or repaired.
        self.next_instance = self.next_instance.max(top);
        // Leader-local reads must wait out the inherited suffix: writes
        // in it may have committed (and replied) under an older regime
        // while our committed watermark still sits below them.
        self.repair_top = self.repair_top.max(top);
        // Peers first, then the synchronous self-delivery, exactly like
        // propose(): the repair must be durable locally before any ack
        // for it can exist, and Repair stays ahead of our subsequent
        // Accepts on every FIFO channel.
        for r in self.membership.config().to_vec() {
            if r != self.id {
                ctx.send(
                    r,
                    PaxosMsg::Repair {
                        ballot,
                        floor,
                        entries: entries.clone(),
                    },
                );
            }
        }
        self.on_repair(self.id, ballot, floor, entries, ctx);
        self.flush_pending(ctx);
    }

    fn on_repair(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        floor: u64,
        entries: Vec<SuffixEntry>,
        ctx: &mut dyn Context<Self>,
    ) {
        if ballot < self.promised {
            ctx.send(
                from,
                PaxosMsg::Nack {
                    promised: self.promised,
                },
            );
            return;
        }
        self.promise_at_least(ballot, ctx);
        self.adopt_regime(ballot, ctx);
        self.note_leader_alive(from, ballot, ctx);
        // The floor is a committed watermark observed by the new leader;
        // adopting it may expose local holes, which the state-transfer
        // path fills like any other committed hole.
        self.committed_next = self.committed_next.max(floor);
        let top = floor + entries.len() as u64;
        self.accept_entries(ballot, entries, ctx);
        // Acceptances above the repaired range are proven-uncommitted
        // leftovers of older regimes (anything committed would have been
        // merged); the new leader re-assigns those instances to fresh
        // commands, so drop them rather than let them shadow the
        // reassignments in promise reports.
        self.instances.split_off(&top);
        self.recompute_vouch();
        self.send_ack(ctx);
        self.execute_ready(true, ctx);
        self.flush_pending(ctx);
    }

    /// Accepts a set of explicitly-instanced entries (a repair or a
    /// fill) at `ballot`: each is logged durably and installed as a
    /// verified slot; entries already executed are skipped.
    fn accept_entries(
        &mut self,
        ballot: Ballot,
        entries: Vec<SuffixEntry>,
        ctx: &mut dyn Context<Self>,
    ) {
        for entry in entries {
            if entry.instance < self.exec_cursor {
                continue;
            }
            let slot = Slot {
                ballot,
                verified: true,
                value: entry.value,
            };
            ctx.log_append(Self::slot_rec(entry.instance, &slot));
            self.instances.insert(entry.instance, slot);
        }
    }

    /// The durable log record re-asserting `slot` at `instance`.
    fn slot_rec(instance: u64, slot: &Slot) -> PaxosLogRec {
        match &slot.value {
            Some((cmd, origin)) => PaxosLogRec::Accept {
                instance,
                ballot: slot.ballot,
                cmd: cmd.clone(),
                origin: *origin,
            },
            None => PaxosLogRec::Noop {
                instance,
                ballot: slot.ballot,
            },
        }
    }

    /// Asks the regime leader to retransmit the accepts for
    /// `[logged_next, gap_end)`, paced like state transfers so pipelined
    /// traffic over a persistent gap does not storm duplicate requests.
    fn request_gap_fill(&mut self, gap_end: u64, ctx: &mut dyn Context<Self>) {
        let gap_start = self.logged_next;
        let now = ctx.clock();
        if let Some((s, since)) = self.fill_asked {
            if s == gap_start && now.saturating_sub(since) < TRANSFER_RETRY_US {
                return; // an exchange for this gap is already in flight
            }
        }
        self.fill_asked = Some((gap_start, now));
        ctx.send(
            self.regime.proposer,
            PaxosMsg::FillRequest {
                from_instance: gap_start,
                to_instance: gap_end,
            },
        );
    }

    /// Leader: retransmit still-pending instances from the slot table.
    /// Instances already executed here are committed; the requester's
    /// commit watermark will cover them and the state-transfer path
    /// takes over for those.
    fn on_fill_request(&mut self, from: ReplicaId, lo: u64, hi: u64, ctx: &mut dyn Context<Self>) {
        if !self.is_leader() {
            return; // a deposed leader's pending values may be superseded
        }
        let entries: Vec<SuffixEntry> = self
            .instances
            .range(lo..hi)
            .map(|(&instance, slot)| SuffixEntry {
                instance,
                ballot: self.regime,
                value: slot.value.clone(),
            })
            .collect();
        if !entries.is_empty() {
            ctx.send(
                from,
                PaxosMsg::Fill {
                    ballot: self.regime,
                    entries,
                },
            );
        }
    }

    /// A leader retransmission: plain re-acceptance of the carried
    /// instances at the regime ballot — no floor, nothing dropped.
    fn on_fill(
        &mut self,
        from: ReplicaId,
        ballot: Ballot,
        entries: Vec<SuffixEntry>,
        ctx: &mut dyn Context<Self>,
    ) {
        if ballot < self.promised {
            ctx.send(
                from,
                PaxosMsg::Nack {
                    promised: self.promised,
                },
            );
            return;
        }
        self.promise_at_least(ballot, ctx);
        self.adopt_regime(ballot, ctx);
        self.note_leader_alive(from, ballot, ctx);
        self.fill_asked = None;
        self.accept_entries(ballot, entries, ctx);
        self.recompute_vouch();
        self.send_ack(ctx);
        self.execute_ready(true, ctx);
        self.flush_pending(ctx);
    }

    fn on_nack(&mut self, promised: Ballot, ctx: &mut dyn Context<Self>) {
        let was_leader = self.is_leader();
        self.promise_at_least(promised, ctx);
        if let Some(e) = &self.election {
            if promised > e.ballot {
                // Outbid: stop collecting; the retry timer re-runs at a
                // higher round if the winner never materializes.
                self.election = None;
            }
        }
        if let Some(pv) = &self.prevote {
            if promised > pv.ballot {
                // The probed round is already dead; the retry re-probes
                // above the `max_round_seen` this Nack just taught us.
                self.prevote = None;
            }
        }
        if was_leader && !self.is_leader() {
            // Deposed: grant the new regime a full lease before electing.
            let now = ctx.clock();
            self.lease.renew(now);
        }
        self.flush_pending(ctx);
    }

    /// The lease/election tick: leaders heartbeat, followers suspect,
    /// candidates retry at a higher round.
    fn lease_tick(&mut self, ctx: &mut dyn Context<Self>) {
        if !self.lease_cfg.enabled() {
            return;
        }
        // Re-arm first so a panic-free return always keeps the timer alive.
        ctx.set_timer(self.lease_cfg.heartbeat_us, TOKEN_LEASE);
        let now = ctx.clock();
        if self.is_leader() {
            for r in self.membership.config().to_vec() {
                if r != self.id {
                    ctx.send(
                        r,
                        PaxosMsg::Heartbeat {
                            ballot: self.regime,
                            committed: self.committed_next,
                        },
                    );
                }
            }
        } else if let Some(e) = &self.election {
            if now.saturating_sub(e.started_at) > self.lease_cfg.election_retry_us {
                self.start_election(now, ctx);
            }
        } else if let Some(pv) = &self.prevote {
            if !self
                .lease
                .expired(now, self.lease_cfg.stagger_us(self.id.index()))
            {
                // The regime proved itself alive while we probed (fresh
                // traffic renewed our lease): stand down without having
                // disturbed anyone — the entire point of pre-voting.
                self.prevote = None;
            } else if now.saturating_sub(pv.started_at) > self.lease_cfg.election_retry_us {
                // Probe inconclusive (grants lost, or a majority still
                // shields a leader we cannot hear): re-probe, picking up
                // any higher round Nacks taught us meanwhile.
                self.start_prevote(now, ctx);
            }
        } else if self
            .lease
            .expired(now, self.lease_cfg.stagger_us(self.id.index()))
        {
            if self.lease_cfg.pre_vote {
                self.start_prevote(now, ctx);
            } else {
                self.start_election(now, ctx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Local reads (`rsm_core::read`): leader lease + quorum fallback
    // ------------------------------------------------------------------
    //
    // ## The leader fast path and its timing assumption
    //
    // A lease-holding leader serves reads from its committed prefix
    // without any message exchange. That is linearizable only while no
    // newer regime can have committed a write elsewhere, which three
    // mechanisms establish together:
    //
    // 1. **Evidence implies leader contact.** The leader counts replica
    //    `k` as lease evidence only on messages whose *send* implies
    //    `k` had just processed current-regime leader traffic — and
    //    therefore renewed its own suspicion clock at send time. An
    //    `Accepted` at our ballot qualifies (it leaves inside the same
    //    callback that handled our `Accept`/`Repair`/`Fill`, or acks
    //    our heartbeat); a `ReadMark` does not (any replica answers
    //    probes, however long since it heard us) and is never counted.
    // 2. **Leader stickiness.** An acceptor refuses to promise a
    //    higher ballot while its own lease is fresh (see `on_prepare`),
    //    so a new regime requires a majority of grantors *each* silent
    //    from the leader for a full `timeout_us` — one isolated
    //    replica cannot depose a healthy leader through grants from
    //    followers that still hear it.
    // 3. **Quorum intersection.** The leader trusts its regime while a
    //    majority's evidence is younger than `timeout_us / 2`; any new
    //    regime's promise quorum shares a member `k` with that
    //    evidence majority. `k`'s evidence-send renewed its lease at
    //    real time `s`, so `k` granted no promise — and the new regime
    //    committed nothing — before `s + timeout`; the leader stopped
    //    serving by receipt(`s`) + `timeout/2`.
    //
    // The residual assumption, and **the one place in the workspace
    // where a timing bound is load-bearing for safety**: the one-way
    // transit of the lease evidence plus the relative clock drift over
    // a lease window must stay under `timeout_us / 2` (an evidence
    // message delayed longer arrives pre-expired but is trusted as
    // fresh). The blast radius is deliberately confined: ballot fencing
    // nacks a deposed leader's writes outright, so the worst a violated
    // bound can produce is a stale read served inside a single lease
    // window — never divergent replicas, never a lost or reordered
    // write. With fail-over disabled there are no elections, the
    // assumption is vacuous, and the fixed leader's fast path is
    // unconditionally safe.
    //
    // ## The clock-free fallback (everyone else)
    //
    // A follower — or a leader whose lease is uncertain — *nacks* the
    // local fast path and forwards the read onto the quorum-mark
    // fallback: probe every replica for its read mark (commit watermark
    // raised to the top of its accepted log), park the read at the
    // maximum over a majority of answers, and serve it once the local
    // execution cursor passes the mark. A write that completed before
    // the probe was logged by a majority, which intersects the answering
    // majority, so some mark covers it; no clock appears anywhere in the
    // argument.

    /// Whether the leader may serve reads locally right now: a majority
    /// of the configuration (counting itself) confirmed its regime
    /// within half the suspicion timeout. Trivially true with fail-over
    /// disabled (a fixed leader can never be deposed).
    fn read_lease_valid(&self, now: Micros) -> bool {
        if !self.lease_cfg.enabled() {
            return true;
        }
        let window = self.lease_cfg.timeout_us / 2;
        let fresh = self
            .membership
            .config()
            .iter()
            .filter(|k| {
                // Zero is the "never heard under this regime" sentinel —
                // evidence must be earned, even right after startup.
                let h = self.regime_heard[k.index()];
                k.index() == self.id.index() || (h > 0 && now.saturating_sub(h) <= window)
            })
            .count();
        fresh >= self.majority()
    }

    /// Records regime-freshness evidence from `from` (a message at our
    /// current ballot).
    fn note_regime_heard(&mut self, from: ReplicaId, ctx: &mut dyn Context<Self>) {
        let now = ctx.clock().max(1);
        let h = &mut self.regime_heard[from.index()];
        *h = (*h).max(now);
    }

    /// This replica's read mark: an exclusive upper bound on every
    /// instance it has ever logged — the commit watermark raised to the
    /// top of the accepted slot table. Reported to probes and used as a
    /// probe's own seed. Using the log top (not just the commit
    /// watermark) is what keeps marks sound across fail-overs: a write
    /// committed under a deposed regime stays in the slot table through
    /// the repair even while commit watermarks lag behind it.
    fn local_read_mark(&self) -> u64 {
        self.instances
            .keys()
            .next_back()
            .map_or(self.committed_next, |&top| top + 1)
            .max(self.committed_next)
    }

    /// Starts a quorum-read probe carrying `cmds`.
    fn start_read_probe(&mut self, cmds: Vec<Command>, ctx: &mut dyn Context<Self>) {
        let req = self.read_probes.begin(self.local_read_mark(), cmds);
        for r in self.membership.config().to_vec() {
            if r != self.id {
                ctx.send(r, PaxosMsg::ReadProbe(req));
            }
        }
        // A single-replica configuration is its own majority.
        self.complete_ready_probes(ctx);
    }

    /// Answers a peer's probe with our read mark (any replica answers —
    /// no leader involvement, no ballot gate).
    fn on_read_probe(&mut self, from: ReplicaId, seq: u64, ctx: &mut dyn Context<Self>) {
        let mark = self.local_read_mark();
        ctx.send(from, PaxosMsg::ReadMark(ReadReply { seq, mark }));
    }

    /// Collects a probe answer; on a majority, parks the probe's reads
    /// at the maximum mark. Deliberately **not** lease evidence: a
    /// probe answer does not imply the responder recently heard the
    /// leader (see [`PaxosMsg::ReadMark`]).
    fn on_read_mark(&mut self, from: ReplicaId, reply: ReadReply, ctx: &mut dyn Context<Self>) {
        self.read_probes.on_reply(from, reply);
        self.complete_ready_probes(ctx);
    }

    /// Moves every probe that reached a majority (self plus responders)
    /// into the read queue and releases whatever is already executable;
    /// then launches one fresh probe carrying every read that queued up
    /// behind the completed one (probe batching: probe traffic scales
    /// with probe round trips, not with read arrivals).
    fn complete_ready_probes(&mut self, ctx: &mut dyn Context<Self>) {
        let ready = self.read_probes.take_ready(self.majority());
        if ready.is_empty() {
            return;
        }
        for (_seq, mark, cmds) in ready {
            for cmd in cmds {
                self.read_queue.park(mark, cmd);
            }
        }
        self.release_reads(ctx);
        self.flush_queued_probe_reads(ctx);
    }

    /// Launches one probe carrying every read queued behind an in-flight
    /// probe. No-op when nothing queued.
    fn flush_queued_probe_reads(&mut self, ctx: &mut dyn Context<Self>) {
        if !self.queued_probe_reads.is_empty() {
            let cmds = std::mem::take(&mut self.queued_probe_reads);
            self.start_read_probe(cmds, ctx);
        }
    }

    /// Serves every parked read whose mark the execution cursor has
    /// passed.
    fn release_reads(&mut self, ctx: &mut dyn Context<Self>) {
        if self.read_queue.is_empty() {
            return;
        }
        for cmd in self.read_queue.release(self.exec_cursor) {
            match ctx.sm_read(&cmd) {
                Some(result) => ctx.send_reply(Reply::new(cmd.id, result)),
                // Driver cannot serve reads (or the command is not
                // actually read-only): replicate it like a write.
                None => self.on_client_batch(Batch::single(cmd), ctx),
            }
        }
    }

    /// Number of reads parked, riding probes, or queued for the next
    /// probe (test observability).
    pub fn pending_reads(&self) -> usize {
        self.read_queue.len() + self.read_probes.pending() + self.queued_probe_reads.len()
    }

    // ------------------------------------------------------------------
    // Execution, checkpoints, and state transfer
    // ------------------------------------------------------------------

    /// Executes committed instances in consecutive order. `log_marks` is
    /// false only during recovery replay, whose commit marks are already
    /// in the log.
    fn execute_ready(&mut self, log_marks: bool, ctx: &mut dyn Context<Self>) {
        while self.exec_cursor < self.committed_next {
            let executable = match self.instances.get(&self.exec_cursor) {
                // A slot is only executed once trusted: live acceptances
                // and replayed commit-marked entries always are; entries
                // rebuilt from the log after a crash are not until the
                // current regime re-validates them (see Slot::verified).
                Some(slot) => slot.verified || slot.ballot == self.regime,
                None => false,
            };
            if !executable {
                // Command not yet known (or not yet trusted): either it
                // is still in flight, or its ACCEPT was lost — or
                // superseded — while this replica was down. Only a
                // peer's checkpoint can cover it (rate-limited; a no-op
                // when the run is merely in flight, because peers answer
                // with watermarks above ours and installs below ours are
                // ignored).
                self.request_state_transfer(ctx);
                break;
            }
            let slot = self
                .instances
                .remove(&self.exec_cursor)
                .expect("checked above");
            let instance = self.exec_cursor;
            self.exec_cursor += 1;
            if log_marks {
                ctx.log_append(PaxosLogRec::Commit { instance });
            }
            if let Some((cmd, origin)) = slot.value {
                let payload_len = cmd.payload.len();
                // The session dedup window decides whether the command
                // actually reaches the state machine: a client retry that
                // already executed is answered from the cache instead.
                let applied = self.sessions.commit_dedup(
                    self.id,
                    Committed {
                        cmd,
                        origin,
                        order_hint: instance,
                    },
                    ctx,
                );
                if applied {
                    self.checkpointer.note_commit(payload_len);
                }
            }
        }
        if log_marks {
            self.maybe_checkpoint(ctx);
            // The execution cursor may have passed parked read marks.
            self.release_reads(ctx);
        }
    }

    /// Writes a checkpoint when one is due and the driver supports
    /// snapshots; with compaction, rewrites the log to the checkpoint
    /// plus the still-pending accepts (everything below the watermark is
    /// inside the snapshot, everything above is in `instances`).
    fn maybe_checkpoint(&mut self, ctx: &mut dyn Context<Self>) {
        if !self.checkpointer.due() {
            return;
        }
        let Some(snapshot) = ctx.sm_snapshot() else {
            return; // driver without snapshot support: replay-only recovery
        };
        self.checkpointer.taken();
        let cp = Checkpoint {
            applied: self.exec_cursor,
            epoch: Epoch::ZERO,
            config: self.membership.config().to_vec(),
            snapshot,
            sessions: self.sessions.export(),
        };
        if self.checkpointer.policy().compact {
            self.compact_log(cp, ctx);
        } else {
            ctx.log_append(PaxosLogRec::Checkpoint(cp));
        }
    }

    /// Rewrites the stable log to `cp` plus the promise and the accepts
    /// still above its watermark — the log stays bounded by the
    /// checkpoint interval plus the replication pipeline depth, and the
    /// promise survives compaction (an acceptor must never regress it).
    fn compact_log(&self, cp: Checkpoint<u64>, ctx: &mut dyn Context<Self>) {
        let mut recs = Vec::with_capacity(2 + self.instances.len());
        recs.push(PaxosLogRec::Checkpoint(cp));
        recs.push(PaxosLogRec::Promised(self.promised));
        for (&instance, slot) in &self.instances {
            recs.push(Self::slot_rec(instance, slot));
        }
        ctx.log_rewrite(recs);
    }

    /// Asks the peers for a checkpoint covering our executed prefix once
    /// the hole at `exec_cursor` has persisted for [`TRANSFER_RETRY_US`]
    /// (see `rsm_core::checkpoint` for the transfer invariants). The
    /// path is traffic-driven, like Mencius gap requests: every
    /// `execute_ready` pass that still faces the hole re-checks the
    /// clock, so confirmation and retries ride on ordinary replication
    /// traffic.
    fn request_state_transfer(&mut self, ctx: &mut dyn Context<Self>) {
        let now = ctx.clock();
        match self.stalled_at {
            Some((c, since)) if c == self.exec_cursor => {
                if now.saturating_sub(since) < TRANSFER_RETRY_US {
                    return; // not yet confirmed, or an exchange in flight
                }
            }
            _ => {
                // A new hole: start the confirmation window. In-flight
                // accepts arrive well within it and execution moves on.
                self.stalled_at = Some((self.exec_cursor, now));
                return;
            }
        }
        self.stalled_at = Some((self.exec_cursor, now)); // pace the retry
        if let Some(to) = self.next_transfer_target() {
            ctx.send(
                to,
                PaxosMsg::StateRequest(StateTransferRequest {
                    have: self.exec_cursor,
                }),
            );
        }
    }

    /// The next peer to ask for a checkpoint (round-robin over the
    /// configuration, skipping self).
    fn next_transfer_target(&mut self) -> Option<ReplicaId> {
        let config = self.membership.config();
        for _ in 0..config.len() {
            let candidate = config[self.transfer_target % config.len()];
            self.transfer_target = (self.transfer_target + 1) % config.len();
            if candidate != self.id {
                return Some(candidate);
            }
        }
        None // single-replica configuration: no peer to ask
    }

    /// Serves a state transfer request with a fresh snapshot of our
    /// executed prefix — always coherent, never stale, no retained
    /// checkpoint needed. The reply carries our promise so the installer
    /// cannot regress below a regime the cluster already fenced.
    fn on_state_request(&mut self, from: ReplicaId, have: u64, ctx: &mut dyn Context<Self>) {
        if self.exec_cursor <= have {
            return; // nothing the requester does not already have
        }
        let Some(snapshot) = ctx.sm_snapshot() else {
            return; // cannot snapshot: let a peer that can answer
        };
        ctx.send(
            from,
            PaxosMsg::StateReply {
                reply: StateTransferReply {
                    checkpoint: Checkpoint {
                        applied: self.exec_cursor,
                        epoch: Epoch::ZERO,
                        config: self.membership.config().to_vec(),
                        snapshot,
                        sessions: self.sessions.export(),
                    },
                },
                promised: self.promised,
            },
        );
    }

    /// Installs a transferred checkpoint: everything below its watermark
    /// is globally decided (the sender executed it), so the state machine
    /// jumps there, the log is pinned with a durable checkpoint record,
    /// and the cumulative ack watermark resumes from the installed
    /// prefix (covering a decided prefix adds no false quorum weight).
    fn on_state_reply(
        &mut self,
        cp: Checkpoint<u64>,
        server_promised: Ballot,
        ctx: &mut dyn Context<Self>,
    ) {
        // Adopt the server's promise before anything durable happens:
        // the compacted log written below re-pins it.
        self.promise_at_least(server_promised, ctx);
        if cp.applied <= self.exec_cursor {
            return; // stale or duplicate reply
        }
        if !ctx.sm_install(cp.snapshot.clone()) {
            return; // driver cannot install snapshots
        }
        // The dedup window travels with the snapshot: adopt the sender's
        // (it reflects exactly the applied prefix we just installed).
        let _ = self.sessions.install(&cp.sessions);
        self.stalled_at = None;
        self.instances = self.instances.split_off(&cp.applied);
        self.exec_cursor = cp.applied;
        self.committed_next = self.committed_next.max(cp.applied);
        self.next_instance = self.next_instance.max(cp.applied);
        if self.checkpointer.policy().compact {
            self.compact_log(cp, ctx);
        } else {
            ctx.log_append(PaxosLogRec::Checkpoint(cp));
            ctx.log_append(PaxosLogRec::Promised(self.promised));
        }
        // Resume quorum duty immediately instead of waiting for the next
        // accept to carry the re-extended watermark — but only while our
        // own lease on the regime is fresh: this ack is triggered by a
        // *peer's* checkpoint, not by leader traffic, so sending it from
        // an expired-lease replica would hand the leader read-lease
        // evidence that implies leader contact which never happened (see
        // the read-path section; evidence must certify the sender's own
        // renewal). When suppressed, the watermark re-extension rides
        // the next accept or heartbeat ack instead.
        let before = self.logged_next;
        self.recompute_vouch();
        let lease_fresh = !self.lease_cfg.enabled()
            || !self.lease.expired(ctx.clock(), self.lease_cfg.timeout_us);
        if self.logged_next > before && lease_fresh {
            self.send_ack(ctx);
        }
        self.execute_ready(true, ctx);
    }
}

impl Protocol for MultiPaxos {
    type Msg = PaxosMsg;
    type LogRec = PaxosLogRec;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, ctx: &mut dyn Context<Self>) {
        if self.lease_cfg.enabled() {
            let now = ctx.clock();
            self.lease = Lease::new(now);
            ctx.set_timer(self.lease_cfg.heartbeat_us, TOKEN_LEASE);
        }
    }

    fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        self.on_client_batch(Batch::single(cmd), ctx);
    }

    fn on_client_read(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        let now = ctx.clock();
        if self.is_leader() && self.read_lease_valid(now) {
            // Leader fast path, fenced by ballot + lease (see the
            // read-path section docs for the bounded-skew assumption).
            // The read index depends on where commitment is *observed*:
            // in plain Paxos only the leader counts 2b, so every
            // client-visible write sits below its commit watermark
            // (raised to the repaired suffix top after a fail-over). In
            // bcast Paxos a follower can observe a majority — and reply
            // to its client — before the leader's own watermark
            // advances, so the leader must wait out everything it has
            // proposed: its log top bounds every instance that can be
            // committed anywhere, because (under the lease) it proposed
            // them all.
            let mark = match self.variant {
                PaxosVariant::Plain => self.committed_next.max(self.repair_top),
                PaxosVariant::Bcast => self.local_read_mark(),
            };
            self.read_queue.park(mark, cmd);
            self.release_reads(ctx);
        } else if self.read_probes.in_flight() >= MAX_INFLIGHT_PROBES {
            // Probes are saturated: queue the read to ride the next
            // one (launched the moment a probe completes — see
            // `complete_ready_probes`). The escape timer bounds the
            // wait when no in-flight probe reaches a majority.
            self.queued_probe_reads.push(cmd);
            if !self.probe_flush_armed {
                self.probe_flush_armed = true;
                ctx.set_timer(PROBE_FLUSH_US, TOKEN_PROBE_FLUSH);
            }
        } else {
            // Nack the local fast path and forward the read onto the
            // clock-free quorum-mark fallback (followers, candidates,
            // and a leader whose lease is uncertain all land here).
            self.start_read_probe(vec![cmd], ctx);
        }
    }

    fn read_path(&self) -> ReadPath {
        ReadPath::LeaderLease
    }

    fn obs_poll(&mut self, ctx: &mut dyn Context<Self>) {
        // The adopted regime's round: flat while a leader is stable,
        // stepping on every fail-over (ballot churn is the cost signal
        // for elections).
        ctx.obs_gauge(names::BALLOT, self.regime.round as i64);
    }

    fn lease_holder_hint(&self) -> Option<ReplicaId> {
        // The believed leader serves reads from its lease without a
        // quorum probe; clients routing there pay one WAN hop instead of
        // a probe round trip from their local follower. Mid-fencing the
        // hint follows the newer promise's candidate, same as write
        // forwarding (`leader_hint`).
        Some(self.leader_hint())
    }

    fn on_client_batch(&mut self, batch: Batch, ctx: &mut dyn Context<Self>) {
        let origin = self.id;
        if self.is_leader() {
            self.propose(batch, origin, ctx);
        } else if self.election.is_some() {
            // Mid-candidacy there is nowhere useful to send the batch;
            // hold it until leadership settles.
            self.pending.push((batch, origin));
        } else {
            ctx.send(
                self.leader_hint(),
                PaxosMsg::Forward {
                    cmds: batch,
                    origin,
                },
            );
        }
    }

    fn on_message(&mut self, from: ReplicaId, msg: PaxosMsg, ctx: &mut dyn Context<Self>) {
        match msg {
            PaxosMsg::Forward { cmds, origin } => {
                if self.is_leader() {
                    self.propose(cmds, origin, ctx);
                } else if self.election.is_some() {
                    self.pending.push((cmds, origin));
                } else if self.leader_hint() != from {
                    // Mis-addressed (the sender's leader view is stale):
                    // relay toward the leader we believe in.
                    ctx.send(self.leader_hint(), PaxosMsg::Forward { cmds, origin });
                }
            }
            PaxosMsg::Accept {
                ballot,
                first_instance,
                cmds,
                origin,
            } => self.on_accept(from, ballot, first_instance, cmds, origin, ctx),
            PaxosMsg::Accepted { ballot, up_to } => {
                // In plain Paxos only the leader receives and counts 2b.
                if self.variant == PaxosVariant::Bcast || self.is_leader() {
                    self.on_accepted(from, ballot, up_to, ctx);
                }
            }
            PaxosMsg::Commit { ballot, up_to } => self.on_commit(from, ballot, up_to, ctx),
            PaxosMsg::Heartbeat { ballot, committed } => {
                self.on_heartbeat(from, ballot, committed, ctx)
            }
            PaxosMsg::Prepare {
                ballot,
                from_instance,
            } => self.on_prepare(from, ballot, from_instance, ctx),
            PaxosMsg::Promise {
                ballot,
                from_instance: _,
                committed,
                entries,
            } => self.on_promise(from, ballot, committed, entries, ctx),
            PaxosMsg::Nack { promised } => self.on_nack(promised, ctx),
            PaxosMsg::PreVote { ballot } => self.on_prevote(from, ballot, ctx),
            PaxosMsg::PreVoteGrant { ballot } => self.on_prevote_grant(from, ballot, ctx),
            PaxosMsg::FillRequest {
                from_instance,
                to_instance,
            } => self.on_fill_request(from, from_instance, to_instance, ctx),
            PaxosMsg::Fill { ballot, entries } => self.on_fill(from, ballot, entries, ctx),
            PaxosMsg::Repair {
                ballot,
                floor,
                entries,
            } => self.on_repair(from, ballot, floor, entries, ctx),
            PaxosMsg::StateRequest(req) => self.on_state_request(from, req.have, ctx),
            PaxosMsg::StateReply { reply, promised } => {
                self.on_state_reply(reply.checkpoint, promised, ctx)
            }
            PaxosMsg::ReadProbe(req) => self.on_read_probe(from, req.seq, ctx),
            PaxosMsg::ReadMark(reply) => self.on_read_mark(from, reply, ctx),
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Self>) {
        if token == TOKEN_LEASE {
            self.lease_tick(ctx);
        } else if token == TOKEN_PROBE_FLUSH {
            self.probe_flush_armed = false;
            // Escape hatch: the gating probe has had its window; give
            // the queued reads their own probe even if it is still in
            // flight (a probe always begins after its riders arrived, so
            // overlapping probes are safe — just extra traffic).
            self.flush_queued_probe_reads(ctx);
        }
    }

    fn on_recover(&mut self, log: &[PaxosLogRec], ctx: &mut dyn Context<Self>) {
        // Checkpoint fast path (Section V-B, shared subsystem): restore
        // the newest durable checkpoint and start every cursor at its
        // watermark instead of replaying from instance zero. Falls back
        // to a full replay when the driver cannot install snapshots
        // (sound only while the log is uncompacted).
        let mut base = 0u64;
        for rec in log.iter().rev() {
            if let PaxosLogRec::Checkpoint(cp) = rec {
                if ctx.sm_install(cp.snapshot.clone()) {
                    base = cp.applied;
                    // Restore the dedup window the checkpoint rode in
                    // with; replay above the watermark extends it.
                    let _ = self.sessions.install(&cp.sessions);
                }
                break;
            }
        }
        self.exec_cursor = base;
        self.committed_next = base;
        // Rebuild accepted instances, the promise, the regime, and the
        // commit marks above the base, then re-execute the contiguous
        // committed prefix.
        let mut committed = std::collections::BTreeSet::new();
        let mut promised = self.promised;
        let mut regime = self.regime;
        for rec in log {
            match rec {
                PaxosLogRec::Accept {
                    instance,
                    ballot,
                    cmd,
                    origin,
                } => {
                    regime = regime.max(*ballot);
                    if *instance >= base {
                        self.instances.insert(
                            *instance,
                            Slot {
                                ballot: *ballot,
                                verified: false,
                                value: Some((cmd.clone(), *origin)),
                            },
                        );
                    }
                }
                PaxosLogRec::Noop { instance, ballot } => {
                    regime = regime.max(*ballot);
                    if *instance >= base {
                        self.instances.insert(
                            *instance,
                            Slot {
                                ballot: *ballot,
                                verified: false,
                                value: None,
                            },
                        );
                    }
                }
                PaxosLogRec::Promised(b) => promised = promised.max(*b),
                PaxosLogRec::Commit { instance } if *instance >= base => {
                    committed.insert(*instance);
                }
                PaxosLogRec::Commit { .. } | PaxosLogRec::Checkpoint(_) => {}
            }
        }
        // The highest ballot we ever accepted at is a regime whose
        // election we witnessed; the promise never sits below it.
        self.regime = regime;
        self.promised = promised.max(regime);
        self.max_round_seen = self.max_round_seen.max(self.promised.round);
        // Trust decisions for the rebuilt slots: our own commit marks
        // attest pre-crash executions (their values are the committed
        // ones by induction), so those replay verbatim. Everything else
        // is suspect when fail-over is on — an election this replica
        // slept through may have superseded it — and must be
        // re-validated by current-regime traffic or a checkpoint
        // install before execution or vouching. With fail-over off
        // there is a single immutable regime and every logged value is
        // the leader's unique value for its instance.
        let failover = self.lease_cfg.enabled();
        for (instance, slot) in &mut self.instances {
            slot.verified = !failover || committed.contains(instance);
        }
        while committed.contains(&self.committed_next) {
            self.committed_next += 1;
        }
        // The ack watermark restarts at the log's verified gap-free
        // prefix — a crash between non-contiguous accepts must not let
        // the cumulative ack claim the hole. Everything below the
        // checkpoint watermark is globally decided, so starting there is
        // sound.
        self.recompute_vouch();
        // Never reuse instance numbers at or below anything logged or
        // checkpointed (relevant only if this replica is the leader).
        self.next_instance = self
            .instances
            .keys()
            .max()
            .map_or(0, |m| m + 1)
            .max(self.next_instance)
            .max(base);
        self.execute_ready(false, ctx);
    }
}

#[cfg(test)]
mod tests;
