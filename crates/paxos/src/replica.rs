//! The Multi-Paxos replica state machine (plain and bcast variants).
//!
//! The data plane is fully batched: the leader binds whole client
//! [`Batch`]es to contiguous instance runs with one `ACCEPT`, and
//! replication progress flows as **cumulative watermarks** — one
//! `ACCEPTED` (and, in plain Paxos, one `COMMIT`) message covers every
//! instance up to its watermark. Per-instance ack counters disappear; the
//! hot path compares a handful of per-replica integers.

use std::collections::BTreeMap;

use rsm_core::batch::Batch;
use rsm_core::checkpoint::{
    Checkpoint, CheckpointPolicy, Checkpointer, StateTransferReply, StateTransferRequest,
};
use rsm_core::command::{Command, Committed};
use rsm_core::config::{Epoch, Membership};
use rsm_core::id::ReplicaId;
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::time::Micros;

use crate::msg::PaxosMsg;

/// How long execution must sit at the *same* hole before a
/// [`PaxosMsg::StateRequest`] leaves, and how long to wait before
/// retrying an unanswered one. Comfortably above a WAN round trip, so a
/// hole whose `ACCEPT` is merely in flight (commit watermarks can outrun
/// accepts via faster relay paths) resolves itself and never triggers a
/// transfer; a hole whose accepts were lost to a crash persists and does.
const TRANSFER_RETRY_US: Micros = 500_000;

/// Which phase-2b dissemination strategy to run (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaxosVariant {
    /// Phase 2b to the leader only; leader broadcasts commit notifications.
    Plain,
    /// Phase 2b broadcast to all replicas; everyone self-commits on a
    /// majority ("a well-known optimization ... saving the last message").
    Bcast,
}

/// Stable log record of Multi-Paxos: accepted instances and commit marks.
#[derive(Debug, Clone)]
pub enum PaxosLogRec {
    /// An accepted (logged) instance, phase 2.
    Accept {
        /// Instance number.
        instance: u64,
        /// The command.
        cmd: Command,
        /// Originating replica.
        origin: ReplicaId,
    },
    /// A commit mark for an instance.
    Commit {
        /// Instance number.
        instance: u64,
    },
    /// A state machine checkpoint (shared subsystem,
    /// `rsm_core::checkpoint`): the snapshot reflects every instance
    /// **below** the (exclusive) applied watermark. Recovery restores the
    /// newest checkpoint and replays only the records above it; with
    /// compaction the log is rewritten to the checkpoint plus the
    /// still-pending accepts whenever one is written.
    Checkpoint(Checkpoint<u64>),
}

/// A Multi-Paxos replica with a fixed, stable leader.
///
/// See the crate docs for the latency characteristics of each
/// [`PaxosVariant`]. The implementation assumes the leader does not fail
/// (ballot 0 everywhere), which matches the paper's failure-free latency
/// and throughput evaluations of the baseline.
#[derive(Debug)]
pub struct MultiPaxos {
    id: ReplicaId,
    membership: Membership,
    leader: ReplicaId,
    variant: PaxosVariant,
    /// Leader only: next instance number to assign.
    next_instance: u64,
    /// Commands accepted but not yet executed, keyed by instance.
    instances: BTreeMap<u64, (Command, ReplicaId)>,
    /// All instances below this are logged locally (gap-free thanks to
    /// consecutive leader assignment over FIFO channels) — the watermark
    /// this replica acknowledges.
    logged_next: u64,
    /// `acked[k]`: replica `k`'s acknowledged watermark (all instances
    /// below it are logged at `k`). Tracked by everyone in bcast mode, by
    /// the leader in plain mode.
    acked: Vec<u64>,
    /// All instances below this are known committed.
    committed_next: u64,
    /// Next instance to execute (all below are executed).
    exec_cursor: u64,
    /// Shared checkpoint scheduler (`rsm_core::checkpoint`).
    checkpointer: Checkpointer,
    /// The execution hole currently being watched and since when:
    /// `(exec_cursor, first observed)`. A hole must persist for
    /// [`TRANSFER_RETRY_US`] before a state transfer is requested, and
    /// the same field paces the retries afterwards.
    stalled_at: Option<(u64, Micros)>,
    /// Rotation cursor over the peers for state transfer requests: one
    /// peer is asked per round (a snapshot is large; asking everyone
    /// would make every peer serialize and ship one while the requester
    /// installs exactly one), and an unhelpful or dead peer just means
    /// the next retry asks the next one.
    transfer_target: usize,
}

impl MultiPaxos {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `id` or `leader` is not in the membership spec.
    pub fn new(
        id: ReplicaId,
        membership: Membership,
        leader: ReplicaId,
        variant: PaxosVariant,
    ) -> Self {
        assert!(membership.in_spec(id), "replica {id} not in spec");
        assert!(membership.in_spec(leader), "leader {leader} not in spec");
        let n = membership.spec().len();
        MultiPaxos {
            id,
            membership,
            leader,
            variant,
            next_instance: 0,
            instances: BTreeMap::new(),
            logged_next: 0,
            acked: vec![0; n],
            committed_next: 0,
            exec_cursor: 0,
            checkpointer: Checkpointer::new(CheckpointPolicy::DISABLED),
            stalled_at: None,
            transfer_target: 0,
        }
    }

    /// Enables periodic checkpoints (and, per the policy, log compaction)
    /// for this replica.
    pub fn with_checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpointer = Checkpointer::new(policy);
        self
    }

    /// The designated leader replica.
    pub fn leader(&self) -> ReplicaId {
        self.leader
    }

    /// Whether this replica is the leader.
    pub fn is_leader(&self) -> bool {
        self.id == self.leader
    }

    /// The dissemination variant this replica runs.
    pub fn variant(&self) -> PaxosVariant {
        self.variant
    }

    /// Number of instances executed so far.
    pub fn executed(&self) -> u64 {
        self.exec_cursor
    }

    fn majority(&self) -> usize {
        self.membership.majority()
    }

    /// Leader: bind the batch to the next contiguous instance run and
    /// start phase 2 with a single ACCEPT.
    fn propose(&mut self, cmds: Batch, origin: ReplicaId, ctx: &mut dyn Context<Self>) {
        debug_assert!(self.is_leader());
        let first_instance = self.next_instance;
        self.next_instance += cmds.len() as u64;
        // Send to the peers, then log the run locally via a synchronous
        // self-delivery (not a network self-send): a leader that crashed
        // after broadcasting but before a looped-back self-delivery would
        // recover with these instances absent from its log, reset
        // next_instance below them, and re-propose the same numbers with
        // different commands — divergent execution at the followers.
        // Sending to peers first keeps Accept ahead of our own Accepted
        // on every FIFO channel.
        for r in self.membership.config().to_vec() {
            if r != self.id {
                ctx.send(
                    r,
                    PaxosMsg::Accept {
                        first_instance,
                        cmds: cmds.clone(),
                        origin,
                    },
                );
            }
        }
        self.on_accept(first_instance, cmds, origin, ctx);
    }

    fn on_accept(
        &mut self,
        first_instance: u64,
        cmds: Batch,
        origin: ReplicaId,
        ctx: &mut dyn Context<Self>,
    ) {
        let last_next = first_instance + cmds.len() as u64;
        if last_next <= self.exec_cursor {
            return; // stale: the whole run is already executed
        }
        for (i, cmd) in cmds.into_iter().enumerate() {
            let instance = first_instance + i as u64;
            if instance < self.exec_cursor {
                continue;
            }
            ctx.log_append(PaxosLogRec::Accept {
                instance,
                cmd: cmd.clone(),
                origin,
            });
            self.instances.insert(instance, (cmd, origin));
        }
        // Advance the ack watermark only over a gap-free prefix. A gap
        // means accepts were lost while this replica was down (the only
        // loss mode — channels are FIFO); a cumulative ack crossing it
        // would falsely claim the lost instances and break quorum
        // intersection. The commands past the gap are still logged
        // above; this replica just never vouches for the hole — until
        // the hole is known committed: commitment was then established
        // by other replicas' evidence, so covering it cumulatively adds
        // no false quorum weight, and the watermark may jump (this is
        // what lets a recovered replica resume contributing to quorums
        // once the cluster commits past its outage).
        if first_instance <= self.logged_next {
            self.logged_next = self.logged_next.max(last_next);
        } else if self.committed_next >= first_instance {
            self.logged_next = last_next;
        }
        // One cumulative ack for the whole batch.
        let ack = PaxosMsg::Accepted {
            up_to: self.logged_next,
        };
        match self.variant {
            PaxosVariant::Plain => ctx.send(self.leader, ack),
            PaxosVariant::Bcast => {
                for r in self.membership.config().to_vec() {
                    ctx.send(r, ack.clone());
                }
            }
        }
        // A late accept can fill an instance the commit watermark already
        // covers (its Accepted watermarks outran it via faster relays);
        // execution must resume here because nothing else will retry.
        self.execute_ready(true, ctx);
    }

    fn on_accepted(&mut self, from: ReplicaId, up_to: u64, ctx: &mut dyn Context<Self>) {
        let k = from.index();
        if up_to <= self.acked[k] {
            return; // stale or duplicate watermark
        }
        self.acked[k] = up_to;
        self.advance_commit(ctx);
    }

    /// The instance watermark a majority has acknowledged: the
    /// `majority`-th largest per-replica watermark, found by advancing a
    /// candidate from the current committed watermark while a majority
    /// still covers it. Allocation-free and O(n) per advanced instance,
    /// so an ACCEPTED that advances nothing costs one counting pass.
    fn majority_watermark(&self) -> u64 {
        let mut w = self.committed_next;
        loop {
            let covered = self
                .membership
                .config()
                .iter()
                .filter(|r| self.acked[r.index()] > w)
                .count();
            if covered < self.majority() {
                return w;
            }
            w += 1;
        }
    }

    /// Re-extends the cumulative ack watermark after the commit watermark
    /// moves past it: a committed hole is globally decided, so covering
    /// it adds no false quorum weight (same argument as the jump in
    /// `on_accept`), and everything logged contiguously above it is
    /// vouchable again. Without this, a recovered replica's watermark
    /// would stay frozen at its crash gap under continuous pipelined
    /// load — the `on_accept` jump needs `committed_next` to have caught
    /// up with the newest accept run, which only happens in a lull.
    fn reextend_logged_next(&mut self) {
        if self.committed_next > self.logged_next {
            self.logged_next = self.committed_next;
            while self.instances.contains_key(&self.logged_next) {
                self.logged_next += 1;
            }
        }
    }

    /// Recomputes the committed watermark from the acknowledgement
    /// watermarks; on advance, notifies (plain leader) and executes.
    fn advance_commit(&mut self, ctx: &mut dyn Context<Self>) {
        let w = self.majority_watermark();
        if w <= self.committed_next {
            return;
        }
        self.committed_next = w;
        self.reextend_logged_next();
        if self.variant == PaxosVariant::Plain {
            // Only the leader counts 2b in plain Paxos; notify everyone
            // (itself included) with one cumulative COMMIT.
            debug_assert!(self.is_leader());
            for r in self.membership.config().to_vec() {
                ctx.send(r, PaxosMsg::Commit { up_to: w });
            }
        }
        self.execute_ready(true, ctx);
    }

    fn on_commit(&mut self, up_to: u64, ctx: &mut dyn Context<Self>) {
        if up_to <= self.committed_next {
            return; // stale or duplicate notification
        }
        self.committed_next = up_to;
        self.reextend_logged_next();
        self.execute_ready(true, ctx);
    }

    /// Executes committed instances in consecutive order. `log_marks` is
    /// false only during recovery replay, whose commit marks are already
    /// in the log.
    fn execute_ready(&mut self, log_marks: bool, ctx: &mut dyn Context<Self>) {
        while self.exec_cursor < self.committed_next {
            let Some((cmd, origin)) = self.instances.remove(&self.exec_cursor) else {
                // Command not yet known: either it is still in flight, or
                // its ACCEPT was lost while this replica was down — a
                // committed hole nothing will ever retransmit. Only a
                // peer's checkpoint can cover it (rate-limited; a no-op
                // when the run is merely in flight, because peers answer
                // with watermarks above ours and installs below ours are
                // ignored).
                self.request_state_transfer(ctx);
                break;
            };
            let instance = self.exec_cursor;
            self.exec_cursor += 1;
            if log_marks {
                ctx.log_append(PaxosLogRec::Commit { instance });
            }
            self.checkpointer.note_commit(cmd.payload.len());
            ctx.commit(Committed {
                cmd,
                origin,
                order_hint: instance,
            });
        }
        if log_marks {
            self.maybe_checkpoint(ctx);
        }
    }

    /// Writes a checkpoint when one is due and the driver supports
    /// snapshots; with compaction, rewrites the log to the checkpoint
    /// plus the still-pending accepts (everything below the watermark is
    /// inside the snapshot, everything above is in `instances`).
    fn maybe_checkpoint(&mut self, ctx: &mut dyn Context<Self>) {
        if !self.checkpointer.due() {
            return;
        }
        let Some(snapshot) = ctx.sm_snapshot() else {
            return; // driver without snapshot support: replay-only recovery
        };
        self.checkpointer.taken();
        let cp = Checkpoint {
            applied: self.exec_cursor,
            epoch: Epoch::ZERO,
            config: self.membership.config().to_vec(),
            snapshot,
        };
        if self.checkpointer.policy().compact {
            self.compact_log(cp, ctx);
        } else {
            ctx.log_append(PaxosLogRec::Checkpoint(cp));
        }
    }

    /// Rewrites the stable log to `cp` plus the accepts still above its
    /// watermark — the log stays bounded by the checkpoint interval plus
    /// the replication pipeline depth.
    fn compact_log(&self, cp: Checkpoint<u64>, ctx: &mut dyn Context<Self>) {
        let mut recs = Vec::with_capacity(1 + self.instances.len());
        recs.push(PaxosLogRec::Checkpoint(cp));
        for (&instance, (cmd, origin)) in &self.instances {
            recs.push(PaxosLogRec::Accept {
                instance,
                cmd: cmd.clone(),
                origin: *origin,
            });
        }
        ctx.log_rewrite(recs);
    }

    /// Asks the peers for a checkpoint covering our executed prefix once
    /// the hole at `exec_cursor` has persisted for [`TRANSFER_RETRY_US`]
    /// (see `rsm_core::checkpoint` for the transfer invariants). The
    /// path is traffic-driven, like Mencius gap requests: every
    /// `execute_ready` pass that still faces the hole re-checks the
    /// clock, so confirmation and retries ride on ordinary replication
    /// traffic.
    fn request_state_transfer(&mut self, ctx: &mut dyn Context<Self>) {
        let now = ctx.clock();
        match self.stalled_at {
            Some((c, since)) if c == self.exec_cursor => {
                if now.saturating_sub(since) < TRANSFER_RETRY_US {
                    return; // not yet confirmed, or an exchange in flight
                }
            }
            _ => {
                // A new hole: start the confirmation window. In-flight
                // accepts arrive well within it and execution moves on.
                self.stalled_at = Some((self.exec_cursor, now));
                return;
            }
        }
        self.stalled_at = Some((self.exec_cursor, now)); // pace the retry
        if let Some(to) = self.next_transfer_target() {
            ctx.send(
                to,
                PaxosMsg::StateRequest(StateTransferRequest {
                    have: self.exec_cursor,
                }),
            );
        }
    }

    /// The next peer to ask for a checkpoint (round-robin over the
    /// configuration, skipping self).
    fn next_transfer_target(&mut self) -> Option<ReplicaId> {
        let config = self.membership.config();
        for _ in 0..config.len() {
            let candidate = config[self.transfer_target % config.len()];
            self.transfer_target = (self.transfer_target + 1) % config.len();
            if candidate != self.id {
                return Some(candidate);
            }
        }
        None // single-replica configuration: no peer to ask
    }

    /// Serves a state transfer request with a fresh snapshot of our
    /// executed prefix — always coherent, never stale, no retained
    /// checkpoint needed.
    fn on_state_request(&mut self, from: ReplicaId, have: u64, ctx: &mut dyn Context<Self>) {
        if self.exec_cursor <= have {
            return; // nothing the requester does not already have
        }
        let Some(snapshot) = ctx.sm_snapshot() else {
            return; // cannot snapshot: let a peer that can answer
        };
        ctx.send(
            from,
            PaxosMsg::StateReply(StateTransferReply {
                checkpoint: Checkpoint {
                    applied: self.exec_cursor,
                    epoch: Epoch::ZERO,
                    config: self.membership.config().to_vec(),
                    snapshot,
                },
            }),
        );
    }

    /// Installs a transferred checkpoint: everything below its watermark
    /// is globally decided (the sender executed it), so the state machine
    /// jumps there, the log is pinned with a durable checkpoint record,
    /// and the cumulative ack watermark resumes from the installed
    /// prefix (covering a decided prefix adds no false quorum weight).
    fn on_state_reply(&mut self, cp: Checkpoint<u64>, ctx: &mut dyn Context<Self>) {
        if cp.applied <= self.exec_cursor {
            return; // stale or duplicate reply
        }
        if !ctx.sm_install(cp.snapshot.clone()) {
            return; // driver cannot install snapshots
        }
        self.stalled_at = None;
        self.instances = self.instances.split_off(&cp.applied);
        self.exec_cursor = cp.applied;
        self.committed_next = self.committed_next.max(cp.applied);
        self.next_instance = self.next_instance.max(cp.applied);
        if self.checkpointer.policy().compact {
            self.compact_log(cp, ctx);
        } else {
            ctx.log_append(PaxosLogRec::Checkpoint(cp));
        }
        // Resume quorum duty immediately instead of waiting for the next
        // accept to carry the re-extended watermark.
        let before = self.logged_next;
        self.reextend_logged_next();
        if self.logged_next > before {
            let ack = PaxosMsg::Accepted {
                up_to: self.logged_next,
            };
            match self.variant {
                PaxosVariant::Plain => ctx.send(self.leader, ack),
                PaxosVariant::Bcast => {
                    for r in self.membership.config().to_vec() {
                        ctx.send(r, ack.clone());
                    }
                }
            }
        }
        self.execute_ready(true, ctx);
    }
}

impl Protocol for MultiPaxos {
    type Msg = PaxosMsg;
    type LogRec = PaxosLogRec;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, _ctx: &mut dyn Context<Self>) {}

    fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        self.on_client_batch(Batch::single(cmd), ctx);
    }

    fn on_client_batch(&mut self, batch: Batch, ctx: &mut dyn Context<Self>) {
        if self.is_leader() {
            let origin = self.id;
            self.propose(batch, origin, ctx);
        } else {
            ctx.send(
                self.leader,
                PaxosMsg::Forward {
                    cmds: batch,
                    origin: self.id,
                },
            );
        }
    }

    fn on_message(&mut self, from: ReplicaId, msg: PaxosMsg, ctx: &mut dyn Context<Self>) {
        match msg {
            PaxosMsg::Forward { cmds, origin } => {
                if self.is_leader() {
                    self.propose(cmds, origin, ctx);
                }
            }
            PaxosMsg::Accept {
                first_instance,
                cmds,
                origin,
            } => self.on_accept(first_instance, cmds, origin, ctx),
            PaxosMsg::Accepted { up_to } => {
                // In plain Paxos only the leader receives and counts 2b.
                if self.variant == PaxosVariant::Bcast || self.is_leader() {
                    self.on_accepted(from, up_to, ctx);
                }
            }
            PaxosMsg::Commit { up_to } => self.on_commit(up_to, ctx),
            PaxosMsg::StateRequest(req) => self.on_state_request(from, req.have, ctx),
            PaxosMsg::StateReply(reply) => self.on_state_reply(reply.checkpoint, ctx),
        }
    }

    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut dyn Context<Self>) {}

    fn on_recover(&mut self, log: &[PaxosLogRec], ctx: &mut dyn Context<Self>) {
        // Checkpoint fast path (Section V-B, shared subsystem): restore
        // the newest durable checkpoint and start every cursor at its
        // watermark instead of replaying from instance zero. Falls back
        // to a full replay when the driver cannot install snapshots
        // (sound only while the log is uncompacted).
        let mut base = 0u64;
        for rec in log.iter().rev() {
            if let PaxosLogRec::Checkpoint(cp) = rec {
                if ctx.sm_install(cp.snapshot.clone()) {
                    base = cp.applied;
                }
                break;
            }
        }
        self.exec_cursor = base;
        self.committed_next = base;
        self.logged_next = base;
        // Rebuild accepted instances and commit marks above the base,
        // then re-execute the contiguous committed prefix.
        let mut committed = std::collections::BTreeSet::new();
        for rec in log {
            match rec {
                PaxosLogRec::Accept {
                    instance,
                    cmd,
                    origin,
                } if *instance >= base => {
                    self.instances.insert(*instance, (cmd.clone(), *origin));
                }
                PaxosLogRec::Commit { instance } if *instance >= base => {
                    committed.insert(*instance);
                }
                PaxosLogRec::Accept { .. }
                | PaxosLogRec::Commit { .. }
                | PaxosLogRec::Checkpoint(_) => {}
            }
        }
        while committed.contains(&self.committed_next) {
            self.committed_next += 1;
        }
        // The ack watermark restarts at the log's gap-free prefix — a
        // crash between non-contiguous accepts must not let the
        // cumulative ack claim the hole. Everything below the checkpoint
        // watermark is globally decided, so starting there is sound.
        while self.instances.contains_key(&self.logged_next) {
            self.logged_next += 1;
        }
        // Never reuse instance numbers at or below anything logged or
        // checkpointed (relevant only if this replica is the leader).
        self.next_instance = self
            .instances
            .keys()
            .max()
            .map_or(0, |m| m + 1)
            .max(self.next_instance)
            .max(base);
        self.execute_ready(false, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::CommandId;
    use rsm_core::id::ClientId;
    use rsm_core::time::Micros;

    struct TestCtx {
        sends: Vec<(ReplicaId, PaxosMsg)>,
        commits: Vec<Committed>,
        log: Vec<PaxosLogRec>,
        clock: Micros,
        /// Executed command seqs — a trivial state machine for snapshot
        /// tests; `snapshots` gates whether the driver supports them.
        executed: Vec<u64>,
        snapshots: bool,
    }

    impl TestCtx {
        fn new() -> Self {
            TestCtx {
                sends: Vec::new(),
                commits: Vec::new(),
                log: Vec::new(),
                clock: 0,
                executed: Vec::new(),
                snapshots: false,
            }
        }

        fn with_snapshots() -> Self {
            TestCtx {
                snapshots: true,
                ..TestCtx::new()
            }
        }
    }

    impl Context<MultiPaxos> for TestCtx {
        fn clock(&mut self) -> Micros {
            self.clock += 1;
            self.clock
        }
        fn send(&mut self, to: ReplicaId, msg: PaxosMsg) {
            self.sends.push((to, msg));
        }
        fn log_append(&mut self, rec: PaxosLogRec) {
            self.log.push(rec);
        }
        fn log_rewrite(&mut self, recs: Vec<PaxosLogRec>) {
            self.log = recs;
        }
        fn commit(&mut self, c: Committed) {
            self.executed.push(c.cmd.id.seq);
            self.commits.push(c);
        }
        fn set_timer(&mut self, _after: Micros, _token: TimerToken) {}
        fn sm_snapshot(&mut self) -> Option<Bytes> {
            if !self.snapshots {
                return None;
            }
            let mut buf = Vec::new();
            for s in &self.executed {
                buf.extend_from_slice(&s.to_be_bytes());
            }
            Some(Bytes::from(buf))
        }
        fn sm_install(&mut self, snapshot: Bytes) -> bool {
            if !self.snapshots {
                return false;
            }
            self.executed = snapshot
                .chunks(8)
                .map(|c| u64::from_be_bytes(c.try_into().expect("8-byte chunks")))
                .collect();
            true
        }
    }

    fn cmd(seq: u64) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from_static(b"op"),
        )
    }

    fn accept(first_instance: u64, cmds: Vec<Command>, origin: ReplicaId) -> PaxosMsg {
        PaxosMsg::Accept {
            first_instance,
            cmds: Batch::new(cmds),
            origin,
        }
    }

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn follower_forwards_to_leader() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        p.on_client_request(cmd(1), &mut ctx);
        assert_eq!(ctx.sends.len(), 1);
        assert_eq!(ctx.sends[0].0, r(0));
        assert!(matches!(ctx.sends[0].1, PaxosMsg::Forward { .. }));
    }

    #[test]
    fn leader_assigns_consecutive_instances() {
        let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        p.on_client_request(cmd(1), &mut ctx);
        p.on_client_request(cmd(2), &mut ctx);
        let firsts: Vec<u64> = ctx
            .sends
            .iter()
            .filter_map(|(_, m)| match m {
                PaxosMsg::Accept { first_instance, .. } => Some(*first_instance),
                _ => None,
            })
            .collect();
        // 2 peers × 2 commands (the leader self-delivers synchronously).
        assert_eq!(firsts.len(), 4);
        assert_eq!(firsts[0], 0);
        assert_eq!(firsts[3], 1);
    }

    #[test]
    fn leader_binds_a_batch_to_one_instance_run() {
        let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        p.on_client_batch(Batch::new(vec![cmd(1), cmd(2), cmd(3)]), &mut ctx);
        let accepts: Vec<(u64, usize)> = ctx
            .sends
            .iter()
            .filter_map(|(_, m)| match m {
                PaxosMsg::Accept {
                    first_instance,
                    cmds,
                    ..
                } => Some((*first_instance, cmds.len())),
                _ => None,
            })
            .collect();
        assert_eq!(accepts.len(), 2, "one ACCEPT per peer for 3 cmds");
        assert!(accepts.iter().all(|&(f, k)| f == 0 && k == 3));
        assert_eq!(p.next_instance, 3);
        assert_eq!(ctx.log.len(), 3, "leader logs its own run synchronously");
    }

    #[test]
    fn bcast_commits_on_majority_acks() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        p.on_message(r(0), accept(0, vec![cmd(1)], r(0)), &mut ctx);
        // Logged and broadcast its own cumulative 2b.
        assert_eq!(ctx.log.len(), 1);
        let own_acks = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, PaxosMsg::Accepted { up_to: 1 }))
            .count();
        assert_eq!(own_acks, 3);
        // Two 2b watermarks arrive (majority of 3 incl. someone else's).
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 1 }, &mut ctx);
        assert!(ctx.commits.is_empty());
        p.on_message(r(1), PaxosMsg::Accepted { up_to: 1 }, &mut ctx);
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(ctx.commits[0].origin, r(0));
    }

    #[test]
    fn one_ack_covers_a_whole_batch() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        p.on_message(
            r(0),
            accept(0, vec![cmd(1), cmd(2), cmd(3)], r(0)),
            &mut ctx,
        );
        assert_eq!(ctx.log.len(), 3, "all three commands logged");
        let acks: Vec<u64> = ctx
            .sends
            .iter()
            .filter_map(|(_, m)| match m {
                PaxosMsg::Accepted { up_to } => Some(*up_to),
                _ => None,
            })
            .collect();
        assert_eq!(acks, vec![3, 3, 3], "ONE watermark ack per destination");
        // Majority watermarks commit the whole run at once, in order.
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 3 }, &mut ctx);
        p.on_message(r(1), PaxosMsg::Accepted { up_to: 3 }, &mut ctx);
        assert_eq!(ctx.commits.len(), 3);
        let hints: Vec<u64> = ctx.commits.iter().map(|c| c.order_hint).collect();
        assert_eq!(hints, vec![0, 1, 2]);
    }

    #[test]
    fn plain_follower_waits_for_commit_message() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Plain);
        let mut ctx = TestCtx::new();
        p.on_message(r(0), accept(0, vec![cmd(1)], r(2)), &mut ctx);
        // 2b goes to the leader only.
        let (to, _) = ctx
            .sends
            .iter()
            .find(|(_, m)| matches!(m, PaxosMsg::Accepted { .. }))
            .unwrap();
        assert_eq!(*to, r(0));
        // Acks from others do nothing at a plain follower.
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 1 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { up_to: 1 }, &mut ctx);
        assert!(ctx.commits.is_empty());
        p.on_message(r(0), PaxosMsg::Commit { up_to: 1 }, &mut ctx);
        assert_eq!(ctx.commits.len(), 1);
    }

    #[test]
    fn plain_leader_broadcasts_commit_on_majority() {
        let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Plain);
        let mut ctx = TestCtx::new();
        // propose() self-delivers the Accept synchronously: the run is
        // logged and the leader's own Accepted is already in flight.
        p.on_client_request(cmd(1), &mut ctx);
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 1 }, &mut ctx);
        p.on_message(r(1), PaxosMsg::Accepted { up_to: 1 }, &mut ctx);
        let commit_sends = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, PaxosMsg::Commit { .. }))
            .count();
        assert_eq!(commit_sends, 3);
    }

    #[test]
    fn execution_is_in_instance_order_despite_commit_reorder() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        for i in 0..2 {
            p.on_message(r(0), accept(i, vec![cmd(i)], r(0)), &mut ctx);
        }
        // A watermark only covering instance 0 from one replica: nothing
        // commits yet (one ack is not a majority).
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 1 }, &mut ctx);
        assert!(ctx.commits.is_empty(), "one ack is not a majority");
        // Majority watermarks covering both instances commit them in
        // instance order (cumulative acks make out-of-order commit of a
        // later instance impossible by construction).
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 2 }, &mut ctx);
        p.on_message(r(1), PaxosMsg::Accepted { up_to: 2 }, &mut ctx);
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[0].order_hint, 0);
        assert_eq!(ctx.commits[1].order_hint, 1);
    }

    #[test]
    fn recovered_replica_never_acks_across_a_gap() {
        // B logged instances 0..2, crashed while 2..5 were in flight
        // (lost), recovered, and then receives the run starting at 5.
        // Its cumulative ack must stay at the gap — claiming 5..8 would
        // falsely vouch for the lost 2..5 and break quorum intersection.
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        let log = vec![
            PaxosLogRec::Accept {
                instance: 0,
                cmd: cmd(1),
                origin: r(0),
            },
            PaxosLogRec::Accept {
                instance: 1,
                cmd: cmd(2),
                origin: r(0),
            },
        ];
        p.on_recover(&log, &mut ctx);
        p.on_message(
            r(0),
            accept(5, vec![cmd(6), cmd(7), cmd(8)], r(0)),
            &mut ctx,
        );
        let acks: Vec<u64> = ctx
            .sends
            .iter()
            .filter_map(|(_, m)| match m {
                PaxosMsg::Accepted { up_to } => Some(*up_to),
                _ => None,
            })
            .collect();
        assert!(
            acks.iter().all(|&w| w <= 2),
            "watermark crossed the gap: {acks:?}"
        );
        // The post-gap commands are still logged for state transfer.
        assert_eq!(ctx.log.len(), 3);
    }

    #[test]
    fn late_accept_fills_an_already_committed_instance_and_executes() {
        // Accepted watermarks can outrun the Accept itself via faster
        // relays (the EC2 matrix violates the triangle inequality): the
        // commit watermark covers instance 0 before its command arrives.
        // The late Accept must trigger execution — nothing else retries.
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 1 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { up_to: 1 }, &mut ctx);
        assert!(ctx.commits.is_empty(), "command not yet known");
        p.on_message(r(0), accept(0, vec![cmd(1)], r(0)), &mut ctx);
        assert_eq!(ctx.commits.len(), 1, "late accept must resume execution");
        assert_eq!(ctx.commits[0].order_hint, 0);
    }

    #[test]
    fn recovered_replica_resumes_acking_once_the_gap_commits() {
        // Same gap as above, but the cluster then commits past it
        // (Commit watermark from the leader): the hole is now globally
        // decided, so covering it cumulatively adds no false quorum
        // evidence — the replica's watermark may jump and it resumes
        // quorum duty for new instances.
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Plain);
        let mut ctx = TestCtx::new();
        let log = vec![PaxosLogRec::Accept {
            instance: 0,
            cmd: cmd(1),
            origin: r(0),
        }];
        p.on_recover(&log, &mut ctx);
        // Gap: instances 1..3 were lost; the run starting at 3 must not
        // be vouched for yet.
        p.on_message(r(0), accept(3, vec![cmd(4)], r(0)), &mut ctx);
        assert!(matches!(
            ctx.sends.last(),
            Some((_, PaxosMsg::Accepted { up_to: 1 }))
        ));
        // The leader announces everything below 4 committed, then sends
        // the next run: the watermark jumps over the decided hole.
        p.on_message(r(0), PaxosMsg::Commit { up_to: 4 }, &mut ctx);
        p.on_message(r(0), accept(4, vec![cmd(5), cmd(6)], r(0)), &mut ctx);
        assert!(
            matches!(ctx.sends.last(), Some((_, PaxosMsg::Accepted { up_to: 6 }))),
            "ack watermark must resume past a committed gap: {:?}",
            ctx.sends.last()
        );
    }

    #[test]
    fn leader_recovery_never_reuses_instances() {
        // The leader logs its own Accept run synchronously in propose();
        // a crash right after proposing (before any network round-trip)
        // must not let recovery re-assign the same instance numbers to
        // new commands — followers may have logged or committed the
        // originals, and a re-proposal would fork execution.
        let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        p.on_client_batch(Batch::new(vec![cmd(1), cmd(2)]), &mut ctx);
        assert_eq!(ctx.log.len(), 2, "run logged before any network round-trip");
        let mut p2 = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx2 = TestCtx::new();
        p2.on_recover(&ctx.log, &mut ctx2);
        p2.on_client_request(cmd(3), &mut ctx2);
        let firsts: Vec<u64> = ctx2
            .sends
            .iter()
            .filter_map(|(_, m)| match m {
                PaxosMsg::Accept { first_instance, .. } => Some(*first_instance),
                _ => None,
            })
            .collect();
        assert!(!firsts.is_empty());
        assert!(
            firsts.iter().all(|&f| f >= 2),
            "instances 0..2 must not be reused: {firsts:?}"
        );
    }

    #[test]
    fn recovered_replica_reextends_watermark_past_a_committed_gap_under_load() {
        // B logged instance 0 and lost 1..3 in its crash. Under
        // pipelined load the commit watermark always trails the newest
        // accept run, so the on_accept jump alone never fires; the
        // watermark must also re-extend when commits advance past the
        // gap, or B acks up_to=1 forever and never rejoins quorums.
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        let log = vec![PaxosLogRec::Accept {
            instance: 0,
            cmd: cmd(1),
            origin: r(0),
        }];
        p.on_recover(&log, &mut ctx);
        // Run [3,4) arrives while the gap is still uncommitted.
        p.on_message(r(0), accept(3, vec![cmd(4)], r(0)), &mut ctx);
        assert!(matches!(
            ctx.sends.last(),
            Some((_, PaxosMsg::Accepted { up_to: 1 }))
        ));
        // Peer watermarks commit through the gap (to 3) while run [4,5)
        // is already in flight.
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 3 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { up_to: 3 }, &mut ctx);
        // The pipelined run arrives with committed_next (3) still below
        // its first instance (4): the watermark must nevertheless cover
        // the decided gap plus the contiguously logged instance 3.
        p.on_message(r(0), accept(4, vec![cmd(5)], r(0)), &mut ctx);
        assert!(
            matches!(ctx.sends.last(), Some((_, PaxosMsg::Accepted { up_to: 5 }))),
            "watermark frozen at the gap: {:?}",
            ctx.sends.last()
        );
    }

    #[test]
    fn checkpoints_compact_the_log_below_the_watermark() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
            .with_checkpoints(CheckpointPolicy::every(2).with_compaction(true));
        let mut ctx = TestCtx::with_snapshots();
        p.on_message(r(0), accept(0, vec![cmd(1), cmd(2)], r(0)), &mut ctx);
        // A pending third instance that must survive compaction.
        p.on_message(r(0), accept(2, vec![cmd(3)], r(0)), &mut ctx);
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 2 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { up_to: 2 }, &mut ctx);
        assert_eq!(ctx.commits.len(), 2, "first run committed");
        // Compaction replaced 3 accepts + 2 commit marks with checkpoint
        // + the pending accept for instance 2.
        assert_eq!(ctx.log.len(), 2, "log: {:?}", ctx.log);
        assert!(matches!(&ctx.log[0], PaxosLogRec::Checkpoint(cp) if cp.applied == 2));
        assert!(matches!(
            &ctx.log[1],
            PaxosLogRec::Accept { instance: 2, .. }
        ));
    }

    #[test]
    fn recovery_restores_checkpoint_and_replays_only_the_suffix() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
            .with_checkpoints(CheckpointPolicy::every(2).with_compaction(true));
        let mut ctx = TestCtx::with_snapshots();
        // Two bursts: the first trips the checkpoint at watermark 2, the
        // third command lands after it and stays in the log suffix.
        p.on_message(r(0), accept(0, vec![cmd(1), cmd(2)], r(0)), &mut ctx);
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 2 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { up_to: 2 }, &mut ctx);
        p.on_message(r(0), accept(2, vec![cmd(3)], r(0)), &mut ctx);
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 3 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { up_to: 3 }, &mut ctx);
        assert_eq!(ctx.executed, vec![1, 2, 3]);
        let log = ctx.log.clone();

        let mut p2 = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx2 = TestCtx::with_snapshots();
        p2.on_recover(&log, &mut ctx2);
        assert_eq!(ctx2.executed, vec![1, 2, 3], "snapshot prefix + suffix");
        assert_eq!(ctx2.commits.len(), 1, "only instance 2 replayed");
        assert_eq!(p2.executed(), 3);
        // The ack watermark resumes above the checkpoint.
        p2.on_message(r(0), accept(3, vec![cmd(4)], r(0)), &mut ctx2);
        assert!(matches!(
            ctx2.sends.last(),
            Some((_, PaxosMsg::Accepted { up_to: 4 }))
        ));
    }

    #[test]
    fn confirmed_stall_requests_transfer_and_install_converges() {
        // Healthy r2 executes instances 0..4.
        let mut healthy = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut hctx = TestCtx::with_snapshots();
        healthy.on_message(
            r(0),
            accept(0, vec![cmd(1), cmd(2), cmd(3), cmd(4)], r(0)),
            &mut hctx,
        );
        healthy.on_message(r(0), PaxosMsg::Accepted { up_to: 4 }, &mut hctx);
        healthy.on_message(r(1), PaxosMsg::Accepted { up_to: 4 }, &mut hctx);
        assert_eq!(healthy.executed(), 4);

        // r1 recovered with an empty log: instances 0..4 were lost in its
        // outage. The next run plus peer watermarks commit through 5, but
        // execution stalls at the hole.
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::with_snapshots();
        p.on_recover(&[], &mut ctx);
        p.on_message(r(0), accept(4, vec![cmd(5)], r(0)), &mut ctx);
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 5 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { up_to: 5 }, &mut ctx);
        let requests = |ctx: &TestCtx| {
            ctx.sends
                .iter()
                .filter(|(_, m)| matches!(m, PaxosMsg::StateRequest(_)))
                .count()
        };
        assert_eq!(
            requests(&ctx),
            0,
            "a fresh hole must not trigger a transfer (accepts may be in flight)"
        );
        // The hole persists past the confirmation window: the next pass
        // over it queries one peer (round-robin; the other peer is next
        // if this round goes unanswered).
        ctx.clock = 1_000_000;
        p.on_message(r(0), accept(4, vec![cmd(5)], r(0)), &mut ctx);
        assert_eq!(requests(&ctx), 1, "confirmed stall queries one peer");
        // Another confirmation window with no reply: the retry rotates
        // to the remaining peer.
        ctx.clock = 2_000_000;
        p.on_message(r(0), accept(4, vec![cmd(5)], r(0)), &mut ctx);
        let targets: Vec<ReplicaId> = ctx
            .sends
            .iter()
            .filter_map(|(to, m)| match m {
                PaxosMsg::StateRequest(_) => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(targets, vec![r(0), r(2)], "retries rotate over the peers");

        // The healthy peer answers with its checkpoint; installing it
        // fills the hole and execution converges on the same state.
        hctx.sends.clear();
        healthy.on_message(
            r(1),
            PaxosMsg::StateRequest(StateTransferRequest { have: 0 }),
            &mut hctx,
        );
        let (to, reply) = hctx
            .sends
            .iter()
            .find(|(_, m)| matches!(m, PaxosMsg::StateReply(_)))
            .cloned()
            .expect("healthy peer must serve a checkpoint");
        assert_eq!(to, r(1));
        p.on_message(r(2), reply, &mut ctx);
        assert_eq!(
            ctx.executed,
            vec![1, 2, 3, 4, 5],
            "installed prefix + executed suffix must match the healthy replica"
        );
        // Acks resumed from the installed watermark.
        assert!(
            ctx.sends
                .iter()
                .any(|(_, m)| matches!(m, PaxosMsg::Accepted { up_to } if *up_to >= 5)),
            "watermark must resume past the installed prefix"
        );
    }

    #[test]
    fn stale_state_reply_is_ignored() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::with_snapshots();
        p.on_message(r(0), accept(0, vec![cmd(1), cmd(2)], r(0)), &mut ctx);
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 2 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { up_to: 2 }, &mut ctx);
        assert_eq!(p.executed(), 2);
        let stale = PaxosMsg::StateReply(StateTransferReply {
            checkpoint: Checkpoint {
                applied: 1,
                epoch: Epoch::ZERO,
                config: vec![r(0), r(1), r(2)],
                snapshot: Bytes::from_static(b""),
            },
        });
        p.on_message(r(0), stale, &mut ctx);
        assert_eq!(p.executed(), 2, "a stale reply must not regress anything");
        assert_eq!(ctx.executed, vec![1, 2], "state machine untouched");
    }

    #[test]
    fn recovery_replays_committed_prefix() {
        let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
        let mut ctx = TestCtx::new();
        let log = vec![
            PaxosLogRec::Accept {
                instance: 0,
                cmd: cmd(1),
                origin: r(0),
            },
            PaxosLogRec::Accept {
                instance: 1,
                cmd: cmd(2),
                origin: r(2),
            },
            PaxosLogRec::Commit { instance: 0 },
        ];
        p.on_recover(&log, &mut ctx);
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(ctx.commits[0].order_hint, 0);
        assert_eq!(p.executed(), 1);
        // The uncommitted instance 1 stays pending; later watermarks
        // covering it resume execution.
        p.on_message(r(0), PaxosMsg::Accepted { up_to: 2 }, &mut ctx);
        p.on_message(r(2), PaxosMsg::Accepted { up_to: 2 }, &mut ctx);
        assert_eq!(ctx.commits.len(), 2);
    }
}
