//! # paxos
//!
//! The **Multi-Paxos** and **Paxos-bcast** baselines of the Clock-RSM paper
//! (Sections IV-B and VI), plus a reusable **single-decree synod**
//! (classic Paxos consensus) that the Clock-RSM reconfiguration protocol
//! uses for its `PROPOSE`/`DECIDE` primitives (Algorithm 3).
//!
//! ## Multi-Paxos / Paxos-bcast
//!
//! One replica leads. Followers forward client commands to it; the leader
//! assigns consecutive instance numbers and runs phase 2 (accept) for
//! each. Two variants, exactly as analyzed in Table II of the paper:
//!
//! * **Paxos** — phase 2b goes only to the leader, which then broadcasts a
//!   commit notification. Non-leader commit latency:
//!   `2·d(r_i, r_l) + 2·median_k(d(r_l, r_k))`. Message complexity `O(N)`.
//! * **Paxos-bcast** — every replica broadcasts phase 2b; each replica
//!   self-commits on a majority. Non-leader latency:
//!   `d(r_i, r_l) + median_k(d(r_l, r_k) + d(r_k, r_i))`. Complexity
//!   `O(N²)`.
//!
//! The paper evaluates both failure-free with a fixed leader, and that is
//! still the default here ([`rsm_core::LeaseConfig::DISABLED`]). Leader
//! fail-over is fully modelled on top: with a lease installed
//! ([`MultiPaxos::with_failover`]), followers detect leader silence,
//! elect a replacement with [`Ballot`]-fenced phase 1 over the log
//! suffix, and the deposed leader rejoins as a follower — see the
//! [`replica`] module docs for the fencing invariant.
//!
//! ## Example
//!
//! ```
//! use paxos::{MultiPaxos, PaxosVariant};
//! use rsm_core::{LeaseConfig, Membership, ReplicaId};
//!
//! let p = MultiPaxos::new(
//!     ReplicaId::new(1),
//!     Membership::uniform(5),
//!     ReplicaId::new(0),          // initial leader
//!     PaxosVariant::Bcast,
//! )
//! .with_failover(LeaseConfig::after(400_000));
//! assert_eq!(p.leader(), ReplicaId::new(0));
//! assert!(!p.is_leader());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod msg;
pub mod replica;
pub mod synod;

pub use msg::{PaxosMsg, SuffixEntry};
pub use replica::{MultiPaxos, PaxosLogRec, PaxosVariant};
pub use synod::{Ballot, SynodInstance, SynodMsg};
