//! # paxos
//!
//! The **Multi-Paxos** and **Paxos-bcast** baselines of the Clock-RSM paper
//! (Sections IV-B and VI), plus a reusable **single-decree synod**
//! (classic Paxos consensus) that the Clock-RSM reconfiguration protocol
//! uses for its `PROPOSE`/`DECIDE` primitives (Algorithm 3).
//!
//! ## Multi-Paxos / Paxos-bcast
//!
//! One replica leads. Followers forward client commands to it; the leader
//! assigns consecutive instance numbers and runs phase 2 (accept) for
//! each. Two variants, exactly as analyzed in Table II of the paper:
//!
//! * **Paxos** — phase 2b goes only to the leader, which then broadcasts a
//!   commit notification. Non-leader commit latency:
//!   `2·d(r_i, r_l) + 2·median_k(d(r_l, r_k))`. Message complexity `O(N)`.
//! * **Paxos-bcast** — every replica broadcasts phase 2b; each replica
//!   self-commits on a majority. Non-leader latency:
//!   `d(r_i, r_l) + median_k(d(r_l, r_k) + d(r_k, r_i))`. Complexity
//!   `O(N²)`.
//!
//! The paper evaluates both failure-free with a fixed leader, and that is
//! still the default here ([`rsm_core::LeaseConfig::DISABLED`]). Leader
//! fail-over is fully modelled on top: with a lease installed
//! ([`MultiPaxos::with_failover`]), followers detect leader silence,
//! elect a replacement with [`Ballot`]-fenced phase 1 over the log
//! suffix, and the deposed leader rejoins as a follower — see the
//! [`replica`] module docs for the fencing invariant.
//!
//! ## Linearizable reads: leader leases and quorum marks
//!
//! The read subsystem (`rsm_core::read`) gives the **lease-holding
//! leader** local reads fenced by ballot + lease: the leader serves
//! while a majority confirmed its regime within half the suspicion
//! timeout (via messages whose send implies the sender just heard the
//! leader), and acceptors refuse to promise a higher ballot while
//! their own lease is fresh (leader stickiness), so any new regime
//! needs a majority silent from the leader for a full timeout. Unlike
//! everything else in this workspace, the fast path rests on a
//! **bounded timing assumption**: the one-way transit of lease
//! evidence plus relative clock drift over a lease window must stay
//! under half the timeout. The blast radius is deliberately small:
//! ballots still nack a deposed leader's *writes*, so a violated bound
//! can at worst leak one stale read inside one lease window, never
//! divergence. Followers — and a leader whose lease is uncertain —
//! nack the fast path and fall back to a clock-free **quorum-mark
//! read**: probe a majority for commit watermarks (raised to their
//! accepted-log tops), park the read at the maximum, serve once local
//! execution passes it. See the read-path section in `replica.rs` for
//! the full argument.
//!
//! ## Example
//!
//! ```
//! use paxos::{MultiPaxos, PaxosVariant};
//! use rsm_core::{LeaseConfig, Membership, ReplicaId};
//!
//! let p = MultiPaxos::new(
//!     ReplicaId::new(1),
//!     Membership::uniform(5),
//!     ReplicaId::new(0),          // initial leader
//!     PaxosVariant::Bcast,
//! )
//! .with_failover(LeaseConfig::after(400_000));
//! assert_eq!(p.leader(), ReplicaId::new(0));
//! assert!(!p.is_leader());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod msg;
pub mod replica;
pub mod synod;

pub use msg::{PaxosMsg, SuffixEntry};
pub use replica::{MultiPaxos, PaxosLogRec, PaxosVariant};
pub use synod::{Ballot, SynodInstance, SynodMsg};
