//! # paxos
//!
//! The **Multi-Paxos** and **Paxos-bcast** baselines of the Clock-RSM paper
//! (Sections IV-B and VI), plus a reusable **single-decree synod**
//! (classic Paxos consensus) that the Clock-RSM reconfiguration protocol
//! uses for its `PROPOSE`/`DECIDE` primitives (Algorithm 3).
//!
//! ## Multi-Paxos / Paxos-bcast
//!
//! One replica is the designated, stable leader. Followers forward client
//! commands to it; the leader assigns consecutive instance numbers and runs
//! phase 2 (accept) for each. Two variants, exactly as analyzed in
//! Table II of the paper:
//!
//! * **Paxos** — phase 2b goes only to the leader, which then broadcasts a
//!   commit notification. Non-leader commit latency:
//!   `2·d(r_i, r_l) + 2·median_k(d(r_l, r_k))`. Message complexity `O(N)`.
//! * **Paxos-bcast** — every replica broadcasts phase 2b; each replica
//!   self-commits on a majority. Non-leader latency:
//!   `d(r_i, r_l) + median_k(d(r_l, r_k) + d(r_k, r_i))`. Complexity
//!   `O(N²)`.
//!
//! Both variants assume a stable leader; leader fail-over (view change) is
//! outside the paper's evaluation and not modelled — the Clock-RSM crate's
//! reconfiguration protocol is where failure handling is reproduced.
//!
//! ## Example
//!
//! ```
//! use paxos::{MultiPaxos, PaxosVariant};
//! use rsm_core::{Membership, ReplicaId};
//!
//! let p = MultiPaxos::new(
//!     ReplicaId::new(1),
//!     Membership::uniform(5),
//!     ReplicaId::new(0),          // leader
//!     PaxosVariant::Bcast,
//! );
//! assert_eq!(p.leader(), ReplicaId::new(0));
//! assert!(!p.is_leader());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod msg;
pub mod replica;
pub mod synod;

pub use msg::PaxosMsg;
pub use replica::{MultiPaxos, PaxosLogRec, PaxosVariant};
pub use synod::{Ballot, SynodInstance, SynodMsg};
