//! Single-decree Paxos ("synod") consensus.
//!
//! The Clock-RSM reconfiguration protocol (Algorithm 3 of the paper) is
//! built on consensus primitives `PROPOSE(k, m_p)` / `DECIDE(k, m_d)`:
//! "in practice one can use a protocol like Paxos to implement the
//! primitives". This module provides exactly that — a self-contained,
//! transport-agnostic single-decree Paxos instance that the embedding
//! protocol drives by relaying its messages.
//!
//! Each [`SynodInstance`] combines the acceptor role (always active) with
//! an optional proposer role (activated by [`propose`]). Competing
//! proposers are resolved by ballots; liveness under contention is restored
//! by the embedder calling [`on_retry`] on a timeout, which re-proposes
//! with a higher ballot.
//!
//! [`propose`]: SynodInstance::propose
//! [`on_retry`]: SynodInstance::on_retry

use std::collections::HashSet;
use std::fmt;

use bytes::BytesMut;
use rsm_core::id::ReplicaId;
use rsm_core::wire::{WireDecode, WireEncode, WireError, WireReader};

/// A Paxos ballot: a round number with the proposing replica's id as the
/// tie-breaker, totally ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ballot {
    /// Retry round, dominant in the ordering.
    pub round: u64,
    /// Proposer id, breaking ties between concurrent rounds.
    pub proposer: ReplicaId,
}

impl Ballot {
    /// The null ballot, smaller than any real proposal ballot.
    pub const NULL: Ballot = Ballot {
        round: 0,
        proposer: ReplicaId::new(0),
    };
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.proposer)
    }
}

impl WireEncode for Ballot {
    fn encode(&self, buf: &mut BytesMut) {
        self.round.encode(buf);
        self.proposer.encode(buf);
    }
}

impl WireDecode for Ballot {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Ballot {
            round: u64::decode(r)?,
            proposer: ReplicaId::decode(r)?,
        })
    }
}

/// Messages of one synod instance. The embedding protocol wraps these in
/// its own message type and relays them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynodMsg<V> {
    /// Phase 1a: leader solicitation for `ballot`.
    Prepare {
        /// The soliciting ballot.
        ballot: Ballot,
    },
    /// Phase 1b: promise not to accept ballots below `ballot`; reports the
    /// highest value accepted so far, if any.
    Promise {
        /// The promised ballot (echo of the 1a ballot).
        ballot: Ballot,
        /// Highest accepted (ballot, value), if any.
        accepted: Option<(Ballot, V)>,
    },
    /// Phase 2a: proposal of `value` at `ballot`.
    Propose {
        /// The proposing ballot.
        ballot: Ballot,
        /// The proposed value.
        value: V,
    },
    /// Phase 2b: acceptance of `ballot`.
    Accept {
        /// The accepted ballot.
        ballot: Ballot,
    },
    /// A rejection hint carrying the acceptor's current promise, prompting
    /// the proposer to retry with a higher round.
    Nack {
        /// The ballot being rejected.
        ballot: Ballot,
        /// The acceptor's current promised ballot.
        promised: Ballot,
    },
    /// The decided value, broadcast by the successful proposer.
    Decided {
        /// The chosen value.
        value: V,
    },
}

impl<V: rsm_core::WireSize> rsm_core::WireSize for SynodMsg<V> {
    fn wire_size(&self) -> usize {
        use rsm_core::wire::MSG_HEADER_BYTES;
        match self {
            SynodMsg::Prepare { .. } | SynodMsg::Accept { .. } | SynodMsg::Nack { .. } => {
                MSG_HEADER_BYTES
            }
            SynodMsg::Promise { accepted, .. } => {
                MSG_HEADER_BYTES + accepted.as_ref().map_or(0, |(_, v)| v.wire_size())
            }
            SynodMsg::Propose { value, .. } | SynodMsg::Decided { value } => {
                MSG_HEADER_BYTES + value.wire_size()
            }
        }
    }
}

impl<V: WireEncode> WireEncode for SynodMsg<V> {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            SynodMsg::Prepare { ballot } => {
                0u8.encode(buf);
                ballot.encode(buf);
            }
            SynodMsg::Promise { ballot, accepted } => {
                1u8.encode(buf);
                ballot.encode(buf);
                accepted.encode(buf);
            }
            SynodMsg::Propose { ballot, value } => {
                2u8.encode(buf);
                ballot.encode(buf);
                value.encode(buf);
            }
            SynodMsg::Accept { ballot } => {
                3u8.encode(buf);
                ballot.encode(buf);
            }
            SynodMsg::Nack { ballot, promised } => {
                4u8.encode(buf);
                ballot.encode(buf);
                promised.encode(buf);
            }
            SynodMsg::Decided { value } => {
                5u8.encode(buf);
                value.encode(buf);
            }
        }
    }
}

impl<V: WireDecode> WireDecode for SynodMsg<V> {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => SynodMsg::Prepare {
                ballot: Ballot::decode(r)?,
            },
            1 => SynodMsg::Promise {
                ballot: Ballot::decode(r)?,
                accepted: Option::<(Ballot, V)>::decode(r)?,
            },
            2 => SynodMsg::Propose {
                ballot: Ballot::decode(r)?,
                value: V::decode(r)?,
            },
            3 => SynodMsg::Accept {
                ballot: Ballot::decode(r)?,
            },
            4 => SynodMsg::Nack {
                ballot: Ballot::decode(r)?,
                promised: Ballot::decode(r)?,
            },
            5 => SynodMsg::Decided {
                value: V::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    ty: "SynodMsg",
                    tag,
                })
            }
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProposerPhase {
    Idle,
    Phase1,
    Phase2,
    Done,
}

/// One single-decree Paxos instance at one replica: always an acceptor,
/// optionally a proposer.
///
/// The instance is transport-agnostic: every operation appends
/// `(destination, message)` pairs to the caller-supplied outbox.
///
/// # Examples
///
/// Running a full three-replica decision in-process:
///
/// ```
/// use paxos::{SynodInstance, SynodMsg};
/// use rsm_core::ReplicaId;
///
/// let spec: Vec<ReplicaId> = (0..3).map(ReplicaId::new).collect();
/// let mut nodes: Vec<SynodInstance<u32>> = spec
///     .iter()
///     .map(|&r| SynodInstance::new(r, spec.clone()))
///     .collect();
/// let mut outbox = Vec::new();
/// nodes[0].propose(42, &mut outbox);
/// // Relay messages until quiescent.
/// while let Some((from, to, m)) = outbox.pop().map(|(to, m)| (ReplicaId::new(0), to, m)) {
///     let mut out2 = Vec::new();
///     nodes[to.index()].on_message(from, m, &mut out2);
///     // (a real embedder routes out2 as well; see the unit tests)
///     # let _ = out2;
/// }
/// ```
#[derive(Debug)]
pub struct SynodInstance<V> {
    id: ReplicaId,
    spec: Vec<ReplicaId>,
    // Acceptor state.
    promised: Ballot,
    accepted: Option<(Ballot, V)>,
    // Proposer state.
    phase: ProposerPhase,
    my_value: Option<V>,
    ballot: Ballot,
    promises: Vec<(ReplicaId, Option<(Ballot, V)>)>,
    accepts: HashSet<ReplicaId>,
    max_round_seen: u64,
    decided: Option<V>,
}

impl<V: Clone + fmt::Debug> SynodInstance<V> {
    /// Creates an instance for replica `id` over the replicas in `spec`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `spec`.
    pub fn new(id: ReplicaId, spec: Vec<ReplicaId>) -> Self {
        assert!(spec.contains(&id), "replica {id} not in spec");
        SynodInstance {
            id,
            spec,
            promised: Ballot::NULL,
            accepted: None,
            phase: ProposerPhase::Idle,
            my_value: None,
            ballot: Ballot::NULL,
            promises: Vec::new(),
            accepts: HashSet::new(),
            max_round_seen: 0,
            decided: None,
        }
    }

    /// The decided value, once known at this replica.
    pub fn decided(&self) -> Option<&V> {
        self.decided.as_ref()
    }

    /// Whether this replica currently has a proposal in flight.
    pub fn is_proposing(&self) -> bool {
        matches!(self.phase, ProposerPhase::Phase1 | ProposerPhase::Phase2)
    }

    fn majority(&self) -> usize {
        self.spec.len() / 2 + 1
    }

    /// Starts proposing `value`. The embedder should also arm a retry timer
    /// and call [`on_retry`](SynodInstance::on_retry) if no decision arrives.
    pub fn propose(&mut self, value: V, out: &mut Vec<(ReplicaId, SynodMsg<V>)>) {
        if self.decided.is_some() {
            return;
        }
        self.my_value = Some(value);
        self.start_round(out);
    }

    /// Re-proposes with a higher ballot; call on timeout while undecided.
    pub fn on_retry(&mut self, out: &mut Vec<(ReplicaId, SynodMsg<V>)>) {
        if self.decided.is_some() || self.my_value.is_none() {
            return;
        }
        self.start_round(out);
    }

    fn start_round(&mut self, out: &mut Vec<(ReplicaId, SynodMsg<V>)>) {
        self.max_round_seen += 1;
        self.ballot = Ballot {
            round: self.max_round_seen,
            proposer: self.id,
        };
        self.phase = ProposerPhase::Phase1;
        self.promises.clear();
        self.accepts.clear();
        for &r in &self.spec {
            out.push((
                r,
                SynodMsg::Prepare {
                    ballot: self.ballot,
                },
            ));
        }
    }

    /// Processes a synod message from `from`; returns `Some(value)` the
    /// first time this replica learns the decision.
    pub fn on_message(
        &mut self,
        from: ReplicaId,
        msg: SynodMsg<V>,
        out: &mut Vec<(ReplicaId, SynodMsg<V>)>,
    ) -> Option<V> {
        match msg {
            SynodMsg::Prepare { ballot } => {
                self.max_round_seen = self.max_round_seen.max(ballot.round);
                if ballot > self.promised {
                    self.promised = ballot;
                    out.push((
                        from,
                        SynodMsg::Promise {
                            ballot,
                            accepted: self.accepted.clone(),
                        },
                    ));
                } else {
                    out.push((
                        from,
                        SynodMsg::Nack {
                            ballot,
                            promised: self.promised,
                        },
                    ));
                }
                None
            }
            SynodMsg::Promise { ballot, accepted } => {
                if self.phase != ProposerPhase::Phase1 || ballot != self.ballot {
                    return None;
                }
                if self.promises.iter().all(|(r, _)| *r != from) {
                    self.promises.push((from, accepted));
                }
                if self.promises.len() >= self.majority() {
                    // Choose the highest-ballot accepted value, else ours.
                    let inherited = self
                        .promises
                        .iter()
                        .filter_map(|(_, a)| a.clone())
                        .max_by_key(|(b, _)| *b)
                        .map(|(_, v)| v);
                    let value = inherited
                        .unwrap_or_else(|| self.my_value.clone().expect("proposer has a value"));
                    self.phase = ProposerPhase::Phase2;
                    self.accepts.clear();
                    for &r in &self.spec {
                        out.push((
                            r,
                            SynodMsg::Propose {
                                ballot: self.ballot,
                                value: value.clone(),
                            },
                        ));
                    }
                }
                None
            }
            SynodMsg::Propose { ballot, value } => {
                self.max_round_seen = self.max_round_seen.max(ballot.round);
                if ballot >= self.promised {
                    self.promised = ballot;
                    self.accepted = Some((ballot, value));
                    out.push((from, SynodMsg::Accept { ballot }));
                } else {
                    out.push((
                        from,
                        SynodMsg::Nack {
                            ballot,
                            promised: self.promised,
                        },
                    ));
                }
                None
            }
            SynodMsg::Accept { ballot } => {
                if self.phase != ProposerPhase::Phase2 || ballot != self.ballot {
                    return None;
                }
                self.accepts.insert(from);
                if self.accepts.len() >= self.majority() {
                    self.phase = ProposerPhase::Done;
                    let value = self
                        .accepted
                        .as_ref()
                        .map(|(_, v)| v.clone())
                        .or_else(|| self.my_value.clone())
                        .expect("phase-2 proposer accepted its own proposal");
                    for &r in &self.spec {
                        out.push((
                            r,
                            SynodMsg::Decided {
                                value: value.clone(),
                            },
                        ));
                    }
                    // The decision also applies locally (the broadcast loops
                    // back through the embedder's self-delivery, but return
                    // the decision immediately for responsiveness).
                    if self.decided.is_none() {
                        self.decided = Some(value.clone());
                        return Some(value);
                    }
                }
                None
            }
            SynodMsg::Nack { promised, .. } => {
                // A higher ballot exists: remember it so a retry outbids it.
                self.max_round_seen = self.max_round_seen.max(promised.round);
                None
            }
            SynodMsg::Decided { value } => {
                if self.decided.is_none() {
                    self.decided = Some(value.clone());
                    self.phase = ProposerPhase::Done;
                    Some(value)
                } else {
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn spec(n: u16) -> Vec<ReplicaId> {
        (0..n).map(ReplicaId::new).collect()
    }

    /// Delivers all in-flight messages until quiescence; returns decisions
    /// in the order replicas learned them.
    fn pump(
        nodes: &mut [SynodInstance<u32>],
        inflight: &mut VecDeque<(ReplicaId, ReplicaId, SynodMsg<u32>)>,
        drop_to: &[ReplicaId],
    ) -> Vec<(ReplicaId, u32)> {
        let mut decisions = Vec::new();
        while let Some((from, to, msg)) = inflight.pop_front() {
            if drop_to.contains(&to) {
                continue;
            }
            let mut out = Vec::new();
            if let Some(v) = nodes[to.index()].on_message(from, msg, &mut out) {
                decisions.push((to, v));
            }
            for (dest, m) in out {
                inflight.push_back((to, dest, m));
            }
        }
        decisions
    }

    fn start(
        nodes: &mut [SynodInstance<u32>],
        proposer: usize,
        value: u32,
        inflight: &mut VecDeque<(ReplicaId, ReplicaId, SynodMsg<u32>)>,
    ) {
        let mut out = Vec::new();
        nodes[proposer].propose(value, &mut out);
        for (dest, m) in out {
            inflight.push_back((ReplicaId::new(proposer as u16), dest, m));
        }
    }

    #[test]
    fn single_proposer_decides_its_value() {
        let s = spec(3);
        let mut nodes: Vec<_> = s
            .iter()
            .map(|&r| SynodInstance::new(r, s.clone()))
            .collect();
        let mut inflight = VecDeque::new();
        start(&mut nodes, 0, 7, &mut inflight);
        let decisions = pump(&mut nodes, &mut inflight, &[]);
        assert!(decisions.iter().all(|(_, v)| *v == 7));
        for n in &nodes {
            assert_eq!(n.decided(), Some(&7));
        }
    }

    #[test]
    fn competing_proposers_agree_on_one_value() {
        let s = spec(5);
        let mut nodes: Vec<_> = s
            .iter()
            .map(|&r| SynodInstance::new(r, s.clone()))
            .collect();
        let mut inflight = VecDeque::new();
        start(&mut nodes, 0, 100, &mut inflight);
        start(&mut nodes, 4, 200, &mut inflight);
        // Interleave deliveries; retries resolve contention.
        for _ in 0..20 {
            pump(&mut nodes, &mut inflight, &[]);
            if nodes.iter().all(|n| n.decided().is_some()) {
                break;
            }
            for i in [0usize, 4] {
                let mut out = Vec::new();
                nodes[i].on_retry(&mut out);
                for (dest, m) in out {
                    inflight.push_back((ReplicaId::new(i as u16), dest, m));
                }
            }
        }
        let decided: Vec<u32> = nodes.iter().filter_map(|n| n.decided().copied()).collect();
        assert_eq!(decided.len(), 5, "all replicas must decide");
        assert!(decided.windows(2).all(|w| w[0] == w[1]), "{decided:?}");
        assert!(decided[0] == 100 || decided[0] == 200);
    }

    #[test]
    fn decision_survives_minority_unreachable() {
        let s = spec(5);
        let mut nodes: Vec<_> = s
            .iter()
            .map(|&r| SynodInstance::new(r, s.clone()))
            .collect();
        let mut inflight = VecDeque::new();
        let dead = [ReplicaId::new(3), ReplicaId::new(4)];
        start(&mut nodes, 0, 9, &mut inflight);
        let decisions = pump(&mut nodes, &mut inflight, &dead);
        assert!(!decisions.is_empty());
        assert!(decisions.iter().all(|(_, v)| *v == 9));
        assert_eq!(nodes[0].decided(), Some(&9));
        assert_eq!(nodes[3].decided(), None);
    }

    #[test]
    fn second_proposer_inherits_chosen_value() {
        // r0 decides with {r0, r1, r2}; r4 proposes later and must learn 11
        // rather than imposing 55.
        let s = spec(5);
        let mut nodes: Vec<_> = s
            .iter()
            .map(|&r| SynodInstance::new(r, s.clone()))
            .collect();
        let mut inflight = VecDeque::new();
        let dead = [ReplicaId::new(3), ReplicaId::new(4)];
        start(&mut nodes, 0, 11, &mut inflight);
        pump(&mut nodes, &mut inflight, &dead);
        assert_eq!(nodes[0].decided(), Some(&11));
        // Now r4 (which saw nothing) proposes 55 reaching everyone.
        start(&mut nodes, 4, 55, &mut inflight);
        for _ in 0..10 {
            pump(&mut nodes, &mut inflight, &[]);
            if nodes[4].decided().is_some() {
                break;
            }
            let mut out = Vec::new();
            nodes[4].on_retry(&mut out);
            for (dest, m) in out {
                inflight.push_back((ReplicaId::new(4), dest, m));
            }
        }
        assert_eq!(nodes[4].decided(), Some(&11), "agreement violated");
    }

    #[test]
    fn ballots_order_by_round_then_proposer() {
        let a = Ballot {
            round: 1,
            proposer: ReplicaId::new(2),
        };
        let b = Ballot {
            round: 2,
            proposer: ReplicaId::new(0),
        };
        assert!(a < b);
        assert!(Ballot::NULL < a);
        assert_eq!(a.to_string(), "b1.r2");
    }

    #[test]
    fn proposing_state_is_reported() {
        let s = spec(3);
        let mut n = SynodInstance::new(ReplicaId::new(0), s);
        assert!(!n.is_proposing());
        let mut out = Vec::new();
        n.propose(1, &mut out);
        assert!(n.is_proposing());
    }
}
