use super::*;
use crate::msg::SuffixEntry;
use bytes::Bytes;
use rsm_core::command::CommandId;
use rsm_core::id::ClientId;
use rsm_core::read::ReadRequest;
use rsm_core::time::Micros;

struct TestCtx {
    sends: Vec<(ReplicaId, PaxosMsg)>,
    commits: Vec<Committed>,
    log: Vec<PaxosLogRec>,
    clock: Micros,
    /// Executed command seqs — a trivial state machine for snapshot
    /// tests; `snapshots` gates whether the driver supports them.
    executed: Vec<u64>,
    snapshots: bool,
    /// Replies routed via `send_reply` (served local reads).
    read_replies: Vec<Reply>,
    /// Whether `sm_read` answers (false models a driver without state
    /// machine access, forcing the replicated fallback).
    serve_reads: bool,
}

impl TestCtx {
    fn new() -> Self {
        TestCtx {
            sends: Vec::new(),
            commits: Vec::new(),
            log: Vec::new(),
            clock: 0,
            executed: Vec::new(),
            snapshots: false,
            read_replies: Vec::new(),
            serve_reads: true,
        }
    }

    fn with_snapshots() -> Self {
        TestCtx {
            snapshots: true,
            ..TestCtx::new()
        }
    }
}

impl Context<MultiPaxos> for TestCtx {
    fn clock(&mut self) -> Micros {
        self.clock += 1;
        self.clock
    }
    fn send(&mut self, to: ReplicaId, msg: PaxosMsg) {
        self.sends.push((to, msg));
    }
    fn log_append(&mut self, rec: PaxosLogRec) {
        self.log.push(rec);
    }
    fn log_rewrite(&mut self, recs: Vec<PaxosLogRec>) {
        self.log = recs;
    }
    fn commit(&mut self, c: Committed) -> Bytes {
        let result = c.cmd.payload.clone();
        self.executed.push(c.cmd.id.seq);
        self.commits.push(c);
        result
    }
    fn set_timer(&mut self, _after: Micros, _token: TimerToken) {}
    fn sm_snapshot(&mut self) -> Option<Bytes> {
        if !self.snapshots {
            return None;
        }
        let mut buf = Vec::new();
        for s in &self.executed {
            buf.extend_from_slice(&s.to_be_bytes());
        }
        Some(Bytes::from(buf))
    }
    fn sm_install(&mut self, snapshot: Bytes) -> bool {
        if !self.snapshots {
            return false;
        }
        self.executed = snapshot
            .chunks(8)
            .map(|c| u64::from_be_bytes(c.try_into().expect("8-byte chunks")))
            .collect();
        true
    }
    fn sm_read(&mut self, _cmd: &Command) -> Option<Bytes> {
        self.serve_reads
            .then(|| Bytes::from(self.executed.len().to_be_bytes().to_vec()))
    }
    fn send_reply(&mut self, reply: Reply) {
        self.read_replies.push(reply);
    }
}

fn cmd(seq: u64) -> Command {
    Command::new(
        CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
        Bytes::from_static(b"op"),
    )
}

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

/// The initial regime of a leader-0 deployment.
fn b0() -> Ballot {
    Ballot {
        round: 0,
        proposer: r(0),
    }
}

fn b(round: u64, proposer: u16) -> Ballot {
    Ballot {
        round,
        proposer: r(proposer),
    }
}

fn accept(ballot: Ballot, first_instance: u64, cmds: Vec<Command>, origin: ReplicaId) -> PaxosMsg {
    PaxosMsg::Accept {
        ballot,
        first_instance,
        cmds: Batch::new(cmds),
        origin,
    }
}

fn acked(ballot: Ballot, up_to: u64) -> PaxosMsg {
    PaxosMsg::Accepted { ballot, up_to }
}

fn lease() -> LeaseConfig {
    LeaseConfig::after(400_000)
}

fn last_ack(ctx: &TestCtx) -> Option<u64> {
    ctx.sends.iter().rev().find_map(|(_, m)| match m {
        PaxosMsg::Accepted { up_to, .. } => Some(*up_to),
        _ => None,
    })
}

fn prepares(ctx: &TestCtx) -> Vec<Ballot> {
    ctx.sends
        .iter()
        .filter_map(|(_, m)| match m {
            PaxosMsg::Prepare { ballot, .. } => Some(*ballot),
            _ => None,
        })
        .collect()
}

// ----------------------------------------------------------------------
// The stable-leader data plane (fail-over disabled)
// ----------------------------------------------------------------------

#[test]
fn follower_forwards_to_leader() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    p.on_client_request(cmd(1), &mut ctx);
    assert_eq!(ctx.sends.len(), 1);
    assert_eq!(ctx.sends[0].0, r(0));
    assert!(matches!(ctx.sends[0].1, PaxosMsg::Forward { .. }));
}

#[test]
fn leader_assigns_consecutive_instances() {
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    p.on_client_request(cmd(1), &mut ctx);
    p.on_client_request(cmd(2), &mut ctx);
    let firsts: Vec<u64> = ctx
        .sends
        .iter()
        .filter_map(|(_, m)| match m {
            PaxosMsg::Accept { first_instance, .. } => Some(*first_instance),
            _ => None,
        })
        .collect();
    // 2 peers × 2 commands (the leader self-delivers synchronously).
    assert_eq!(firsts.len(), 4);
    assert_eq!(firsts[0], 0);
    assert_eq!(firsts[3], 1);
}

#[test]
fn leader_binds_a_batch_to_one_instance_run() {
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    p.on_client_batch(Batch::new(vec![cmd(1), cmd(2), cmd(3)]), &mut ctx);
    let accepts: Vec<(u64, usize)> = ctx
        .sends
        .iter()
        .filter_map(|(_, m)| match m {
            PaxosMsg::Accept {
                first_instance,
                cmds,
                ..
            } => Some((*first_instance, cmds.len())),
            _ => None,
        })
        .collect();
    assert_eq!(accepts.len(), 2, "one ACCEPT per peer for 3 cmds");
    assert!(accepts.iter().all(|&(f, k)| f == 0 && k == 3));
    assert_eq!(p.next_instance, 3);
    assert_eq!(ctx.log.len(), 3, "leader logs its own run synchronously");
}

#[test]
fn accept_fanout_shares_the_batch_payload_across_peers() {
    // Allocation-lean fan-out: the leader's per-peer ACCEPT clones share
    // one Arc-backed command vector with the submitted batch instead of
    // deep-copying it per destination.
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    let batch = Batch::new((1..=64).map(cmd).collect());
    p.on_client_batch(batch.clone(), &mut ctx);
    let accepts: Vec<&Batch> = ctx
        .sends
        .iter()
        .filter_map(|(_, m)| match m {
            PaxosMsg::Accept { cmds, .. } => Some(cmds),
            _ => None,
        })
        .collect();
    assert_eq!(accepts.len(), 2, "one ACCEPT per peer");
    for sent in &accepts {
        assert!(
            sent.ptr_eq(&batch),
            "a peer copy deep-cloned the command payload"
        );
    }
}

#[test]
fn bcast_commits_on_majority_acks() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1)], r(0)), &mut ctx);
    // Logged and broadcast its own cumulative 2b.
    assert_eq!(ctx.log.len(), 1);
    let own_acks = ctx
        .sends
        .iter()
        .filter(|(_, m)| matches!(m, PaxosMsg::Accepted { up_to: 1, .. }))
        .count();
    assert_eq!(own_acks, 3);
    // Two 2b watermarks arrive (majority of 3 incl. someone else's).
    p.on_message(r(0), acked(b0(), 1), &mut ctx);
    assert!(ctx.commits.is_empty());
    p.on_message(r(1), acked(b0(), 1), &mut ctx);
    assert_eq!(ctx.commits.len(), 1);
    assert_eq!(ctx.commits[0].origin, r(0));
}

#[test]
fn one_ack_covers_a_whole_batch() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    p.on_message(
        r(0),
        accept(b0(), 0, vec![cmd(1), cmd(2), cmd(3)], r(0)),
        &mut ctx,
    );
    assert_eq!(ctx.log.len(), 3, "all three commands logged");
    let acks: Vec<u64> = ctx
        .sends
        .iter()
        .filter_map(|(_, m)| match m {
            PaxosMsg::Accepted { up_to, .. } => Some(*up_to),
            _ => None,
        })
        .collect();
    assert_eq!(acks, vec![3, 3, 3], "ONE watermark ack per destination");
    // Majority watermarks commit the whole run at once, in order.
    p.on_message(r(0), acked(b0(), 3), &mut ctx);
    p.on_message(r(1), acked(b0(), 3), &mut ctx);
    assert_eq!(ctx.commits.len(), 3);
    let hints: Vec<u64> = ctx.commits.iter().map(|c| c.order_hint).collect();
    assert_eq!(hints, vec![0, 1, 2]);
}

#[test]
fn plain_follower_waits_for_commit_message() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Plain);
    let mut ctx = TestCtx::new();
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1)], r(2)), &mut ctx);
    // 2b goes to the leader only.
    let (to, _) = ctx
        .sends
        .iter()
        .find(|(_, m)| matches!(m, PaxosMsg::Accepted { .. }))
        .unwrap();
    assert_eq!(*to, r(0));
    // Acks from others do nothing at a plain follower.
    p.on_message(r(0), acked(b0(), 1), &mut ctx);
    p.on_message(r(2), acked(b0(), 1), &mut ctx);
    assert!(ctx.commits.is_empty());
    p.on_message(
        r(0),
        PaxosMsg::Commit {
            ballot: b0(),
            up_to: 1,
        },
        &mut ctx,
    );
    assert_eq!(ctx.commits.len(), 1);
}

#[test]
fn plain_leader_broadcasts_commit_on_majority() {
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Plain);
    let mut ctx = TestCtx::new();
    // propose() self-delivers the Accept synchronously: the run is
    // logged and the leader's own Accepted is already in flight.
    p.on_client_request(cmd(1), &mut ctx);
    p.on_message(r(0), acked(b0(), 1), &mut ctx);
    p.on_message(r(1), acked(b0(), 1), &mut ctx);
    let commit_sends = ctx
        .sends
        .iter()
        .filter(|(_, m)| matches!(m, PaxosMsg::Commit { .. }))
        .count();
    assert_eq!(commit_sends, 3);
}

#[test]
fn execution_is_in_instance_order_despite_commit_reorder() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    for i in 0..2 {
        p.on_message(r(0), accept(b0(), i, vec![cmd(i)], r(0)), &mut ctx);
    }
    // A watermark only covering instance 0 from one replica: nothing
    // commits yet (one ack is not a majority).
    p.on_message(r(0), acked(b0(), 1), &mut ctx);
    assert!(ctx.commits.is_empty(), "one ack is not a majority");
    // Majority watermarks covering both instances commit them in
    // instance order (cumulative acks make out-of-order commit of a
    // later instance impossible by construction).
    p.on_message(r(0), acked(b0(), 2), &mut ctx);
    p.on_message(r(1), acked(b0(), 2), &mut ctx);
    assert_eq!(ctx.commits.len(), 2);
    assert_eq!(ctx.commits[0].order_hint, 0);
    assert_eq!(ctx.commits[1].order_hint, 1);
}

#[test]
fn recovered_replica_never_acks_across_a_gap() {
    // B logged instances 0..2, crashed while 2..5 were in flight
    // (lost), recovered, and then receives the run starting at 5.
    // Its cumulative ack must stay at the gap — claiming 5..8 would
    // falsely vouch for the lost 2..5 and break quorum intersection.
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    let log = vec![
        PaxosLogRec::Accept {
            instance: 0,
            ballot: b0(),
            cmd: cmd(1),
            origin: r(0),
        },
        PaxosLogRec::Accept {
            instance: 1,
            ballot: b0(),
            cmd: cmd(2),
            origin: r(0),
        },
    ];
    p.on_recover(&log, &mut ctx);
    p.on_message(
        r(0),
        accept(b0(), 5, vec![cmd(6), cmd(7), cmd(8)], r(0)),
        &mut ctx,
    );
    let acks: Vec<u64> = ctx
        .sends
        .iter()
        .filter_map(|(_, m)| match m {
            PaxosMsg::Accepted { up_to, .. } => Some(*up_to),
            _ => None,
        })
        .collect();
    assert!(
        acks.iter().all(|&w| w <= 2),
        "watermark crossed the gap: {acks:?}"
    );
    // The post-gap commands are still logged for state transfer.
    assert_eq!(ctx.log.len(), 3);
}

#[test]
fn late_accept_fills_an_already_committed_instance_and_executes() {
    // Accepted watermarks can outrun the Accept itself via faster
    // relays (the EC2 matrix violates the triangle inequality): the
    // commit watermark covers instance 0 before its command arrives.
    // The late Accept must trigger execution — nothing else retries.
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    p.on_message(r(0), acked(b0(), 1), &mut ctx);
    p.on_message(r(2), acked(b0(), 1), &mut ctx);
    assert!(ctx.commits.is_empty(), "command not yet known");
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1)], r(0)), &mut ctx);
    assert_eq!(ctx.commits.len(), 1, "late accept must resume execution");
    assert_eq!(ctx.commits[0].order_hint, 0);
}

#[test]
fn recovered_replica_resumes_acking_once_the_gap_commits() {
    // Same gap as above, but the cluster then commits past it
    // (Commit watermark from the leader): the hole is now globally
    // decided, so covering it cumulatively adds no false quorum
    // evidence — the replica's watermark may jump and it resumes
    // quorum duty for new instances.
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Plain);
    let mut ctx = TestCtx::new();
    let log = vec![PaxosLogRec::Accept {
        instance: 0,
        ballot: b0(),
        cmd: cmd(1),
        origin: r(0),
    }];
    p.on_recover(&log, &mut ctx);
    // Gap: instances 1..3 were lost; the run starting at 3 must not
    // be vouched for yet.
    p.on_message(r(0), accept(b0(), 3, vec![cmd(4)], r(0)), &mut ctx);
    assert_eq!(last_ack(&ctx), Some(1));
    // The leader announces everything below 4 committed, then sends
    // the next run: the watermark jumps over the decided hole.
    p.on_message(
        r(0),
        PaxosMsg::Commit {
            ballot: b0(),
            up_to: 4,
        },
        &mut ctx,
    );
    p.on_message(r(0), accept(b0(), 4, vec![cmd(5), cmd(6)], r(0)), &mut ctx);
    assert_eq!(
        last_ack(&ctx),
        Some(6),
        "ack watermark must resume past a committed gap"
    );
}

#[test]
fn leader_recovery_never_reuses_instances() {
    // The leader logs its own Accept run synchronously in propose();
    // a crash right after proposing (before any network round-trip)
    // must not let recovery re-assign the same instance numbers to
    // new commands — followers may have logged or committed the
    // originals, and a re-proposal would fork execution.
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    p.on_client_batch(Batch::new(vec![cmd(1), cmd(2)]), &mut ctx);
    assert_eq!(ctx.log.len(), 2, "run logged before any network round-trip");
    let mut p2 = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx2 = TestCtx::new();
    p2.on_recover(&ctx.log, &mut ctx2);
    p2.on_client_request(cmd(3), &mut ctx2);
    let firsts: Vec<u64> = ctx2
        .sends
        .iter()
        .filter_map(|(_, m)| match m {
            PaxosMsg::Accept { first_instance, .. } => Some(*first_instance),
            _ => None,
        })
        .collect();
    assert!(!firsts.is_empty());
    assert!(
        firsts.iter().all(|&f| f >= 2),
        "instances 0..2 must not be reused: {firsts:?}"
    );
}

#[test]
fn recovered_replica_reextends_watermark_past_a_committed_gap_under_load() {
    // B logged instance 0 and lost 1..3 in its crash. Under
    // pipelined load the commit watermark always trails the newest
    // accept run, so the on_accept jump alone never fires; the
    // watermark must also re-extend when commits advance past the
    // gap, or B acks up_to=1 forever and never rejoins quorums.
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    let log = vec![PaxosLogRec::Accept {
        instance: 0,
        ballot: b0(),
        cmd: cmd(1),
        origin: r(0),
    }];
    p.on_recover(&log, &mut ctx);
    // Run [3,4) arrives while the gap is still uncommitted.
    p.on_message(r(0), accept(b0(), 3, vec![cmd(4)], r(0)), &mut ctx);
    assert_eq!(last_ack(&ctx), Some(1));
    // Peer watermarks commit through the gap (to 3) while run [4,5)
    // is already in flight.
    p.on_message(r(0), acked(b0(), 3), &mut ctx);
    p.on_message(r(2), acked(b0(), 3), &mut ctx);
    // The pipelined run arrives with committed_next (3) still below
    // its first instance (4): the watermark must nevertheless cover
    // the decided gap plus the contiguously logged instance 3.
    p.on_message(r(0), accept(b0(), 4, vec![cmd(5)], r(0)), &mut ctx);
    assert_eq!(last_ack(&ctx), Some(5), "watermark frozen at the gap");
}

#[test]
fn checkpoints_compact_the_log_below_the_watermark() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_checkpoints(CheckpointPolicy::every(2).with_compaction(true));
    let mut ctx = TestCtx::with_snapshots();
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1), cmd(2)], r(0)), &mut ctx);
    // A pending third instance that must survive compaction.
    p.on_message(r(0), accept(b0(), 2, vec![cmd(3)], r(0)), &mut ctx);
    p.on_message(r(0), acked(b0(), 2), &mut ctx);
    p.on_message(r(2), acked(b0(), 2), &mut ctx);
    assert_eq!(ctx.commits.len(), 2, "first run committed");
    // Compaction replaced 3 accepts + 2 commit marks with checkpoint
    // + promise + the pending accept for instance 2.
    assert_eq!(ctx.log.len(), 3, "log: {:?}", ctx.log);
    assert!(matches!(&ctx.log[0], PaxosLogRec::Checkpoint(cp) if cp.applied == 2));
    assert!(matches!(&ctx.log[1], PaxosLogRec::Promised(_)));
    assert!(matches!(
        &ctx.log[2],
        PaxosLogRec::Accept { instance: 2, .. }
    ));
}

#[test]
fn recovery_restores_checkpoint_and_replays_only_the_suffix() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_checkpoints(CheckpointPolicy::every(2).with_compaction(true));
    let mut ctx = TestCtx::with_snapshots();
    // Two bursts: the first trips the checkpoint at watermark 2, the
    // third command lands after it and stays in the log suffix.
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1), cmd(2)], r(0)), &mut ctx);
    p.on_message(r(0), acked(b0(), 2), &mut ctx);
    p.on_message(r(2), acked(b0(), 2), &mut ctx);
    p.on_message(r(0), accept(b0(), 2, vec![cmd(3)], r(0)), &mut ctx);
    p.on_message(r(0), acked(b0(), 3), &mut ctx);
    p.on_message(r(2), acked(b0(), 3), &mut ctx);
    assert_eq!(ctx.executed, vec![1, 2, 3]);
    let log = ctx.log.clone();

    let mut p2 = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx2 = TestCtx::with_snapshots();
    p2.on_recover(&log, &mut ctx2);
    assert_eq!(ctx2.executed, vec![1, 2, 3], "snapshot prefix + suffix");
    assert_eq!(ctx2.commits.len(), 1, "only instance 2 replayed");
    assert_eq!(p2.executed(), 3);
    // The ack watermark resumes above the checkpoint.
    p2.on_message(r(0), accept(b0(), 3, vec![cmd(4)], r(0)), &mut ctx2);
    assert_eq!(last_ack(&ctx2), Some(4));
}

#[test]
fn confirmed_stall_requests_transfer_and_install_converges() {
    // Healthy r2 executes instances 0..4.
    let mut healthy = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut hctx = TestCtx::with_snapshots();
    healthy.on_message(
        r(0),
        accept(b0(), 0, vec![cmd(1), cmd(2), cmd(3), cmd(4)], r(0)),
        &mut hctx,
    );
    healthy.on_message(r(0), acked(b0(), 4), &mut hctx);
    healthy.on_message(r(1), acked(b0(), 4), &mut hctx);
    assert_eq!(healthy.executed(), 4);

    // r1 recovered with an empty log: instances 0..4 were lost in its
    // outage. The next run plus peer watermarks commit through 5, but
    // execution stalls at the hole.
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::with_snapshots();
    p.on_recover(&[], &mut ctx);
    p.on_message(r(0), accept(b0(), 4, vec![cmd(5)], r(0)), &mut ctx);
    p.on_message(r(0), acked(b0(), 5), &mut ctx);
    p.on_message(r(2), acked(b0(), 5), &mut ctx);
    let requests = |ctx: &TestCtx| {
        ctx.sends
            .iter()
            .filter(|(_, m)| matches!(m, PaxosMsg::StateRequest(_)))
            .count()
    };
    assert_eq!(
        requests(&ctx),
        0,
        "a fresh hole must not trigger a transfer (accepts may be in flight)"
    );
    // The hole persists past the confirmation window: the next pass
    // over it queries one peer (round-robin; the other peer is next
    // if this round goes unanswered).
    ctx.clock = 1_000_000;
    p.on_message(r(0), accept(b0(), 4, vec![cmd(5)], r(0)), &mut ctx);
    assert_eq!(requests(&ctx), 1, "confirmed stall queries one peer");
    // Another confirmation window with no reply: the retry rotates
    // to the remaining peer.
    ctx.clock = 2_000_000;
    p.on_message(r(0), accept(b0(), 4, vec![cmd(5)], r(0)), &mut ctx);
    let targets: Vec<ReplicaId> = ctx
        .sends
        .iter()
        .filter_map(|(to, m)| match m {
            PaxosMsg::StateRequest(_) => Some(*to),
            _ => None,
        })
        .collect();
    assert_eq!(targets, vec![r(0), r(2)], "retries rotate over the peers");

    // The healthy peer answers with its checkpoint; installing it
    // fills the hole and execution converges on the same state.
    hctx.sends.clear();
    healthy.on_message(
        r(1),
        PaxosMsg::StateRequest(StateTransferRequest { have: 0 }),
        &mut hctx,
    );
    let (to, reply) = hctx
        .sends
        .iter()
        .find(|(_, m)| matches!(m, PaxosMsg::StateReply { .. }))
        .cloned()
        .expect("healthy peer must serve a checkpoint");
    assert_eq!(to, r(1));
    p.on_message(r(2), reply, &mut ctx);
    assert_eq!(
        ctx.executed,
        vec![1, 2, 3, 4, 5],
        "installed prefix + executed suffix must match the healthy replica"
    );
    // Acks resumed from the installed watermark.
    assert!(
        ctx.sends
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Accepted { up_to, .. } if *up_to >= 5)),
        "watermark must resume past the installed prefix"
    );
}

#[test]
fn stale_state_reply_is_ignored() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::with_snapshots();
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1), cmd(2)], r(0)), &mut ctx);
    p.on_message(r(0), acked(b0(), 2), &mut ctx);
    p.on_message(r(2), acked(b0(), 2), &mut ctx);
    assert_eq!(p.executed(), 2);
    let stale = PaxosMsg::StateReply {
        reply: StateTransferReply {
            checkpoint: Checkpoint {
                applied: 1,
                epoch: Epoch::ZERO,
                config: vec![r(0), r(1), r(2)],
                snapshot: Bytes::from_static(b""),
                sessions: Bytes::new(),
            },
        },
        promised: b0(),
    };
    p.on_message(r(0), stale, &mut ctx);
    assert_eq!(p.executed(), 2, "a stale reply must not regress anything");
    assert_eq!(ctx.executed, vec![1, 2], "state machine untouched");
}

#[test]
fn recovery_replays_committed_prefix() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    let log = vec![
        PaxosLogRec::Accept {
            instance: 0,
            ballot: b0(),
            cmd: cmd(1),
            origin: r(0),
        },
        PaxosLogRec::Accept {
            instance: 1,
            ballot: b0(),
            cmd: cmd(2),
            origin: r(2),
        },
        PaxosLogRec::Commit { instance: 0 },
    ];
    p.on_recover(&log, &mut ctx);
    assert_eq!(ctx.commits.len(), 1);
    assert_eq!(ctx.commits[0].order_hint, 0);
    assert_eq!(p.executed(), 1);
    // The uncommitted instance 1 stays pending; later watermarks
    // covering it resume execution.
    p.on_message(r(0), acked(b0(), 2), &mut ctx);
    p.on_message(r(2), acked(b0(), 2), &mut ctx);
    assert_eq!(ctx.commits.len(), 2);
}

// ----------------------------------------------------------------------
// Leader election and lease-based fail-over
// ----------------------------------------------------------------------

#[test]
fn stale_ballot_accept_from_deposed_leader_is_rejected() {
    // The acceptance-criterion regression: an acceptor that promised a
    // candidate must Nack the deposed leader's in-flight Accept — not
    // log it, not ack it.
    let mut p = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1)], r(0)), &mut ctx);
    assert_eq!(ctx.log.len(), 1);
    // r1's candidacy: once this acceptor's own lease has expired
    // (leader stickiness), it promises ballot (1, r1).
    ctx.clock += lease().timeout_us + 1;
    p.on_message(
        r(1),
        PaxosMsg::Prepare {
            ballot: b(1, 1),
            from_instance: 0,
        },
        &mut ctx,
    );
    assert_eq!(p.promised(), b(1, 1));
    let logged_before = ctx.log.len();
    let acks_before = ctx
        .sends
        .iter()
        .filter(|(_, m)| matches!(m, PaxosMsg::Accepted { .. }))
        .count();
    // The deposed leader's in-flight run arrives at the old ballot.
    p.on_message(r(0), accept(b0(), 1, vec![cmd(2)], r(0)), &mut ctx);
    let nacks: Vec<(ReplicaId, Ballot)> = ctx
        .sends
        .iter()
        .filter_map(|(to, m)| match m {
            PaxosMsg::Nack { promised } => Some((*to, *promised)),
            _ => None,
        })
        .collect();
    assert_eq!(nacks, vec![(r(0), b(1, 1))], "stale accept must be nacked");
    assert_eq!(ctx.log.len(), logged_before, "stale accept must not log");
    let acks_after = ctx
        .sends
        .iter()
        .filter(|(_, m)| matches!(m, PaxosMsg::Accepted { .. }))
        .count();
    assert_eq!(acks_after, acks_before, "stale accept must not be acked");
}

#[test]
fn lease_expiry_starts_a_staggered_election() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    // Before the staggered timeout (400ms + 1×100ms for index 1): quiet.
    ctx.clock = 400_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    assert!(prepares(&ctx).is_empty(), "lease not yet expired");
    assert!(!p.is_campaigning());
    // Past it: a candidacy at round 1 solicits everyone, self included.
    ctx.clock = 600_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    assert_eq!(prepares(&ctx), vec![b(1, 1); 3]);
    assert!(p.is_campaigning());
}

#[test]
fn heartbeat_renews_the_lease() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock = 450_000;
    p.on_message(
        r(0),
        PaxosMsg::Heartbeat {
            ballot: b0(),
            committed: 0,
        },
        &mut ctx,
    );
    // Half a lease later the renewal still holds.
    ctx.clock = 800_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    assert!(prepares(&ctx).is_empty(), "heartbeat must renew the lease");
    // Silence past the stagger finally triggers suspicion.
    ctx.clock = 2_000_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    assert!(!prepares(&ctx).is_empty());
}

#[test]
fn leader_heartbeats_when_idle() {
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    p.on_timer(TOKEN_LEASE, &mut ctx);
    let heartbeats = ctx
        .sends
        .iter()
        .filter(|(_, m)| matches!(m, PaxosMsg::Heartbeat { .. }))
        .count();
    assert_eq!(heartbeats, 2, "one heartbeat per peer, none to self");
}

#[test]
fn promise_reports_the_accepted_suffix_with_ballots() {
    let mut p = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    p.on_message(
        r(0),
        accept(b0(), 0, vec![cmd(1), cmd(2), cmd(3)], r(0)),
        &mut ctx,
    );
    ctx.clock += lease().timeout_us + 1; // leader stickiness: lease must lapse
    p.on_message(
        r(1),
        PaxosMsg::Prepare {
            ballot: b(1, 1),
            from_instance: 1,
        },
        &mut ctx,
    );
    let (to, promise) = ctx
        .sends
        .iter()
        .find(|(_, m)| matches!(m, PaxosMsg::Promise { .. }))
        .cloned()
        .expect("promise must be sent");
    assert_eq!(to, r(1));
    let PaxosMsg::Promise {
        ballot,
        from_instance,
        committed,
        entries,
    } = promise
    else {
        unreachable!()
    };
    assert_eq!((ballot, from_instance, committed), (b(1, 1), 1, 0));
    let reported: Vec<(u64, Ballot)> = entries.iter().map(|e| (e.instance, e.ballot)).collect();
    assert_eq!(reported, vec![(1, b0()), (2, b0())]);
    assert!(entries.iter().all(|e| e.value.is_some()));
    // The promise is durable before it leaves.
    assert!(ctx
        .log
        .iter()
        .any(|rec| matches!(rec, PaxosLogRec::Promised(pb) if *pb == b(1, 1))));
}

#[test]
fn election_win_merges_highest_ballot_and_noops_holes() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock = 600_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    let ballot = b(1, 1);
    assert_eq!(prepares(&ctx), vec![ballot; 3]);
    // Own promise (empty log, nothing committed).
    p.on_message(
        r(1),
        PaxosMsg::Prepare {
            ballot,
            from_instance: 0,
        },
        &mut ctx,
    );
    p.on_message(
        r(1),
        PaxosMsg::Promise {
            ballot,
            from_instance: 0,
            committed: 0,
            entries: vec![],
        },
        &mut ctx,
    );
    assert!(!p.is_leader(), "one promise is not a majority");
    // r2 reports instance 1 accepted at the old regime — instance 0 is
    // a hole nobody accepted, provably unchosen.
    p.on_message(
        r(2),
        PaxosMsg::Promise {
            ballot,
            from_instance: 0,
            committed: 0,
            entries: vec![SuffixEntry {
                instance: 1,
                ballot: b0(),
                value: Some((cmd(42), r(0))),
            }],
        },
        &mut ctx,
    );
    assert!(p.is_leader(), "majority of promises elects");
    assert_eq!(p.regime(), ballot);
    assert_eq!(p.leader(), r(1));
    // The repair closes the hole with a no-op and re-proposes the
    // inherited value at the new ballot.
    let (_, repair) = ctx
        .sends
        .iter()
        .find(|(_, m)| matches!(m, PaxosMsg::Repair { .. }))
        .cloned()
        .expect("winner must broadcast a repair");
    let PaxosMsg::Repair {
        ballot: rb,
        floor,
        entries,
    } = repair
    else {
        unreachable!()
    };
    assert_eq!((rb, floor), (ballot, 0));
    assert_eq!(entries.len(), 2);
    assert!(entries[0].value.is_none(), "hole closed with a no-op");
    assert_eq!(entries[1].value.as_ref().unwrap().0.id.seq, 42);
    // The new leader logged its own repair durably and vouches for it.
    assert!(ctx
        .log
        .iter()
        .any(|rec| matches!(rec, PaxosLogRec::Noop { instance: 0, .. })));
    assert_eq!(last_ack(&ctx), Some(2));
    // Majority acks at the new regime (own looped-back broadcast plus
    // r2's) commit the repaired suffix; the no-op advances execution
    // without reaching the state machine.
    p.on_message(r(1), acked(ballot, 2), &mut ctx);
    p.on_message(r(2), acked(ballot, 2), &mut ctx);
    assert_eq!(p.executed(), 2, "noop + inherited command executed");
    assert_eq!(ctx.commits.len(), 1, "the noop never reaches the app");
    assert_eq!(ctx.commits[0].order_hint, 1);
    assert_eq!(ctx.commits[0].cmd.id.seq, 42);
    // The data plane resumes above the repaired suffix.
    p.on_client_request(cmd(7), &mut ctx);
    let new_accepts: Vec<(Ballot, u64)> = ctx
        .sends
        .iter()
        .filter_map(|(_, m)| match m {
            PaxosMsg::Accept {
                ballot,
                first_instance,
                ..
            } => Some((*ballot, *first_instance)),
            _ => None,
        })
        .collect();
    assert!(new_accepts.contains(&(ballot, 2)), "{new_accepts:?}");
}

#[test]
fn repair_supersedes_stale_acceptances_and_drops_the_uncommitted_tail() {
    let mut p = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    // Old-regime acceptances at instances 0 and 3 (1 and 2 lost).
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1)], r(0)), &mut ctx);
    p.on_message(r(0), accept(b0(), 3, vec![cmd(4)], r(0)), &mut ctx);
    // The new leader's repair chose a different value for 0 and proved
    // 1 unchosen; everything above its top (instance 2+) was never
    // merged, so the stale acceptance at 3 is dropped.
    let ballot = b(1, 1);
    p.on_message(
        r(1),
        PaxosMsg::Repair {
            ballot,
            floor: 0,
            entries: vec![
                SuffixEntry {
                    instance: 0,
                    ballot,
                    value: Some((cmd(10), r(1))),
                },
                SuffixEntry {
                    instance: 1,
                    ballot,
                    value: None,
                },
            ],
        },
        &mut ctx,
    );
    assert_eq!(p.regime(), ballot);
    assert_eq!(last_ack(&ctx), Some(2), "vouch covers exactly the repair");
    // A later prepare (after the new regime's lease lapses) sees the
    // repaired suffix only.
    ctx.clock += lease().timeout_us + 1;
    p.on_message(
        r(0),
        PaxosMsg::Prepare {
            ballot: b(2, 0),
            from_instance: 0,
        },
        &mut ctx,
    );
    let PaxosMsg::Promise { entries, .. } = ctx
        .sends
        .iter()
        .rev()
        .find_map(|(_, m)| match m {
            PaxosMsg::Promise { .. } => Some(m.clone()),
            _ => None,
        })
        .unwrap()
    else {
        unreachable!()
    };
    let reported: Vec<u64> = entries.iter().map(|e| e.instance).collect();
    assert_eq!(reported, vec![0, 1], "stale instance 3 must be dropped");
    assert!(entries.iter().all(|e| e.ballot == ballot));
    assert_eq!(entries[0].value.as_ref().unwrap().0.id.seq, 10);
}

#[test]
fn deposed_leader_steps_down_on_nack_and_forwards() {
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    p.on_client_request(cmd(1), &mut ctx);
    assert!(p.is_leader());
    p.on_message(r(2), PaxosMsg::Nack { promised: b(3, 1) }, &mut ctx);
    assert!(!p.is_leader(), "a higher promise deposes the leader");
    // Subsequent client traffic flows toward the fencing candidate.
    p.on_client_request(cmd(2), &mut ctx);
    let (to, last) = ctx.sends.last().unwrap();
    assert_eq!(*to, r(1));
    assert!(matches!(last, PaxosMsg::Forward { .. }));
    // And the step-down is durable: recovery must not resurrect the
    // old regime's proposer role at the stale ballot.
    let mut p2 = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx2 = TestCtx::new();
    p2.on_recover(&ctx.log, &mut ctx2);
    assert_eq!(p2.promised(), b(3, 1));
    assert!(!p2.is_leader());
}

#[test]
fn dueling_candidate_defers_to_a_higher_ballot() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock = 600_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    assert!(p.is_campaigning());
    // A competing candidacy at a higher ballot solicits us: grant it
    // and stand down.
    p.on_message(
        r(2),
        PaxosMsg::Prepare {
            ballot: b(2, 2),
            from_instance: 0,
        },
        &mut ctx,
    );
    assert!(!p.is_campaigning(), "outbid candidacy must stand down");
    assert_eq!(p.promised(), b(2, 2));
    assert!(
        ctx.sends
            .iter()
            .any(|(to, m)| *to == r(2) && matches!(m, PaxosMsg::Promise { .. })),
        "the higher candidacy still gets our promise"
    );
}

#[test]
fn candidacy_round_is_durable_before_the_prepare_leaves() {
    // A crash mid-candidacy must never let recovery reuse the same
    // ballot: peers may have promised it, and a second campaign at an
    // identical ballot could count stale first-campaign promises. The
    // round is logged synchronously in start_election (the same crash
    // window propose() closes), not via the async self-sent Prepare.
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock = 600_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    assert!(
        ctx.log
            .iter()
            .any(|rec| matches!(rec, PaxosLogRec::Promised(pb) if *pb == b(1, 1))),
        "candidacy ballot must be durable before the broadcast: {:?}",
        ctx.log
    );
    // Crash before any self-delivery; the recovered replica's next
    // candidacy outbids its own lost one.
    let mut p2 = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx2 = TestCtx::new();
    p2.on_recover(&ctx.log, &mut ctx2);
    p2.on_start(&mut ctx2);
    ctx2.clock = 600_000;
    p2.on_timer(TOKEN_LEASE, &mut ctx2);
    assert_eq!(
        prepares(&ctx2),
        vec![b(2, 1); 3],
        "round 1 must not be reused"
    );
}

#[test]
fn candidate_retries_at_a_higher_round() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock = 600_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    // A nack tells us round 4 exists somewhere; the retry outbids it.
    p.on_message(r(2), PaxosMsg::Nack { promised: b(4, 2) }, &mut ctx);
    assert!(!p.is_campaigning(), "outbid candidacy stands down");
    ctx.clock = 900_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    let rounds: Vec<u64> = prepares(&ctx).iter().map(|b| b.round).collect();
    assert_eq!(rounds, vec![1, 1, 1, 5, 5, 5], "retry outbids round 4");
}

#[test]
fn acks_from_an_older_regime_are_never_counted() {
    // The new leader must not commit on vouches earned under the old
    // one: the sender's prefix may hold superseded values.
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1)], r(0)), &mut ctx);
    // Election: r1 wins at (1, r1) with an empty merge except r2's
    // report of instance 0.
    ctx.clock = 600_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    let ballot = b(1, 1);
    p.on_message(
        r(1),
        PaxosMsg::Prepare {
            ballot,
            from_instance: 0,
        },
        &mut ctx,
    );
    let own_promise = ctx
        .sends
        .iter()
        .rev()
        .find_map(|(_, m)| match m {
            PaxosMsg::Promise { .. } => Some(m.clone()),
            _ => None,
        })
        .unwrap();
    p.on_message(r(1), own_promise, &mut ctx);
    p.on_message(
        r(2),
        PaxosMsg::Promise {
            ballot,
            from_instance: 0,
            committed: 0,
            entries: vec![],
        },
        &mut ctx,
    );
    assert!(p.is_leader());
    // Old-regime acks arrive late: ignored, nothing commits.
    p.on_message(r(0), acked(b0(), 1), &mut ctx);
    p.on_message(r(2), acked(b0(), 1), &mut ctx);
    assert!(ctx.commits.is_empty(), "old-regime acks must not commit");
    // Current-regime acks (own looped-back one plus r2's) do.
    p.on_message(r(1), acked(ballot, 1), &mut ctx);
    p.on_message(r(2), acked(ballot, 1), &mut ctx);
    assert_eq!(p.executed(), 1);
}

#[test]
fn compaction_preserves_the_promise_across_recovery() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_checkpoints(CheckpointPolicy::every(2).with_compaction(true))
        .with_failover(lease());
    let mut ctx = TestCtx::with_snapshots();
    p.on_start(&mut ctx);
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1), cmd(2)], r(0)), &mut ctx);
    // Promise a candidate (once the lease lapses — leader stickiness),
    // then let the checkpoint compact the log.
    ctx.clock += lease().timeout_us + 1;
    p.on_message(
        r(2),
        PaxosMsg::Prepare {
            ballot: b(5, 2),
            from_instance: 0,
        },
        &mut ctx,
    );
    p.on_message(r(0), acked(b0(), 2), &mut ctx);
    p.on_message(r(2), acked(b0(), 2), &mut ctx);
    assert!(
        ctx.log
            .iter()
            .any(|rec| matches!(rec, PaxosLogRec::Promised(pb) if *pb == b(5, 2))),
        "compaction must preserve the promise: {:?}",
        ctx.log
    );
    // Recovery restores it, and the deposed regime stays fenced.
    let mut p2 = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx2 = TestCtx::with_snapshots();
    p2.on_recover(&ctx.log, &mut ctx2);
    assert_eq!(p2.promised(), b(5, 2));
    p2.on_message(r(0), accept(b0(), 2, vec![cmd(3)], r(0)), &mut ctx2);
    assert!(
        ctx2.sends
            .iter()
            .any(|(to, m)| *to == r(0) && matches!(m, PaxosMsg::Nack { .. })),
        "a recovered acceptor must not regress its promise"
    );
}

#[test]
fn recovered_suffix_is_not_executed_under_a_newer_regime_until_revalidated() {
    // r1 logged an uncommitted acceptance, crashed, and an election it
    // slept through may have superseded the value. Commit evidence from
    // the *new* regime must not execute the stale slot; the repair's
    // re-proposal (or a checkpoint install) is what re-validates it.
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    let log = vec![PaxosLogRec::Accept {
        instance: 0,
        ballot: b0(),
        cmd: cmd(1),
        origin: r(0),
    }];
    p.on_recover(&log, &mut ctx);
    p.on_start(&mut ctx);
    let ballot = b(2, 2);
    p.on_message(r(2), PaxosMsg::Commit { ballot, up_to: 1 }, &mut ctx);
    assert!(
        ctx.commits.is_empty(),
        "a suspect slot must not execute under a newer regime"
    );
    // The new leader's repair re-proposes the (here: same) value at its
    // ballot — now it is trusted and executes.
    p.on_message(
        r(2),
        PaxosMsg::Repair {
            ballot,
            floor: 0,
            entries: vec![SuffixEntry {
                instance: 0,
                ballot,
                value: Some((cmd(1), r(0))),
            }],
        },
        &mut ctx,
    );
    assert_eq!(ctx.commits.len(), 1);
    assert_eq!(ctx.commits[0].cmd.id.seq, 1);
}

#[test]
fn recovered_suffix_still_executes_under_its_own_regime() {
    // The same recovery without any election: commit evidence at the
    // slot's own ballot proves the value committed as-is (a regime's
    // leader has one value per instance), so the replay-era gap rule
    // keeps working with fail-over enabled.
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    let log = vec![PaxosLogRec::Accept {
        instance: 0,
        ballot: b0(),
        cmd: cmd(1),
        origin: r(0),
    }];
    p.on_recover(&log, &mut ctx);
    p.on_start(&mut ctx);
    p.on_message(
        r(0),
        PaxosMsg::Commit {
            ballot: b0(),
            up_to: 1,
        },
        &mut ctx,
    );
    assert_eq!(ctx.commits.len(), 1, "own-regime commit evidence executes");
}

#[test]
fn vouch_gap_requests_leader_fill_and_resumes_acking() {
    // r1 recovered while the leader proposed [0,3) without a majority:
    // nothing there is committed, so the committed-gap jump never fires
    // and, before leader retransmission existed, the cluster deadlocked
    // (no survivor could ever vouch across the hole).
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    p.on_recover(&[], &mut ctx);
    p.on_message(r(0), accept(b0(), 3, vec![cmd(4)], r(0)), &mut ctx);
    let fills: Vec<(ReplicaId, u64, u64)> = ctx
        .sends
        .iter()
        .filter_map(|(to, m)| match m {
            PaxosMsg::FillRequest {
                from_instance,
                to_instance,
            } => Some((*to, *from_instance, *to_instance)),
            _ => None,
        })
        .collect();
    assert_eq!(fills, vec![(r(0), 0, 3)], "gap must ask the leader");
    // A second run over the same gap inside the pacing window must not
    // storm another request.
    p.on_message(r(0), accept(b0(), 4, vec![cmd(5)], r(0)), &mut ctx);
    assert_eq!(
        ctx.sends
            .iter()
            .filter(|(_, m)| matches!(m, PaxosMsg::FillRequest { .. }))
            .count(),
        1
    );
    // The leader's retransmission closes the gap; the cumulative ack
    // jumps over everything logged contiguously.
    let entries: Vec<SuffixEntry> = (0..3)
        .map(|i| SuffixEntry {
            instance: i,
            ballot: b0(),
            value: Some((cmd(i + 1), r(0))),
        })
        .collect();
    p.on_message(
        r(0),
        PaxosMsg::Fill {
            ballot: b0(),
            entries,
        },
        &mut ctx,
    );
    assert_eq!(last_ack(&ctx), Some(5), "fill must close the vouch gap");
    // And the whole range commits once a majority vouches.
    p.on_message(r(0), acked(b0(), 5), &mut ctx);
    p.on_message(r(2), acked(b0(), 5), &mut ctx);
    assert_eq!(p.executed(), 5);
}

#[test]
fn leader_serves_fill_from_pending_instances() {
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    p.on_client_batch(Batch::new(vec![cmd(1), cmd(2), cmd(3), cmd(4)]), &mut ctx);
    ctx.sends.clear();
    p.on_message(
        r(2),
        PaxosMsg::FillRequest {
            from_instance: 1,
            to_instance: 3,
        },
        &mut ctx,
    );
    let (to, fill) = ctx.sends.last().cloned().expect("leader must answer");
    assert_eq!(to, r(2));
    let PaxosMsg::Fill { ballot, entries } = fill else {
        panic!("expected a Fill, got {fill:?}");
    };
    assert_eq!(ballot, b0());
    let instances: Vec<u64> = entries.iter().map(|e| e.instance).collect();
    assert_eq!(instances, vec![1, 2], "exactly the requested pending range");
    // A deposed leader must not serve fills: its values may be
    // superseded by a repair it has not seen.
    p.on_message(r(1), PaxosMsg::Nack { promised: b(2, 1) }, &mut ctx);
    ctx.sends.clear();
    p.on_message(
        r(2),
        PaxosMsg::FillRequest {
            from_instance: 1,
            to_instance: 3,
        },
        &mut ctx,
    );
    assert!(ctx.sends.is_empty(), "deposed leader must stay silent");
}

#[test]
fn client_batches_buffered_during_candidacy_are_proposed_on_victory() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock = 600_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    p.on_client_request(cmd(9), &mut ctx);
    assert!(
        !ctx.sends
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Forward { .. } | PaxosMsg::Accept { .. })),
        "mid-candidacy batches are held"
    );
    let ballot = b(1, 1);
    p.on_message(
        r(1),
        PaxosMsg::Prepare {
            ballot,
            from_instance: 0,
        },
        &mut ctx,
    );
    let own_promise = ctx
        .sends
        .iter()
        .rev()
        .find_map(|(_, m)| match m {
            PaxosMsg::Promise { .. } => Some(m.clone()),
            _ => None,
        })
        .unwrap();
    p.on_message(r(1), own_promise, &mut ctx);
    p.on_message(
        r(2),
        PaxosMsg::Promise {
            ballot,
            from_instance: 0,
            committed: 0,
            entries: vec![],
        },
        &mut ctx,
    );
    assert!(p.is_leader());
    let proposed: Vec<u64> = ctx
        .sends
        .iter()
        .filter_map(|(_, m)| match m {
            PaxosMsg::Accept { cmds, .. } => Some(cmds.iter().next().unwrap().id.seq),
            _ => None,
        })
        .collect();
    assert!(
        proposed.contains(&9),
        "buffered batch must be proposed on victory: {proposed:?}"
    );
}

// ----------------------------------------------------------------------
// Local reads: leader lease fast path and quorum-mark fallback
// ----------------------------------------------------------------------

fn read(seq: u64) -> Command {
    Command::read(
        CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
        Bytes::from_static(b"get"),
    )
}

/// Drives one command through commit on a 3-replica bcast leader.
fn commit_one_at_leader(p: &mut MultiPaxos, ctx: &mut TestCtx, seq: u64) {
    let next = p.executed();
    p.on_client_batch(Batch::new(vec![cmd(seq)]), ctx);
    p.on_message(r(1), acked(p.regime(), next + 1), ctx);
    p.on_message(r(2), acked(p.regime(), next + 1), ctx);
    assert_eq!(p.executed(), next + 1, "setup: command must commit");
}

#[test]
fn fixed_leader_serves_reads_locally_without_wire_traffic() {
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    commit_one_at_leader(&mut p, &mut ctx, 1);
    ctx.sends.clear();
    p.on_client_read(read(7), &mut ctx);
    assert_eq!(
        ctx.read_replies.len(),
        1,
        "fixed leader: immediate local read"
    );
    assert_eq!(ctx.read_replies[0].id.seq, 7);
    assert!(
        ctx.sends.is_empty(),
        "a leader-local read must not touch the wire: {:?}",
        ctx.sends
    );
    assert_eq!(p.pending_reads(), 0);
}

#[test]
fn bcast_leader_read_waits_out_its_proposed_tail() {
    // In bcast Paxos a follower can observe commitment — and reply to
    // its client — before the leader's own watermark advances, so the
    // leader's read index is its log top: a read behind an uncommitted
    // proposal waits for that proposal to commit and execute.
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    commit_one_at_leader(&mut p, &mut ctx, 1);
    // Propose another command; not yet acked by a majority.
    p.on_client_batch(Batch::new(vec![cmd(2)]), &mut ctx);
    p.on_client_read(read(9), &mut ctx);
    assert!(
        ctx.read_replies.is_empty(),
        "bcast leader must not serve below its proposed tail"
    );
    p.on_message(r(1), acked(b0(), 2), &mut ctx);
    p.on_message(r(2), acked(b0(), 2), &mut ctx);
    assert_eq!(p.executed(), 2);
    assert_eq!(
        ctx.read_replies.len(),
        1,
        "read released once the tail committed"
    );
}

#[test]
fn plain_leader_read_serves_at_the_commit_watermark_despite_a_tail() {
    // In plain Paxos only the leader counts 2b: nothing can be client-
    // visible above its commit watermark, so an uncommitted tail does
    // not delay leader reads.
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Plain);
    let mut ctx = TestCtx::new();
    p.on_client_batch(Batch::new(vec![cmd(1)]), &mut ctx);
    p.on_message(r(0), acked(b0(), 1), &mut ctx); // looped-back self ack
    p.on_message(r(1), acked(b0(), 1), &mut ctx);
    assert_eq!(p.executed(), 1, "setup: first command committed");
    // A second proposal with no majority yet.
    p.on_client_batch(Batch::new(vec![cmd(2)]), &mut ctx);
    p.on_client_read(read(9), &mut ctx);
    assert_eq!(
        ctx.read_replies.len(),
        1,
        "plain leader reads at its commit watermark, tail notwithstanding"
    );
}

#[test]
fn failover_leader_without_regime_evidence_probes_instead_of_serving() {
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    // No Accepted/ReadMark at our regime has arrived: the read lease is
    // unearned and the leader must nack its own fast path.
    p.on_client_read(read(1), &mut ctx);
    assert!(ctx.read_replies.is_empty());
    let probes = ctx
        .sends
        .iter()
        .filter(|(_, m)| matches!(m, PaxosMsg::ReadProbe(_)))
        .count();
    assert_eq!(probes, 2, "lease-uncertain leader falls back to a probe");
    assert_eq!(p.pending_reads(), 1);
}

#[test]
fn failover_leader_with_fresh_majority_evidence_reads_locally() {
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    commit_one_at_leader(&mut p, &mut ctx, 1);
    // The two Accepted messages above are regime evidence from r1 and
    // r2, well within timeout/2 of the current clock.
    ctx.sends.clear();
    p.on_client_read(read(5), &mut ctx);
    assert_eq!(ctx.read_replies.len(), 1, "leased leader reads locally");
    assert!(ctx.sends.is_empty());
    // Let the lease age past timeout/2: the fast path must close again.
    ctx.clock += lease().timeout_us;
    p.on_client_read(read(6), &mut ctx);
    assert_eq!(ctx.read_replies.len(), 1, "stale lease: no local serve");
    assert!(ctx
        .sends
        .iter()
        .any(|(_, m)| matches!(m, PaxosMsg::ReadProbe(_))));
}

#[test]
fn follower_quorum_read_parks_on_the_max_mark_until_executed() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    // The follower logs instance 0 (not yet known committed).
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1)], r(0)), &mut ctx);
    ctx.sends.clear();
    p.on_client_read(read(3), &mut ctx);
    assert!(ctx.read_replies.is_empty(), "follower never serves eagerly");
    assert_eq!(
        ctx.sends
            .iter()
            .filter(|(_, m)| matches!(m, PaxosMsg::ReadProbe(_)))
            .count(),
        2,
        "probe goes to both peers"
    );
    // One peer answers: with self that is a majority of 3. Its mark (1)
    // matches our own log top, so the read parks at instance mark 1.
    p.on_message(
        r(0),
        PaxosMsg::ReadMark(ReadReply { seq: 1, mark: 1 }),
        &mut ctx,
    );
    assert_eq!(p.pending_reads(), 1, "parked: instance 0 not yet executed");
    assert!(ctx.read_replies.is_empty());
    // Majority acks arrive, instance 0 executes, the read releases.
    p.on_message(r(0), acked(b0(), 1), &mut ctx);
    p.on_message(r(2), acked(b0(), 1), &mut ctx);
    assert_eq!(p.executed(), 1);
    assert_eq!(ctx.read_replies.len(), 1);
    assert_eq!(p.pending_reads(), 0);
}

#[test]
fn any_replica_answers_read_probes_with_its_log_top() {
    let mut p = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1), cmd(2)], r(0)), &mut ctx);
    ctx.sends.clear();
    p.on_message(r(1), PaxosMsg::ReadProbe(ReadRequest { seq: 42 }), &mut ctx);
    match &ctx.sends[..] {
        [(to, PaxosMsg::ReadMark(reply))] => {
            assert_eq!(*to, r(1));
            assert_eq!(reply.seq, 42);
            assert_eq!(reply.mark, 2, "mark covers the whole accepted log");
        }
        other => panic!("expected one ReadMark, got {other:?}"),
    }
}

#[test]
fn read_falls_back_to_replication_without_sm_access() {
    let mut p = MultiPaxos::new(r(0), Membership::uniform(3), r(0), PaxosVariant::Bcast);
    let mut ctx = TestCtx::new();
    ctx.serve_reads = false;
    p.on_client_read(read(4), &mut ctx);
    assert!(ctx.read_replies.is_empty());
    assert!(
        ctx.sends
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Accept { .. })),
        "unserveable read must be replicated as an ordinary command"
    );
}

#[test]
fn new_leader_reads_wait_out_the_repaired_suffix() {
    // r1 wins an election inheriting an instance that may already have
    // committed — and replied — under the old regime. Its local reads
    // must not be served below the repaired suffix top.
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    ctx.clock = 1_000_000;
    p.on_timer(TOKEN_LEASE, &mut ctx); // lease expired at start: campaign
    assert!(p.is_campaigning());
    let ballot = p.promised();
    // Loop back the self-addressed Prepare, then the resulting Promise.
    let own_prepare = ctx
        .sends
        .iter()
        .find_map(|(to, m)| match m {
            PaxosMsg::Prepare { .. } if *to == r(1) => Some(m.clone()),
            _ => None,
        })
        .expect("self prepare");
    p.on_message(r(1), own_prepare, &mut ctx);
    let own_promise = ctx
        .sends
        .iter()
        .rev()
        .find_map(|(to, m)| match m {
            PaxosMsg::Promise { .. } if *to == r(1) => Some(m.clone()),
            _ => None,
        })
        .expect("self promise");
    p.on_message(r(1), own_promise, &mut ctx);
    p.on_message(
        r(2),
        PaxosMsg::Promise {
            ballot,
            from_instance: 0,
            committed: 0,
            entries: vec![SuffixEntry {
                instance: 0,
                ballot: b0(),
                value: Some((cmd(1), r(0))),
            }],
        },
        &mut ctx,
    );
    assert!(p.is_leader());
    // Both peers acked the repair run at the new ballot: the leader's
    // read lease is fresh. A read now must still wait for the inherited
    // instance to commit and execute.
    p.on_message(r(2), acked(ballot, 1), &mut ctx);
    p.on_message(r(0), acked(ballot, 0), &mut ctx);
    let executed_before = p.executed();
    if executed_before == 0 {
        p.on_client_read(read(8), &mut ctx);
        assert!(
            ctx.read_replies.is_empty(),
            "read served below the repaired suffix top"
        );
    }
    // Our own vouch (r0's ack was 0, r2 acked 1; our logged_next is 1)
    // plus r2 commits instance 0; the read releases.
    p.on_message(r(0), acked(ballot, 1), &mut ctx);
    assert_eq!(p.executed(), 1);
    p.on_client_read(read(9), &mut ctx);
    assert!(!ctx.read_replies.is_empty());
}

#[test]
fn fresh_lease_acceptor_refuses_to_promise_a_new_ballot() {
    // Leader stickiness: a follower that heard its leader within the
    // suspicion timeout must not grant promises — otherwise one
    // isolated replica could depose a healthy leader through fresh
    // followers and race the leader's read lease.
    let mut p = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    // Current-regime leader traffic renews the lease.
    p.on_message(r(0), accept(b0(), 0, vec![cmd(1)], r(0)), &mut ctx);
    ctx.sends.clear();
    p.on_message(
        r(1),
        PaxosMsg::Prepare {
            ballot: b(1, 1),
            from_instance: 0,
        },
        &mut ctx,
    );
    assert!(
        !ctx.sends
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Promise { .. })),
        "fresh-leased acceptor granted a promise: {:?}",
        ctx.sends
    );
    // Once the lease expires, the same Prepare is granted.
    ctx.clock += lease().timeout_us + 1;
    p.on_message(
        r(1),
        PaxosMsg::Prepare {
            ballot: b(1, 1),
            from_instance: 0,
        },
        &mut ctx,
    );
    assert!(
        ctx.sends
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Promise { .. })),
        "expired-lease acceptor must grant"
    );
}

#[test]
fn heartbeat_draws_a_cumulative_ack_as_lease_evidence() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    p.on_message(
        r(0),
        PaxosMsg::Heartbeat {
            ballot: b0(),
            committed: 0,
        },
        &mut ctx,
    );
    let acks: Vec<_> = ctx
        .sends
        .iter()
        .filter(|(to, m)| *to == r(0) && matches!(m, PaxosMsg::Accepted { .. }))
        .collect();
    assert_eq!(acks.len(), 1, "heartbeat must be acked to the leader");
}

// ----------------------------------------------------------------------
// Pre-vote (opt-in): probe electability before burning a ballot
// ----------------------------------------------------------------------

fn prevote_lease() -> LeaseConfig {
    lease().with_pre_vote()
}

fn prevotes(ctx: &TestCtx) -> Vec<Ballot> {
    ctx.sends
        .iter()
        .filter_map(|(_, m)| match m {
            PaxosMsg::PreVote { ballot } => Some(*ballot),
            _ => None,
        })
        .collect()
}

#[test]
fn prevote_expiry_probes_instead_of_preparing() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(prevote_lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock = 600_000; // past the staggered timeout for index 1
    p.on_timer(TOKEN_LEASE, &mut ctx);
    // A probe at the prospective round goes to everyone, self included —
    // but no Prepare, no durable promise, no round burned.
    assert_eq!(prevotes(&ctx), vec![b(1, 1); 3]);
    assert!(prepares(&ctx).is_empty(), "probe must precede any Prepare");
    assert!(p.is_pre_voting() && !p.is_campaigning());
    assert_eq!(p.promised(), b0(), "a probe must not move the promise");
    assert_eq!(p.max_round_seen, 0, "a probe must not burn a round");
    assert!(
        !ctx.log
            .iter()
            .any(|rec| matches!(rec, PaxosLogRec::Promised(_))),
        "a probe must not write the durable log"
    );
}

#[test]
fn prevote_answer_is_pure() {
    // A peer whose lease on the leader is fresh refuses the probe
    // silently; one whose lease lapsed grants it. Neither answer
    // mutates anything — promise, lease, log, or round counter.
    let mut p = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(prevote_lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    p.on_message(r(1), PaxosMsg::PreVote { ballot: b(1, 1) }, &mut ctx);
    assert!(
        ctx.sends.is_empty(),
        "fresh-lease peer must refuse the probe silently"
    );
    ctx.clock += lease().timeout_us + 1;
    p.on_message(r(1), PaxosMsg::PreVote { ballot: b(1, 1) }, &mut ctx);
    assert_eq!(
        ctx.sends,
        vec![(r(1), PaxosMsg::PreVoteGrant { ballot: b(1, 1) })]
    );
    assert_eq!(p.promised(), b0(), "granting a probe is not promising");
    assert_eq!(p.max_round_seen, 0);
    assert!(ctx.log.is_empty(), "granting a probe must not log");
    // The grant did not renew the grantor's lease either: unlike a real
    // promise there is no election window to protect, so its own (pre-)
    // candidacy timing is untouched. A real Prepare at the same ballot
    // is still granted afterwards.
    p.on_message(
        r(1),
        PaxosMsg::Prepare {
            ballot: b(1, 1),
            from_instance: 0,
        },
        &mut ctx,
    );
    assert!(ctx
        .sends
        .iter()
        .any(|(_, m)| matches!(m, PaxosMsg::Promise { .. })));
}

#[test]
fn stale_prevote_draws_a_nack() {
    let mut p = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(prevote_lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock += lease().timeout_us + 1;
    p.on_message(
        r(1),
        PaxosMsg::Prepare {
            ballot: b(3, 1),
            from_instance: 0,
        },
        &mut ctx,
    );
    assert_eq!(p.promised(), b(3, 1));
    ctx.sends.clear();
    // A probe below the promise teaches the prober the round to beat.
    p.on_message(r(0), PaxosMsg::PreVote { ballot: b(1, 0) }, &mut ctx);
    assert_eq!(
        ctx.sends,
        vec![(r(0), PaxosMsg::Nack { promised: b(3, 1) })]
    );
}

#[test]
fn prevote_majority_escalates_to_a_real_election() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(prevote_lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock = 600_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    assert_eq!(prevotes(&ctx), vec![b(1, 1); 3]);
    // Self-addressed probe loops back (own lease expired → grant)...
    p.on_message(r(1), PaxosMsg::PreVote { ballot: b(1, 1) }, &mut ctx);
    p.on_message(r(1), PaxosMsg::PreVoteGrant { ballot: b(1, 1) }, &mut ctx);
    assert!(p.is_pre_voting(), "one grant is not a majority");
    assert!(prepares(&ctx).is_empty());
    // ...and a second grant makes the majority: the real election starts,
    // burning the round only now.
    p.on_message(r(2), PaxosMsg::PreVoteGrant { ballot: b(1, 1) }, &mut ctx);
    assert!(!p.is_pre_voting() && p.is_campaigning());
    assert_eq!(prepares(&ctx), vec![b(1, 1); 3]);
    assert_eq!(p.promised(), b(1, 1), "the election is durably promised");
}

#[test]
fn duplicate_grants_do_not_make_a_majority() {
    let mut p = MultiPaxos::new(r(1), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(prevote_lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock = 600_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    p.on_message(r(2), PaxosMsg::PreVoteGrant { ballot: b(1, 1) }, &mut ctx);
    p.on_message(r(2), PaxosMsg::PreVoteGrant { ballot: b(1, 1) }, &mut ctx);
    assert!(p.is_pre_voting(), "a re-delivered grant counts once");
    assert!(prepares(&ctx).is_empty());
}

#[test]
fn isolated_prevoter_burns_no_ballots_and_rejoins_quietly() {
    // The disruption scenario pre-vote exists for: a replica cut off
    // behind a partition suspects the leader and campaigns into the
    // void. With classic elections every retry durably self-promises a
    // higher round, so on heal its inflated promise Nacks the healthy
    // leader's traffic and deposes it. With pre-vote the castaway only
    // ever probes: heal finds it exactly where it left — same promise,
    // same regime — and the leader's next heartbeat is acked, not
    // Nacked.
    let mut p = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(prevote_lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    // Partitioned: many retry periods pass, every probe unanswered.
    for tick in 1..=20u64 {
        ctx.clock = 600_000 + tick * lease().election_retry_us;
        p.on_timer(TOKEN_LEASE, &mut ctx);
    }
    assert!(prevotes(&ctx).len() >= 3, "castaway must keep re-probing");
    assert!(prepares(&ctx).is_empty(), "castaway must never Prepare");
    assert_eq!(p.promised(), b0(), "no self-promise accumulated");
    assert_eq!(p.max_round_seen, 0, "no rounds burned while isolated");
    // Heal: the leader's heartbeat arrives. No Nack — the castaway is
    // still a clean follower of the original regime.
    ctx.sends.clear();
    p.on_message(
        r(0),
        PaxosMsg::Heartbeat {
            ballot: b0(),
            committed: 0,
        },
        &mut ctx,
    );
    assert!(
        !ctx.sends
            .iter()
            .any(|(_, m)| matches!(m, PaxosMsg::Nack { .. })),
        "healed castaway must not depose the leader"
    );
    assert!(
        ctx.sends
            .iter()
            .any(|(to, m)| *to == r(0) && matches!(m, PaxosMsg::Accepted { .. })),
        "heartbeat must be acked as usual"
    );
    // The heartbeat renewed its lease; the next tick stands the probe
    // down instead of escalating.
    ctx.clock += 1_000;
    p.on_timer(TOKEN_LEASE, &mut ctx);
    assert!(!p.is_pre_voting() && !p.is_campaigning());
}

#[test]
fn prevote_stands_down_when_outbid_by_a_real_candidacy() {
    let mut p = MultiPaxos::new(r(2), Membership::uniform(3), r(0), PaxosVariant::Bcast)
        .with_failover(prevote_lease());
    let mut ctx = TestCtx::new();
    p.on_start(&mut ctx);
    ctx.clock = 800_000; // past the index-2 stagger
    p.on_timer(TOKEN_LEASE, &mut ctx);
    assert!(p.is_pre_voting());
    // A real candidate at a higher ballot solicits us: grant and defer.
    p.on_message(
        r(1),
        PaxosMsg::Prepare {
            ballot: b(2, 1),
            from_instance: 0,
        },
        &mut ctx,
    );
    assert!(!p.is_pre_voting(), "a real candidacy trumps our probe");
    assert_eq!(p.promised(), b(2, 1));
}
