//! Property tests for the single-decree synod: under random delivery
//! orders, message drops, competing proposers, and retries, at most one
//! value is ever decided (consensus safety), and with a live majority a
//! decision is reached (liveness given retries).

use paxos::{SynodInstance, SynodMsg};
use proptest::prelude::*;
use rsm_core::ReplicaId;

type Msg = (ReplicaId, ReplicaId, SynodMsg<u32>); // (from, to, payload)

struct Net {
    nodes: Vec<SynodInstance<u32>>,
    inflight: Vec<Msg>,
    decided: Vec<Option<u32>>,
}

impl Net {
    fn new(n: u16) -> Self {
        let spec: Vec<ReplicaId> = (0..n).map(ReplicaId::new).collect();
        Net {
            nodes: spec
                .iter()
                .map(|&r| SynodInstance::new(r, spec.clone()))
                .collect(),
            inflight: Vec::new(),
            decided: vec![None; n as usize],
        }
    }

    fn propose(&mut self, at: usize, value: u32) {
        let mut out = Vec::new();
        self.nodes[at].propose(value, &mut out);
        let from = ReplicaId::new(at as u16);
        self.inflight
            .extend(out.into_iter().map(|(to, m)| (from, to, m)));
    }

    fn retry(&mut self, at: usize) {
        let mut out = Vec::new();
        self.nodes[at].on_retry(&mut out);
        let from = ReplicaId::new(at as u16);
        self.inflight
            .extend(out.into_iter().map(|(to, m)| (from, to, m)));
    }

    /// Delivers (or drops) the in-flight message at `idx % len`.
    fn step(&mut self, idx: usize, drop: bool) {
        if self.inflight.is_empty() {
            return;
        }
        let (from, to, msg) = self.inflight.swap_remove(idx % self.inflight.len());
        if drop {
            return;
        }
        let mut out = Vec::new();
        if let Some(v) = self.nodes[to.index()].on_message(from, msg, &mut out) {
            self.decided[to.index()] = Some(v);
        }
        self.inflight
            .extend(out.into_iter().map(|(t, m)| (to, t, m)));
    }

    /// Delivers everything currently in flight, no drops.
    fn drain(&mut self) {
        while !self.inflight.is_empty() {
            self.step(0, false);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Safety: no two replicas ever decide different values, whatever the
    /// delivery order, drop pattern, proposer set, or retry schedule.
    #[test]
    fn at_most_one_value_decided(
        n in prop_oneof![Just(3u16), Just(5u16)],
        proposals in proptest::collection::vec((0usize..5, 1u32..100), 1..4),
        schedule in proptest::collection::vec((any::<usize>(), 0u8..10), 0..300),
        retries in proptest::collection::vec(0usize..5, 0..5),
    ) {
        let mut net = Net::new(n);
        for (at, v) in &proposals {
            net.propose(at % n as usize, *v);
        }
        let mut retries = retries.into_iter();
        for (idx, kind) in schedule {
            // ~20% drops, occasional retries interleaved.
            net.step(idx, kind < 2);
            if kind == 9 {
                if let Some(r) = retries.next() {
                    net.retry(r % n as usize);
                }
            }
        }
        // Whatever happened: all decided values (including acceptor state
        // learned later) must agree.
        let decided: Vec<u32> = net
            .nodes
            .iter()
            .filter_map(|node| node.decided().copied())
            .collect();
        prop_assert!(
            decided.windows(2).all(|w| w[0] == w[1]),
            "conflicting decisions: {decided:?}"
        );
        // And every decided value was actually proposed.
        if let Some(&v) = decided.first() {
            prop_assert!(proposals.iter().any(|(_, p)| *p == v));
        }
    }

    /// Liveness: with no drops and a retry pass, a single proposer always
    /// gets its value decided everywhere.
    #[test]
    fn lone_proposer_always_decides(
        n in prop_oneof![Just(3u16), Just(5u16)],
        at in 0usize..5,
        value in 1u32..1000,
    ) {
        let mut net = Net::new(n);
        let at = at % n as usize;
        net.propose(at, value);
        net.drain();
        for node in &net.nodes {
            prop_assert_eq!(node.decided(), Some(&value));
        }
    }

    /// Convergence after partial chaos: random drops during the run, then
    /// retries plus a clean drain must still reach agreement on one of
    /// the proposed values at every node.
    #[test]
    fn retries_recover_from_drops(
        drops in proptest::collection::vec((any::<usize>(), any::<bool>()), 0..80),
        v1 in 1u32..50,
        v2 in 50u32..100,
    ) {
        let mut net = Net::new(5);
        net.propose(0, v1);
        net.propose(4, v2);
        for (idx, drop) in drops {
            net.step(idx, drop);
        }
        // Recovery phase: every node still undecided proposes (an
        // undecided node can always propose; consensus safety makes it
        // *inherit* the chosen value rather than impose its own) and
        // everything drains without drops. The bare synod has no
        // anti-entropy — in the Clock-RSM embedding the decision catch-up
        // messages play that role.
        for _ in 0..20 {
            if net.nodes.iter().all(|n| n.decided().is_some()) {
                break;
            }
            for i in 0..5 {
                if net.nodes[i].decided().is_none() {
                    if net.nodes[i].is_proposing() {
                        net.retry(i);
                    } else {
                        net.propose(i, v1);
                    }
                }
            }
            net.drain();
        }
        let decided: Vec<u32> = net.nodes.iter().filter_map(|n| n.decided().copied()).collect();
        prop_assert_eq!(decided.len(), 5, "liveness: everyone decides");
        prop_assert!(decided.windows(2).all(|w| w[0] == w[1]), "{decided:?}");
        prop_assert!(decided[0] == v1 || decided[0] == v2);
    }
}
