//! Clock-RSM wire messages.

use bytes::BytesMut;
use paxos::synod::SynodMsg;
use rsm_core::batch::Batch;
use rsm_core::command::Command;
use rsm_core::config::Epoch;
use rsm_core::id::ReplicaId;
use rsm_core::time::Timestamp;
use rsm_core::wire::MSG_HEADER_BYTES;
use rsm_core::wire::{WireDecode, WireEncode, WireError, WireMsg, WireReader, WireSize};

/// A logged command as exchanged during reconfiguration and state
/// transfer: the `⟨cmd, ts⟩` pairs of Algorithm 3 plus the originating
/// replica (needed to route the reply and break timestamp ties).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedCmd {
    /// The command's unique timestamp.
    pub ts: Timestamp,
    /// The replica that originated the command.
    pub origin: ReplicaId,
    /// The command itself.
    pub cmd: Command,
}

impl WireSize for LoggedCmd {
    fn wire_size(&self) -> usize {
        16 + self.cmd.wire_size()
    }
}

impl WireEncode for LoggedCmd {
    fn encode(&self, buf: &mut BytesMut) {
        self.ts.encode(buf);
        self.origin.encode(buf);
        self.cmd.encode(buf);
    }
}

impl WireDecode for LoggedCmd {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(LoggedCmd {
            ts: Timestamp::decode(r)?,
            origin: ReplicaId::decode(r)?,
            cmd: Command::decode(r)?,
        })
    }
}

/// The value decided by the reconfiguration consensus for one epoch
/// (Algorithm 3, line 6): the next configuration, the reconfigurer's last
/// commit timestamp, and every command logged past it by a majority.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The configuration to install.
    pub config: Vec<ReplicaId>,
    /// The reconfigurer's last commit mark; commands at or below it are
    /// known committed system-wide.
    pub cts: Timestamp,
    /// Commands with timestamps greater than `cts` collected from a
    /// majority — everything that *could* have committed.
    pub cmds: Vec<LoggedCmd>,
}

impl WireSize for Decision {
    fn wire_size(&self) -> usize {
        16 + 2 * self.config.len() + self.cmds.iter().map(WireSize::wire_size).sum::<usize>()
    }
}

impl WireEncode for Decision {
    fn encode(&self, buf: &mut BytesMut) {
        self.config.encode(buf);
        self.cts.encode(buf);
        self.cmds.encode(buf);
    }
}

impl WireDecode for Decision {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Decision {
            config: Vec::<ReplicaId>::decode(r)?,
            cts: Timestamp::decode(r)?,
            cmds: Vec::<LoggedCmd>::decode(r)?,
        })
    }
}

/// Messages exchanged by Clock-RSM replicas.
///
/// `PrepareBatch`, `PrepareOk`, and `ClockTime` are the data plane
/// (Algorithms 1 and 2, generalized to whole-batch replication); the rest
/// implement reconfiguration, state transfer, and epoch catch-up
/// (Algorithm 3 and Section V-B).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsmMsg {
    /// Replication request for an ordered batch of client commands
    /// (Algorithm 1, line 3, generalized). The batch carries **one** head
    /// timestamp; command `i` implicitly has timestamp `ts + i` (same
    /// originating replica), so a batch of `k` commands occupies the
    /// contiguous timestamp run `[ts, ts + k)` and costs one message
    /// instead of `k`.
    PrepareBatch {
        /// Sender's current epoch.
        epoch: Epoch,
        /// Head timestamp assigned by the originating replica; the batch
        /// spans `ts .. ts + cmds.len()` in that replica's timestamp
        /// space.
        ts: Timestamp,
        /// The originating replica.
        origin: ReplicaId,
        /// The commands to replicate, in execution order.
        cmds: Batch,
    },
    /// Cumulative logging acknowledgement, broadcast to overlap commit
    /// steps (Algorithm 1, line 10, generalized).
    ///
    /// Acknowledges **every** `PREPARE` from the replica `up_to.replica()`
    /// with timestamp `≤ up_to` — sound because an originator emits its
    /// prepares in strictly increasing timestamp order over FIFO
    /// channels, so receiving a batch ending at `up_to` implies having
    /// logged everything before it. One ack therefore covers a whole
    /// batch (and subsumes any earlier ack for the same originator),
    /// collapsing the per-timestamp replication counters of the original
    /// algorithm into per-originator watermarks.
    PrepareOk {
        /// Sender's current epoch.
        epoch: Epoch,
        /// Watermark: all prepares from `up_to.replica()` with timestamps
        /// at or below this are logged at the sender.
        up_to: Timestamp,
        /// The acknowledging replica's clock at send time — its promise
        /// never to send a smaller timestamp afterwards.
        clock_ts: Timestamp,
    },
    /// Periodic clock broadcast (Algorithm 2); doubles as the failure
    /// detector heartbeat.
    ClockTime {
        /// Sender's current epoch.
        epoch: Epoch,
        /// The sender's latest clock reading.
        ts: Timestamp,
    },
    /// Freeze request starting a reconfiguration (Algorithm 3, line 4).
    Suspend {
        /// The epoch the reconfigurer is trying to establish.
        epoch: Epoch,
        /// The reconfigurer's last commit mark.
        cts: Timestamp,
    },
    /// Reply to [`Suspend`](RsmMsg::Suspend) carrying all logged commands
    /// with timestamps greater than the suspend's `cts` (line 10).
    SuspendOk {
        /// The epoch being acknowledged.
        epoch: Epoch,
        /// Logged commands beyond the reconfigurer's commit point.
        cmds: Vec<LoggedCmd>,
    },
    /// A consensus message for the given epoch's reconfiguration decision.
    Synod {
        /// The epoch this consensus instance decides.
        epoch: Epoch,
        /// The wrapped single-decree Paxos message.
        msg: SynodMsg<Decision>,
    },
    /// State transfer request (Algorithm 3, line 26): fetch commands in
    /// `(from_ts, to_ts]`.
    RetrieveCmds {
        /// Exclusive lower bound.
        from_ts: Timestamp,
        /// Inclusive upper bound.
        to_ts: Timestamp,
    },
    /// State transfer response (line 31).
    RetrieveReply {
        /// Echo of the request's lower bound.
        from_ts: Timestamp,
        /// Echo of the request's upper bound.
        to_ts: Timestamp,
        /// The logged commands in range.
        cmds: Vec<LoggedCmd>,
    },
    /// Request for reconfiguration decisions newer than `have_epoch`,
    /// sent by a replica that notices it lags behind.
    DecisionRequest {
        /// The requester's current epoch.
        have_epoch: Epoch,
    },
    /// Catch-up response: the decisions the requester is missing,
    /// in epoch order.
    DecisionCatchup {
        /// `(epoch, decision)` pairs, ascending.
        decisions: Vec<(Epoch, Decision)>,
    },
}

impl WireSize for RsmMsg {
    fn wire_size(&self) -> usize {
        match self {
            RsmMsg::PrepareBatch { cmds, .. } => MSG_HEADER_BYTES + cmds.wire_size(),
            RsmMsg::PrepareOk { .. } | RsmMsg::ClockTime { .. } => MSG_HEADER_BYTES,
            RsmMsg::Suspend { .. } | RsmMsg::DecisionRequest { .. } => MSG_HEADER_BYTES,
            RsmMsg::SuspendOk { cmds, .. } => {
                MSG_HEADER_BYTES + cmds.iter().map(WireSize::wire_size).sum::<usize>()
            }
            RsmMsg::Synod { msg, .. } => MSG_HEADER_BYTES + msg.wire_size(),
            RsmMsg::RetrieveCmds { .. } => MSG_HEADER_BYTES,
            RsmMsg::RetrieveReply { cmds, .. } => {
                MSG_HEADER_BYTES + cmds.iter().map(WireSize::wire_size).sum::<usize>()
            }
            RsmMsg::DecisionCatchup { decisions } => {
                MSG_HEADER_BYTES
                    + decisions
                        .iter()
                        .map(|(_, d)| 8 + d.wire_size())
                        .sum::<usize>()
            }
        }
    }
}

impl WireEncode for RsmMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            RsmMsg::PrepareBatch {
                epoch,
                ts,
                origin,
                cmds,
            } => {
                0u8.encode(buf);
                epoch.encode(buf);
                ts.encode(buf);
                origin.encode(buf);
                cmds.encode(buf);
            }
            RsmMsg::PrepareOk {
                epoch,
                up_to,
                clock_ts,
            } => {
                1u8.encode(buf);
                epoch.encode(buf);
                up_to.encode(buf);
                clock_ts.encode(buf);
            }
            RsmMsg::ClockTime { epoch, ts } => {
                2u8.encode(buf);
                epoch.encode(buf);
                ts.encode(buf);
            }
            RsmMsg::Suspend { epoch, cts } => {
                3u8.encode(buf);
                epoch.encode(buf);
                cts.encode(buf);
            }
            RsmMsg::SuspendOk { epoch, cmds } => {
                4u8.encode(buf);
                epoch.encode(buf);
                cmds.encode(buf);
            }
            RsmMsg::Synod { epoch, msg } => {
                5u8.encode(buf);
                epoch.encode(buf);
                msg.encode(buf);
            }
            RsmMsg::RetrieveCmds { from_ts, to_ts } => {
                6u8.encode(buf);
                from_ts.encode(buf);
                to_ts.encode(buf);
            }
            RsmMsg::RetrieveReply {
                from_ts,
                to_ts,
                cmds,
            } => {
                7u8.encode(buf);
                from_ts.encode(buf);
                to_ts.encode(buf);
                cmds.encode(buf);
            }
            RsmMsg::DecisionRequest { have_epoch } => {
                8u8.encode(buf);
                have_epoch.encode(buf);
            }
            RsmMsg::DecisionCatchup { decisions } => {
                9u8.encode(buf);
                decisions.encode(buf);
            }
        }
    }
}

impl WireDecode for RsmMsg {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => RsmMsg::PrepareBatch {
                epoch: Epoch::decode(r)?,
                ts: Timestamp::decode(r)?,
                origin: ReplicaId::decode(r)?,
                cmds: Batch::decode(r)?,
            },
            1 => RsmMsg::PrepareOk {
                epoch: Epoch::decode(r)?,
                up_to: Timestamp::decode(r)?,
                clock_ts: Timestamp::decode(r)?,
            },
            2 => RsmMsg::ClockTime {
                epoch: Epoch::decode(r)?,
                ts: Timestamp::decode(r)?,
            },
            3 => RsmMsg::Suspend {
                epoch: Epoch::decode(r)?,
                cts: Timestamp::decode(r)?,
            },
            4 => RsmMsg::SuspendOk {
                epoch: Epoch::decode(r)?,
                cmds: Vec::<LoggedCmd>::decode(r)?,
            },
            5 => RsmMsg::Synod {
                epoch: Epoch::decode(r)?,
                msg: SynodMsg::<Decision>::decode(r)?,
            },
            6 => RsmMsg::RetrieveCmds {
                from_ts: Timestamp::decode(r)?,
                to_ts: Timestamp::decode(r)?,
            },
            7 => RsmMsg::RetrieveReply {
                from_ts: Timestamp::decode(r)?,
                to_ts: Timestamp::decode(r)?,
                cmds: Vec::<LoggedCmd>::decode(r)?,
            },
            8 => RsmMsg::DecisionRequest {
                have_epoch: Epoch::decode(r)?,
            },
            9 => RsmMsg::DecisionCatchup {
                decisions: Vec::<(Epoch, Decision)>::decode(r)?,
            },
            tag => return Err(WireError::BadTag { ty: "RsmMsg", tag }),
        })
    }
}

impl WireMsg for RsmMsg {
    /// A [`PrepareBatch`](RsmMsg::PrepareBatch) broadcast clones one
    /// `Arc`'d [`Batch`] per peer; batch identity plus the scalar head
    /// fields decides byte-identity without touching command payloads.
    fn shares_encoding(&self, prev: &Self) -> bool {
        match (self, prev) {
            (
                RsmMsg::PrepareBatch {
                    epoch: e1,
                    ts: t1,
                    origin: o1,
                    cmds: c1,
                },
                RsmMsg::PrepareBatch {
                    epoch: e2,
                    ts: t2,
                    origin: o2,
                    cmds: c2,
                },
            ) => e1 == e2 && t1 == t2 && o1 == o2 && c1.ptr_eq(c2),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::CommandId;
    use rsm_core::id::ClientId;

    fn cmd(len: usize) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1),
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn prepare_carries_payload_weight() {
        let p = RsmMsg::PrepareBatch {
            epoch: Epoch::ZERO,
            ts: Timestamp::new(1, ReplicaId::new(0)),
            origin: ReplicaId::new(0),
            cmds: Batch::single(cmd(100)),
        };
        let ok = RsmMsg::PrepareOk {
            epoch: Epoch::ZERO,
            up_to: Timestamp::new(1, ReplicaId::new(0)),
            clock_ts: Timestamp::new(2, ReplicaId::new(1)),
        };
        assert!(p.wire_size() >= ok.wire_size() + 100);
    }

    #[test]
    fn batched_prepare_amortizes_the_header() {
        let batched = RsmMsg::PrepareBatch {
            epoch: Epoch::ZERO,
            ts: Timestamp::new(1, ReplicaId::new(0)),
            origin: ReplicaId::new(0),
            cmds: Batch::new((0..8).map(|_| cmd(10)).collect()),
        };
        let single = RsmMsg::PrepareBatch {
            epoch: Epoch::ZERO,
            ts: Timestamp::new(1, ReplicaId::new(0)),
            origin: ReplicaId::new(0),
            cmds: Batch::single(cmd(10)),
        };
        assert!(batched.wire_size() < 8 * single.wire_size());
    }

    #[test]
    fn decision_size_scales_with_commands() {
        let d0 = Decision {
            config: vec![ReplicaId::new(0)],
            cts: Timestamp::ZERO,
            cmds: vec![],
        };
        let d2 = Decision {
            config: vec![ReplicaId::new(0)],
            cts: Timestamp::ZERO,
            cmds: vec![
                LoggedCmd {
                    ts: Timestamp::ZERO,
                    origin: ReplicaId::new(0),
                    cmd: cmd(10),
                },
                LoggedCmd {
                    ts: Timestamp::ZERO,
                    origin: ReplicaId::new(0),
                    cmd: cmd(10),
                },
            ],
        };
        assert!(d2.wire_size() > d0.wire_size() + 20);
    }
}
