//! The Clock-RSM replica: Algorithms 1 and 2 of the paper.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use rsm_core::batch::Batch;
use rsm_core::checkpoint::{Checkpoint, Checkpointer};
use rsm_core::command::{Command, Committed, Reply};
use rsm_core::config::{Epoch, Membership};
use rsm_core::id::ReplicaId;
use rsm_core::obs::{names, TraceStage};
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::read::{ReadPath, ReadQueue};
use rsm_core::session::SessionTable;
use rsm_core::time::{Micros, Timestamp};

use crate::config::ClockRsmConfig;
use crate::log::LogRec;
use crate::msg::RsmMsg;
use crate::reconfig::ReconfigEngine;

/// Timer token: periodic CLOCKTIME broadcast check (Algorithm 2).
pub(crate) const TOKEN_CLOCKTIME: TimerToken = TimerToken(1);
/// Timer token: drain the PREPAREOK wait queue (Algorithm 1, line 8).
pub(crate) const TOKEN_ACK_WAIT: TimerToken = TimerToken(2);
/// Timer token: failure detector sweep.
pub(crate) const TOKEN_FD: TimerToken = TimerToken(3);
/// Timer token: reconfiguration consensus retry.
pub(crate) const TOKEN_SYNOD_RETRY: TimerToken = TimerToken(4);
/// Timer token: suspend-collection / state-transfer retry.
pub(crate) const TOKEN_RECONFIG_RETRY: TimerToken = TimerToken(5);

/// Packs `(epoch, ts)` into a single strictly increasing execution-order
/// coordinate: epoch-major, then timestamp micros, then originating
/// replica. Commands of epoch `e+1` always order after all of epoch `e`.
///
/// Layout: 12 bits of epoch, 44 bits of microseconds, 8 bits of replica
/// id. The replica lane holds ids up to 255; [`ClockRsm::new`] rejects
/// memberships beyond that so the truncation below can never fold two
/// distinct replicas onto one key (ids ≥ 256 would otherwise silently
/// collide). 44 bits of microseconds is ~204 days of continuous run time
/// (clocks are process-relative — the runtime counts from spawn and the
/// simulator from virtual time zero, never the wall-clock epoch), and
/// epochs wrap after 4096 reconfigurations — both asserted.
pub(crate) fn order_key(epoch: Epoch, ts: Timestamp) -> u64 {
    // Hard asserts even in release: an out-of-range timestamp or epoch
    // would silently corrupt the execution order. order_key runs only at
    // commit time, so the two comparisons are off the per-message path.
    assert!(ts.micros() < 1 << 44, "timestamp exceeds order-key range");
    assert!(epoch.0 < 1 << 12, "epoch exceeds order-key range");
    debug_assert!(
        ts.replica().as_u16() < MAX_ORDER_KEY_REPLICAS,
        "replica id exceeds order-key range"
    );
    (epoch.0 << 52) | (ts.micros() << 8) | (ts.replica().as_u16() as u64 & 0xFF)
}

/// Largest membership the order-key layout can distinguish (8-bit replica
/// lane). Enforced at construction.
pub const MAX_ORDER_KEY_REPLICAS: u16 = 1 << 8;

/// What to do with an incoming data-plane message, by epoch tag.
enum Admission {
    /// Current epoch: handle now.
    Process,
    /// Future epoch: stash until the missing decisions apply.
    Buffer,
    /// Stale epoch: discard.
    Drop,
}

/// A Clock-RSM replica (Algorithm 1), with the clock-time broadcast
/// extension (Algorithm 2) and reconfiguration (Algorithm 3).
///
/// Drive it with the `simnet` simulator or the `rsm-runtime` threaded
/// runtime via the [`Protocol`] implementation; see the crate docs for the
/// protocol description.
#[derive(Debug)]
pub struct ClockRsm {
    pub(crate) id: ReplicaId,
    pub(crate) membership: Membership,
    pub(crate) cfg: ClockRsmConfig,

    // ------ Algorithm 1 soft state (Table I) ------
    /// `PendingCmds`: commands not yet committed, ordered by timestamp.
    pub(crate) pending: BTreeMap<Timestamp, (Command, ReplicaId)>,
    /// Cumulative replication watermarks replacing the paper's
    /// `RepCounter`: `acked[k][o]` is the largest timestamp value `t`
    /// such that replica `k` has acknowledged logging **every** prepare
    /// from origin `o` with timestamp micros ≤ `t`. A pending command
    /// `(ts, o)` is replicated at `k` iff `acked[k][o] ≥ ts.micros()`, so
    /// the hot path is a handful of integer comparisons instead of a
    /// per-timestamp hash-map counter.
    pub(crate) acked: Vec<Vec<Micros>>,
    /// `LatestTV`: latest clock timestamp known from each replica
    /// (indexed by replica index over Spec; only Config entries are read).
    pub(crate) latest_tv: Vec<Timestamp>,
    /// Timestamp of the last commit mark appended to the log.
    pub(crate) last_committed: Timestamp,

    // ------ sending discipline ------
    /// Strictly increasing floor over every timestamp this replica has
    /// sent; enforces the paper's requirement that PREPARE, PREPAREOK and
    /// CLOCKTIME leave in timestamp order.
    pub(crate) send_floor: Micros,

    // ------ PREPAREOK wait queue (line 8: wait until ts < Clock) ------
    pub(crate) wait_queue: BTreeSet<Timestamp>,
    pub(crate) wait_armed_for: Option<Micros>,

    // ------ reconfiguration ------
    /// Frozen by SUSPEND (Algorithm 3 line 8): REQUEST and PREPARE
    /// processing and commits pause until the decision applies.
    pub(crate) frozen: bool,
    /// Local clock value when the freeze began (liveness backstop).
    pub(crate) frozen_since: Micros,
    /// Client batches received while frozen or awaiting rejoin, re-issued
    /// with their original batch boundaries on unfreeze (so batching
    /// stays a driver decision — a freeze never merges or splits
    /// batches).
    pub(crate) queued_requests: VecDeque<Batch>,
    pub(crate) queued_msgs: VecDeque<(ReplicaId, RsmMsg)>,
    pub(crate) reconfig: ReconfigEngine,
    /// Set by recovery: rejoin via reconfiguration before serving.
    pub(crate) needs_rejoin: bool,
    /// Index of every PREPARE in the stable log by timestamp, serving
    /// `SUSPENDOK` collection and `RETRIEVECMDS` state transfer.
    /// Maintained only when failure handling is enabled; a production
    /// system would bound it with checkpointing (Section V-B).
    pub(crate) history: BTreeMap<Timestamp, (ReplicaId, Command)>,

    // ------ failure detector ------
    /// Local-clock time we last heard from each replica.
    pub(crate) last_heard: Vec<Micros>,

    // ------ local reads (stable-timestamp, `rsm_core::read`) ------
    /// Reads parked against their stamp, released once the stable
    /// timestamp passes it (see [`ClockRsm::release_ready_reads`]).
    pub(crate) read_queue: ReadQueue<Timestamp>,
    /// Reads received while frozen or awaiting rejoin, re-stamped on
    /// unfreeze (a stamp taken mid-freeze could release against a
    /// stale configuration's stable timestamp).
    pub(crate) queued_reads: VecDeque<Command>,

    // ------ client sessions (exactly-once; `rsm_core::session`) ------
    /// Per-client dedup window: a retried command that already executed
    /// is answered from here instead of re-applying. Rides checkpoints;
    /// rebuilt by replay on recovery.
    pub(crate) sessions: SessionTable,

    // ------ counters (observability) ------
    pub(crate) committed_count: u64,
    /// Trace-stage floors (only advanced while the driver is observing;
    /// see [`ClockRsm::obs_scan`]): the `min(LatestTV)` value up to
    /// which pending commands have been stamped
    /// [`Stable`](rsm_core::obs::TraceStage::Stable) …
    pub(crate) obs_stable_floor: Timestamp,
    /// … and, per origin, the majority-ack watermark up to which its
    /// pending commands have been stamped
    /// [`Replicated`](rsm_core::obs::TraceStage::Replicated).
    pub(crate) obs_repl_floor: Vec<Micros>,
    /// Shared checkpoint scheduler (Section V-B; `rsm_core::checkpoint`).
    pub(crate) checkpointer: Checkpointer,
}

impl ClockRsm {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the membership spec, or if any spec id is
    /// ≥ [`MAX_ORDER_KEY_REPLICAS`] (the execution-order key reserves an
    /// 8-bit lane for the replica id; larger ids would silently collide).
    pub fn new(id: ReplicaId, membership: Membership, cfg: ClockRsmConfig) -> Self {
        assert!(membership.in_spec(id), "replica {id} not in spec");
        if let Some(big) = membership
            .spec()
            .iter()
            .find(|r| r.as_u16() >= MAX_ORDER_KEY_REPLICAS)
        {
            panic!(
                "replica id {big} does not fit the order-key layout \
                 (max {MAX_ORDER_KEY_REPLICAS} replicas)"
            );
        }
        let n = membership.spec().len();
        ClockRsm {
            id,
            cfg,
            pending: BTreeMap::new(),
            acked: vec![vec![0; n]; n],
            latest_tv: vec![Timestamp::ZERO; n],
            last_committed: Timestamp::ZERO,
            send_floor: 0,
            wait_queue: BTreeSet::new(),
            wait_armed_for: None,
            frozen: false,
            frozen_since: 0,
            queued_requests: VecDeque::new(),
            queued_msgs: VecDeque::new(),
            reconfig: ReconfigEngine::new(id, membership.spec().to_vec()),
            needs_rejoin: false,
            history: BTreeMap::new(),
            last_heard: vec![0; n],
            read_queue: ReadQueue::new(),
            queued_reads: VecDeque::new(),
            sessions: SessionTable::new(cfg.session_window),
            committed_count: 0,
            obs_stable_floor: Timestamp::ZERO,
            obs_repl_floor: vec![0; n],
            checkpointer: Checkpointer::new(cfg.checkpoint),
            membership,
        }
    }

    /// Sets the session-table chaos-canary knob (**test-only**): when on,
    /// duplicate writes re-apply instead of deduplicating — the bug the
    /// chaos fuzzer proves it can find and shrink.
    pub fn with_session_canary(mut self, on: bool) -> Self {
        self.sessions.set_canary_skip_dedup(on);
        self
    }

    /// Whether the replica maintains the prepared-command history index
    /// (required by reconfiguration; enabled with failure detection).
    pub(crate) fn keeps_history(&self) -> bool {
        self.cfg.fd_timeout_us.is_some()
    }

    /// The current epoch.
    pub fn epoch(&self) -> Epoch {
        self.membership.epoch()
    }

    /// The membership (spec, config, epoch).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Number of commands committed (executed) by this replica instance.
    pub fn committed_count(&self) -> u64 {
        self.committed_count
    }

    /// Number of commands currently pending (not yet committed).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Whether the replica is frozen by an in-flight reconfiguration.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Timestamp of the most recent commit mark.
    pub fn last_committed_ts(&self) -> Timestamp {
        self.last_committed
    }

    // ------------------------------------------------------------------
    // Sending discipline
    // ------------------------------------------------------------------

    /// Produces the next timestamp to put on an outgoing message: the
    /// current clock reading, bumped to stay strictly above everything
    /// this replica has already sent (and above everything it has applied
    /// across epoch changes).
    pub(crate) fn next_send_ts(&mut self, ctx: &mut dyn Context<Self>) -> Timestamp {
        self.next_send_ts_span(1, ctx)
    }

    /// Reserves `k` consecutive timestamps and returns the head: a batch
    /// of `k` commands occupies `[head, head + k)` in this replica's
    /// timestamp space, and everything sent afterwards is strictly above
    /// the whole run.
    pub(crate) fn next_send_ts_span(&mut self, k: u64, ctx: &mut dyn Context<Self>) -> Timestamp {
        debug_assert!(k >= 1);
        let clock = ctx.clock();
        let micros = clock.max(self.send_floor + 1);
        self.send_floor = micros + (k - 1);
        Timestamp::new(micros, self.id)
    }

    pub(crate) fn broadcast_config(&self, msg: RsmMsg, ctx: &mut dyn Context<Self>) {
        for r in self.membership.config().to_vec() {
            ctx.send(r, msg.clone());
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 1
    // ------------------------------------------------------------------

    /// Lines 1–3, generalized: stamp the whole batch with one head
    /// timestamp and broadcast a single PREPAREBATCH.
    fn handle_batch(&mut self, batch: Batch, ctx: &mut dyn Context<Self>) {
        if self.frozen || self.needs_rejoin {
            self.queued_requests.push_back(batch);
            return;
        }
        let ts = self.next_send_ts_span(batch.len() as u64, ctx);
        if ctx.obs_active() {
            for cmd in batch.iter() {
                ctx.trace(cmd.id, TraceStage::Proposed);
            }
        }
        let msg = RsmMsg::PrepareBatch {
            epoch: self.epoch(),
            ts,
            origin: self.id,
            cmds: batch,
        };
        self.broadcast_config(msg, ctx);
    }

    /// Lines 4–10, generalized: log every command of the batch, then
    /// acknowledge the whole run with one cumulative PREPAREOK carrying a
    /// clock reading greater than its last timestamp (waiting out clock
    /// skew if necessary).
    fn handle_prepare_batch(
        &mut self,
        head: Timestamp,
        origin: ReplicaId,
        cmds: Batch,
        ctx: &mut dyn Context<Self>,
    ) {
        let last = Timestamp::new(head.micros() + cmds.len() as Micros - 1, origin);
        // Iterate by reference: the batch's storage is typically still
        // shared with the sender's other in-flight broadcast copies, so
        // consuming it would deep-clone the whole command vector just to
        // move commands we clone anyway (Command clones are cheap —
        // Bytes payloads are refcounted).
        for (i, cmd) in cmds.iter().enumerate() {
            let ts = Timestamp::new(head.micros() + i as Micros, origin);
            self.pending.insert(ts, (cmd.clone(), origin));
            if self.keeps_history() {
                self.history.insert(ts, (origin, cmd.clone()));
            }
            ctx.log_append(LogRec::Prepare {
                ts,
                origin,
                cmd: cmd.clone(),
            });
        }
        let o = origin.index();
        self.latest_tv[o] = self.latest_tv[o].max(last);
        if self.needs_rejoin {
            // A recovered replica may have lost prepares that were in
            // flight while it was down, so a cumulative ack would
            // falsely cover them. Log the batch (it shrinks the
            // post-rejoin state transfer) but promise nothing: acks
            // resume after the rejoin reconfiguration installs a fresh
            // epoch, which resets every ack watermark in the system.
            self.try_commit(ctx);
            return;
        }
        let clock = ctx.clock();
        if clock > last.micros() {
            self.send_prepare_ok(last, ctx);
        } else {
            // Local clock is behind the originator's: promise nothing
            // until our clock passes the batch's last timestamp (paper:
            // "highly unlikely with reasonably synchronized clocks").
            self.wait_queue.insert(last);
            self.arm_wait_timer(last.micros(), clock, ctx);
        }
        self.try_commit(ctx);
    }

    fn send_prepare_ok(&mut self, up_to: Timestamp, ctx: &mut dyn Context<Self>) {
        let clock_ts = self.next_send_ts(ctx);
        debug_assert!(clock_ts > up_to);
        let msg = RsmMsg::PrepareOk {
            epoch: self.epoch(),
            up_to,
            clock_ts,
        };
        self.broadcast_config(msg, ctx);
    }

    fn arm_wait_timer(&mut self, target: Micros, clock: Micros, ctx: &mut dyn Context<Self>) {
        let fire_in = target.saturating_sub(clock) + 1;
        match self.wait_armed_for {
            Some(armed) if armed <= target => {}
            _ => {
                self.wait_armed_for = Some(target);
                ctx.set_timer(fire_in, TOKEN_ACK_WAIT);
            }
        }
    }

    /// Timer: acknowledge every queued PREPARE watermark the local clock
    /// has now passed, in timestamp order. A later ready watermark from
    /// the same originator subsumes earlier ones (acks are cumulative),
    /// so at most one PREPAREOK per originator leaves per drain.
    #[allow(clippy::while_let_loop)] // the miss arm re-arms the timer
    fn drain_wait_queue(&mut self, ctx: &mut dyn Context<Self>) {
        self.wait_armed_for = None;
        let mut ready: Vec<Timestamp> = Vec::new();
        loop {
            let Some(&ts) = self.wait_queue.iter().next() else {
                break;
            };
            let clock = ctx.clock();
            if clock > ts.micros() {
                self.wait_queue.remove(&ts);
                // Keep only the largest ready watermark per originator.
                ready.retain(|r| r.replica() != ts.replica());
                ready.push(ts);
            } else {
                self.arm_wait_timer(ts.micros(), clock, ctx);
                break;
            }
        }
        for ts in ready {
            self.send_prepare_ok(ts, ctx);
        }
    }

    /// Lines 11–13, generalized: advance the acker's cumulative watermark
    /// for the acknowledged originator.
    fn handle_prepare_ok(
        &mut self,
        from: ReplicaId,
        up_to: Timestamp,
        clock_ts: Timestamp,
        ctx: &mut dyn Context<Self>,
    ) {
        let k = from.index();
        self.latest_tv[k] = self.latest_tv[k].max(clock_ts);
        let o = up_to.replica().index();
        if self.acked[k][o] < up_to.micros() {
            self.acked[k][o] = up_to.micros();
        }
        self.try_commit(ctx);
    }

    /// Algorithm 2, receive side.
    fn handle_clock_time(&mut self, from: ReplicaId, ts: Timestamp, ctx: &mut dyn Context<Self>) {
        let k = from.index();
        self.latest_tv[k] = self.latest_tv[k].max(ts);
        self.try_commit(ctx);
    }

    /// The smallest `LatestTV` entry over the current configuration
    /// (line 22).
    pub(crate) fn min_latest_tv(&self) -> Timestamp {
        self.membership
            .config()
            .iter()
            .map(|r| self.latest_tv[r.index()])
            .min()
            .expect("config is never empty")
    }

    /// Lines 14–23: commit every pending command that satisfies majority
    /// replication, stable order, and prefix replication — always working
    /// on the smallest pending timestamp so prefix order is automatic.
    ///
    /// Majority replication is read off the cumulative watermark matrix:
    /// command `(ts, o)` is logged at replica `k` iff `acked[k][o]`
    /// reaches `ts` — no per-command counter state exists or needs
    /// cleanup.
    pub(crate) fn try_commit(&mut self, ctx: &mut dyn Context<Self>) {
        if self.frozen {
            return;
        }
        if ctx.obs_active() {
            self.obs_scan(ctx);
        }
        let majority = self.membership.majority();
        while let Some((&ts, _)) = self.pending.iter().next() {
            let o = ts.replica().index();
            let acks = self
                .membership
                .config()
                .iter()
                .filter(|k| self.acked[k.index()][o] >= ts.micros())
                .count();
            if acks < majority || ts > self.min_latest_tv() {
                break;
            }
            // Exact-cut discipline: before applying the write at `ts`,
            // serve every parked read stamped strictly below it. At this
            // point the pending prefix below `ts` is empty and
            // `min(LatestTV) ≥ ts`, so nothing below `ts` can still
            // arrive: the local state contains *exactly* the writes below
            // each released stamp — the invariant cross-shard snapshot
            // reads rely on (serving only after the whole drain could
            // leak writes newer than the stamp into the answer).
            if !self.read_queue.is_empty() && !self.needs_rejoin {
                for cmd in self.read_queue.release_before(ts) {
                    self.serve_read(cmd, ctx);
                }
            }
            let (cmd, origin) = self.pending.remove(&ts).expect("first key exists");
            ctx.log_append(LogRec::Commit { ts });
            debug_assert!(ts > self.last_committed, "commits must be ts-ordered");
            self.last_committed = ts;
            self.committed_count += 1;
            let payload_len = cmd.payload.len();
            let order_hint = order_key(self.epoch(), ts);
            // The session dedup window decides whether this command
            // actually reaches the state machine: a client retry that
            // already executed is answered from the cache instead.
            let applied = self.sessions.commit_dedup(
                self.id,
                Committed {
                    cmd,
                    origin,
                    order_hint,
                },
                ctx,
            );
            if applied {
                self.checkpointer.note_commit(payload_len);
            }
            self.maybe_checkpoint(ctx);
        }
        // The stable timestamp may have advanced: serve any read whose
        // stamp it passed. Riding on try_commit puts the check on every
        // path that moves `LatestTV` or drains `pending` (PREPAREOK,
        // CLOCKTIME, prepares, epoch installs).
        self.release_ready_reads(ctx);
    }

    /// Stamps trace-stage transitions on pending commands **this
    /// replica originated**: a command is
    /// [`Replicated`](TraceStage::Replicated) once a majority's
    /// cumulative ack watermark covers its timestamp, and
    /// [`Stable`](TraceStage::Stable) once `min(LatestTV)` passes it.
    /// Only the origin's vantage is stamped — the origin is where both
    /// conditions gate the commit, so its waits are the paper's latency
    /// decomposition (a remote replica can see a command
    /// majority-logged a full one-way hop before the origin's quorum
    /// ack returns, which would under-report the replication term).
    /// Both conditions are monotone in a watermark, so each scan only
    /// walks the pending commands a watermark newly passed (tracked by
    /// the `obs_*_floor` cursors) and stamps each stage exactly once —
    /// at the event that made it true. Only called while the driver is
    /// observing; stamps are write-only (commit decisions never read
    /// them).
    fn obs_scan(&mut self, ctx: &mut dyn Context<Self>) {
        use std::ops::Bound::{Excluded, Included};
        let top_lane = ReplicaId::new(u16::MAX);
        let stable = self.min_latest_tv();
        if stable > self.obs_stable_floor {
            let range = (Excluded(self.obs_stable_floor), Included(stable));
            for (&ts, (cmd, _)) in self.pending.range(range) {
                if ts.replica() == self.id {
                    ctx.trace(cmd.id, TraceStage::Stable);
                }
            }
            self.obs_stable_floor = stable;
        }
        let majority = self.membership.majority();
        let o = self.id;
        // The majority-th largest per-replica ack watermark for our own
        // lane: every pending command of ours at or below it is logged
        // by a majority.
        let mut acks: Vec<Micros> = self
            .membership
            .config()
            .iter()
            .map(|k| self.acked[k.index()][o.index()])
            .collect();
        acks.sort_unstable_by(|a, b| b.cmp(a));
        let w = acks[majority - 1];
        let floor = self.obs_repl_floor[o.index()];
        if w > floor {
            let range = (
                Excluded(Timestamp::new(floor, top_lane)),
                Included(Timestamp::new(w, top_lane)),
            );
            for (&ts, (cmd, _)) in self.pending.range(range) {
                if ts.replica() == o {
                    ctx.trace(cmd.id, TraceStage::Replicated);
                }
            }
            self.obs_repl_floor[o.index()] = w;
        }
    }

    // ------------------------------------------------------------------
    // Local reads (stable-timestamp rule; see `rsm_core::read`)
    // ------------------------------------------------------------------

    /// Handles a client read: stamp it from the monotonic send-timestamp
    /// discipline and park it until the stable timestamp passes the
    /// stamp.
    ///
    /// Why the stamp makes the released prefix linearizable: a write `W`
    /// whose reply preceded this read's issue committed at its origin
    /// only after **this** replica's clock evidence (`LatestTV[self]` at
    /// the origin — a timestamp this replica itself sent, hence ≤
    /// `send_floor`) exceeded `ts_W`. The stamp is strictly above
    /// `send_floor`, so `ts_W < stamp` for every such `W`, and releasing
    /// at `stable ≥ stamp` guarantees `W` is already executed locally.
    /// Clock skew shifts only how long the wait takes — a fast local
    /// clock stamps high and waits for `min(LatestTV)` to catch up, a
    /// slow one stamps low and releases sooner — never the answer.
    fn handle_read(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        if self.frozen || self.needs_rejoin {
            self.queued_reads.push_back(cmd);
            return;
        }
        let stamp = match cmd.read_at {
            // A router-pinned snapshot read: park at the external cut
            // instead of stamping locally. The lane sits above every
            // real replica id, so a write stamped at the same
            // microsecond orders *below* the cut and is included —
            // "snapshot at t" means exactly the writes with ts ≤ t.
            // Every shard of a multi-key read parks at the same t, and
            // the exact-cut release in `try_commit` guarantees each
            // serves from precisely that prefix.
            Some(at) => Timestamp::new(at, ReplicaId::new(u16::MAX - 1)),
            None => self.next_send_ts(ctx),
        };
        self.read_queue.park(stamp, cmd);
        self.release_ready_reads(ctx);
    }

    /// Serves every parked read whose stamp the stable timestamp has
    /// passed: `min(LatestTV)` over the configuration has reached the
    /// stamp (no replica will ever send a smaller timestamp, so nothing
    /// below it can still arrive) **and** every pending command at or
    /// below the stamp has committed (commits drain in timestamp order,
    /// so an empty prefix of `pending` proves local execution covers
    /// the stamp).
    pub(crate) fn release_ready_reads(&mut self, ctx: &mut dyn Context<Self>) {
        if self.read_queue.is_empty() || self.frozen || self.needs_rejoin {
            return;
        }
        let stable = self.stable_timestamp();
        for cmd in self.read_queue.release(stable) {
            self.serve_read(cmd, ctx);
        }
    }

    /// The replica's current **stable timestamp**: every command at or
    /// below it has executed locally, and no replica will ever send a
    /// smaller timestamp — `min(LatestTV)` over the configuration,
    /// lowered below the first still-pending command. Reads parked at or
    /// below it are servable; a sharded router compares it against a
    /// chosen snapshot cut.
    pub fn stable_timestamp(&self) -> Timestamp {
        let mut stable = self.min_latest_tv();
        if let Some((&first_pending, _)) = self.pending.iter().next() {
            // Commands at or below the first pending timestamp are not
            // all executed yet; reads stamped past it must keep waiting.
            // (Timestamps are unique, so releasing strictly below it is
            // exact, not conservative.)
            stable = stable.min(Timestamp::new(
                first_pending.micros().saturating_sub(1),
                ReplicaId::new(u16::MAX - 1),
            ));
        }
        stable
    }

    /// Serves one released read from the local state machine, falling
    /// back to ordinary replication when the driver cannot serve reads
    /// (no state machine access) or the command is not actually
    /// read-only.
    fn serve_read(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        if let Some(at) = cmd.read_at {
            // A pinned snapshot read is only servable while the applied
            // prefix still sits at or below its cut — normally
            // guaranteed by the exact-cut release in `try_commit`. A
            // part arriving *after* the state passed its cut (delivery
            // slower than the router's lead, or a rejoin that installed
            // a newer checkpoint) cannot be answered exactly without
            // multi-versioning, so it is dropped, never answered
            // inexactly: the router times out and retries the whole
            // snapshot under a fresh cut.
            let cut = Timestamp::new(at, ReplicaId::new(u16::MAX - 1));
            if self.last_committed > cut {
                return;
            }
        }
        match ctx.sm_read(&cmd) {
            Some(result) => ctx.send_reply(Reply::new(cmd.id, result)),
            None => self.handle_batch(Batch::single(cmd), ctx),
        }
    }

    /// Number of reads currently parked (test observability).
    pub fn parked_reads(&self) -> usize {
        self.read_queue.len()
    }

    /// Writes a checkpoint record when the policy says one is due and the
    /// driver supports state machine snapshots. With compaction enabled
    /// (and the prepared-command history index not required — see
    /// [`ClockRsmConfig::checkpoint`]), the stable log is rewritten to the
    /// checkpoint plus the records still live above its watermark — the
    /// pending (uncommitted) prepares; the epoch and configuration travel
    /// inside the checkpoint itself.
    pub(crate) fn maybe_checkpoint(&mut self, ctx: &mut dyn Context<Self>) {
        if !self.checkpointer.due() {
            return;
        }
        let Some(state) = ctx.sm_snapshot() else {
            return; // driver without snapshot support: replay-only recovery
        };
        self.checkpointer.taken();
        let cp = Checkpoint {
            applied: self.last_committed,
            epoch: self.epoch(),
            config: self.membership.config().to_vec(),
            snapshot: state,
            sessions: self.sessions.export(),
        };
        if self.checkpointer.policy().compact && !self.keeps_history() {
            let mut recs: Vec<LogRec> = Vec::with_capacity(1 + self.pending.len());
            recs.push(LogRec::Checkpoint(cp));
            for (&ts, (cmd, origin)) in &self.pending {
                recs.push(LogRec::Prepare {
                    ts,
                    origin: *origin,
                    cmd: cmd.clone(),
                });
            }
            ctx.log_rewrite(recs);
        } else {
            ctx.log_append(LogRec::Checkpoint(cp));
        }
    }

    // ------------------------------------------------------------------
    // Algorithm 2: periodic clock broadcast (also the FD heartbeat)
    // ------------------------------------------------------------------

    fn clocktime_tick(&mut self, ctx: &mut dyn Context<Self>) {
        let Some(delta) = self.cfg.delta_us else {
            return;
        };
        // Re-arm first so a panic-free return always keeps the timer alive.
        ctx.set_timer(delta / 2, TOKEN_CLOCKTIME);
        if self.needs_rejoin {
            return;
        }
        let clock = ctx.clock();
        let my_latest = self.latest_tv[self.id.index()];
        if clock >= my_latest.micros().saturating_add(delta) {
            let ts = self.next_send_ts(ctx);
            self.broadcast_config(
                RsmMsg::ClockTime {
                    epoch: self.epoch(),
                    ts,
                },
                ctx,
            );
        }
    }

    // ------------------------------------------------------------------
    // Failure detector
    // ------------------------------------------------------------------

    fn fd_tick(&mut self, ctx: &mut dyn Context<Self>) {
        let Some(timeout) = self.cfg.fd_timeout_us else {
            return;
        };
        ctx.set_timer(timeout / 4, TOKEN_FD);
        if self.needs_rejoin || !self.reconfig.is_idle() {
            return;
        }
        let clock = ctx.clock();
        let suspects: Vec<ReplicaId> = self
            .membership
            .config()
            .iter()
            .copied()
            .filter(|&k| k != self.id && clock.saturating_sub(self.last_heard[k.index()]) > timeout)
            .collect();
        if self.frozen {
            // Liveness backstop: if the reconfigurer that froze us died
            // before reaching a decision, take over the reconfiguration
            // ourselves (the consensus instance keeps competing proposals
            // safe).
            if clock.saturating_sub(self.frozen_since) > 2 * timeout {
                self.frozen_since = clock; // back off before retrying again
                let new_config: Vec<ReplicaId> = self
                    .membership
                    .config()
                    .iter()
                    .copied()
                    .filter(|r| !suspects.contains(r))
                    .collect();
                if new_config.len() >= self.membership.majority() {
                    self.trigger_reconfigure(new_config, ctx);
                }
            }
            return;
        }
        if suspects.is_empty() {
            return;
        }
        let new_config: Vec<ReplicaId> = self
            .membership
            .config()
            .iter()
            .copied()
            .filter(|r| !suspects.contains(r))
            .collect();
        if new_config.len() >= self.membership.majority() {
            self.trigger_reconfigure(new_config, ctx);
        }
    }

    pub(crate) fn note_heard(&mut self, from: ReplicaId, ctx: &mut dyn Context<Self>) {
        let clock = ctx.clock();
        self.last_heard[from.index()] = clock;
    }

    // ------------------------------------------------------------------
    // Epoch hygiene
    // ------------------------------------------------------------------

    /// Classifies a data-plane message by its epoch tag: older epochs
    /// are dropped; newer ones must be buffered while we request the
    /// decisions we missed; current-epoch messages are processed. The
    /// caller rebuilds the owned message only on the buffering path, so
    /// the hot path never clones a batch.
    fn admit_epoch(
        &mut self,
        from: ReplicaId,
        epoch: Epoch,
        ctx: &mut dyn Context<Self>,
    ) -> Admission {
        if epoch < self.epoch() {
            return Admission::Drop;
        }
        if epoch > self.epoch() {
            ctx.send(
                from,
                RsmMsg::DecisionRequest {
                    have_epoch: self.epoch(),
                },
            );
            return Admission::Buffer;
        }
        Admission::Process
    }

    /// Re-dispatches buffered requests and messages after an epoch install
    /// or unfreeze. Queued client batches are re-issued exactly as the
    /// driver delivered them — a freeze never merges or splits batches,
    /// so the batch policy holds across reconfigurations.
    pub(crate) fn drain_buffers(&mut self, ctx: &mut dyn Context<Self>) {
        let msgs: Vec<(ReplicaId, RsmMsg)> = self.queued_msgs.drain(..).collect();
        for (from, msg) in msgs {
            self.on_message(from, msg, ctx);
        }
        let batches: Vec<Batch> = self.queued_requests.drain(..).collect();
        for batch in batches {
            self.handle_batch(batch, ctx);
        }
        let reads: Vec<Command> = self.queued_reads.drain(..).collect();
        for cmd in reads {
            self.handle_read(cmd, ctx);
        }
        self.release_ready_reads(ctx);
    }
}

impl Protocol for ClockRsm {
    type Msg = RsmMsg;
    type LogRec = LogRec;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, ctx: &mut dyn Context<Self>) {
        let clock = ctx.clock();
        for h in &mut self.last_heard {
            *h = clock;
        }
        if let Some(delta) = self.cfg.delta_us {
            ctx.set_timer(delta / 2, TOKEN_CLOCKTIME);
        }
        if let Some(timeout) = self.cfg.fd_timeout_us {
            ctx.set_timer(timeout / 4, TOKEN_FD);
        }
        if self.needs_rejoin {
            self.start_rejoin(ctx);
        }
    }

    fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        self.handle_batch(Batch::single(cmd), ctx);
    }

    fn on_client_batch(&mut self, batch: Batch, ctx: &mut dyn Context<Self>) {
        self.handle_batch(batch, ctx);
    }

    fn on_client_read(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        self.handle_read(cmd, ctx);
    }

    fn read_path(&self) -> ReadPath {
        ReadPath::LocalStable
    }

    fn on_message(&mut self, from: ReplicaId, msg: RsmMsg, ctx: &mut dyn Context<Self>) {
        self.note_heard(from, ctx);
        match msg {
            RsmMsg::PrepareBatch {
                epoch,
                ts,
                origin,
                cmds,
            } => match self.admit_epoch(from, epoch, ctx) {
                // Algorithm 3 line 8: stop processing PREPARE while
                // suspended (buffered and replayed on unfreeze).
                Admission::Process if !self.frozen => {
                    self.handle_prepare_batch(ts, origin, cmds, ctx)
                }
                Admission::Process | Admission::Buffer => self.queued_msgs.push_back((
                    from,
                    RsmMsg::PrepareBatch {
                        epoch,
                        ts,
                        origin,
                        cmds,
                    },
                )),
                Admission::Drop => {}
            },
            RsmMsg::PrepareOk {
                epoch,
                up_to,
                clock_ts,
            } => match self.admit_epoch(from, epoch, ctx) {
                Admission::Process => self.handle_prepare_ok(from, up_to, clock_ts, ctx),
                Admission::Buffer => self.queued_msgs.push_back((
                    from,
                    RsmMsg::PrepareOk {
                        epoch,
                        up_to,
                        clock_ts,
                    },
                )),
                Admission::Drop => {}
            },
            RsmMsg::ClockTime { epoch, ts } => match self.admit_epoch(from, epoch, ctx) {
                Admission::Process => self.handle_clock_time(from, ts, ctx),
                Admission::Buffer => self
                    .queued_msgs
                    .push_back((from, RsmMsg::ClockTime { epoch, ts })),
                Admission::Drop => {}
            },
            RsmMsg::Suspend { epoch, cts } => self.handle_suspend(from, epoch, cts, ctx),
            RsmMsg::SuspendOk { epoch, cmds } => self.handle_suspend_ok(from, epoch, cmds, ctx),
            RsmMsg::Synod { epoch, msg } => self.handle_synod(from, epoch, msg, ctx),
            RsmMsg::RetrieveCmds { from_ts, to_ts } => {
                self.handle_retrieve(from, from_ts, to_ts, ctx)
            }
            RsmMsg::RetrieveReply {
                from_ts,
                to_ts,
                cmds,
            } => self.handle_retrieve_reply(from, from_ts, to_ts, cmds, ctx),
            RsmMsg::DecisionRequest { have_epoch } => {
                self.handle_decision_request(from, have_epoch, ctx)
            }
            RsmMsg::DecisionCatchup { decisions } => self.handle_decision_catchup(decisions, ctx),
        }
    }

    fn obs_poll(&mut self, ctx: &mut dyn Context<Self>) {
        // The stable-wait a command stamped right now would pay locally:
        // how far the stable timestamp trails this replica's clock.
        let clock = ctx.clock();
        let stable = self.stable_timestamp();
        ctx.obs_gauge(
            names::STABLE_LAG_US,
            clock.saturating_sub(stable.micros()) as i64,
        );
        // Per-peer LatestTV staleness — the peer holding the minimum is
        // the one gating the stable timestamp (paper §IV: commit latency
        // is dominated by the slowest clock-time stream).
        for peer in self.membership.config().to_vec() {
            let tv = self.latest_tv[peer.index()];
            ctx.obs_gauge_idx(
                names::LATEST_TV_STALENESS_US,
                peer,
                clock.saturating_sub(tv.micros()) as i64,
            );
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Self>) {
        match token {
            TOKEN_CLOCKTIME => self.clocktime_tick(ctx),
            TOKEN_ACK_WAIT => self.drain_wait_queue(ctx),
            TOKEN_FD => self.fd_tick(ctx),
            TOKEN_SYNOD_RETRY => self.synod_retry(ctx),
            TOKEN_RECONFIG_RETRY => self.reconfig_retry(ctx),
            _ => {}
        }
    }

    fn on_recover(&mut self, log: &[LogRec], ctx: &mut dyn Context<Self>) {
        // Checkpoint fast path (Section V-B): restore the most recent
        // snapshot and skip re-executing everything at or below its
        // timestamp. Falls back to a full replay when the driver cannot
        // restore snapshots (sound only while the log is uncompacted —
        // compaction requires install support, which both in-tree
        // drivers provide).
        let mut base_ts = Timestamp::ZERO;
        for rec in log.iter().rev() {
            if let LogRec::Checkpoint(cp) = rec {
                if ctx.sm_install(cp.snapshot.clone()) {
                    base_ts = cp.applied;
                    self.last_committed = cp.applied;
                    // The dedup window travels with the snapshot: restore
                    // it so retries of pre-checkpoint commands stay
                    // recognised (a malformed frame leaves it empty and
                    // replay above the watermark rebuilds what it can).
                    let _ = self.sessions.install(&cp.sessions);
                    // A compacted log may hold no Epoch records below the
                    // checkpoint; the checkpoint itself pins the
                    // membership it was taken in.
                    if cp.epoch > self.epoch() {
                        self.membership.install(cp.epoch, cp.config.clone());
                        self.reconfig.forget_instances_up_to(cp.epoch);
                    }
                }
                break;
            }
        }
        // Section V-B: scan the log, inserting PREPARE entries into a hash
        // table and executing them as their COMMIT marks are encountered —
        // commit marks are in timestamp order, so execution replays
        // exactly.
        let mut prepared: HashMap<Timestamp, (Command, ReplicaId)> = HashMap::new();
        let mut max_ts = Timestamp::ZERO;
        for rec in log {
            match rec {
                LogRec::Prepare { ts, origin, cmd } => {
                    prepared.insert(*ts, (cmd.clone(), *origin));
                    if self.keeps_history() {
                        self.history.insert(*ts, (*origin, cmd.clone()));
                    }
                    max_ts = max_ts.max(*ts);
                }
                LogRec::Commit { ts } => {
                    let entry = prepared.remove(ts);
                    if *ts <= base_ts {
                        continue; // already reflected in the checkpoint
                    }
                    if let Some((cmd, origin)) = entry {
                        self.last_committed = *ts;
                        self.committed_count += 1;
                        // Replay through the same dedup path as live
                        // execution so the rebuilt window matches what
                        // the replica held before the crash.
                        self.sessions.commit_dedup(
                            self.id,
                            Committed {
                                cmd,
                                origin,
                                order_hint: order_key(self.membership.epoch(), *ts),
                            },
                            ctx,
                        );
                    }
                }
                LogRec::Epoch { epoch, config } => {
                    if *epoch > self.epoch() {
                        self.membership.install(*epoch, config.clone());
                        self.reconfig.forget_instances_up_to(*epoch);
                    }
                }
                LogRec::Checkpoint(_) => {}
            }
        }
        // Never reuse timestamps at or below anything we logged before the
        // crash: peers hold our old promises. A compacted log may have
        // dropped our own prepares, but the checkpoint watermark bounds
        // them: nothing we sent before the crash can exceed both.
        self.send_floor = self
            .send_floor
            .max(max_ts.micros())
            .max(self.last_committed.micros());
        // Tail PREPAREs without commit marks are left to the rejoin
        // reconfiguration: any of them that reached a majority will be in
        // the decision (paper, Claim 3); the rest are discarded.
        self.needs_rejoin = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::CommandId;
    use rsm_core::id::ClientId;
    use rsm_core::Batch;

    pub(crate) struct TestCtx {
        pub sends: Vec<(ReplicaId, RsmMsg)>,
        pub commits: Vec<Committed>,
        pub log: Vec<LogRec>,
        pub timers: Vec<(Micros, TimerToken)>,
        pub clock: Micros,
        pub clock_step: Micros,
        /// Replies routed via `send_reply` (served local reads).
        pub read_replies: Vec<Reply>,
        /// Whether `sm_read` answers (false models a driver without
        /// state machine access, forcing the replicated fallback).
        pub serve_reads: bool,
    }

    impl TestCtx {
        pub fn new(start_clock: Micros) -> Self {
            TestCtx {
                sends: Vec::new(),
                commits: Vec::new(),
                log: Vec::new(),
                timers: Vec::new(),
                clock: start_clock,
                clock_step: 1,
                read_replies: Vec::new(),
                serve_reads: true,
            }
        }

        pub fn take_sends(&mut self) -> Vec<(ReplicaId, RsmMsg)> {
            std::mem::take(&mut self.sends)
        }
    }

    impl Context<ClockRsm> for TestCtx {
        fn clock(&mut self) -> Micros {
            self.clock += self.clock_step;
            self.clock
        }
        fn send(&mut self, to: ReplicaId, msg: RsmMsg) {
            self.sends.push((to, msg));
        }
        fn log_append(&mut self, rec: LogRec) {
            self.log.push(rec);
        }
        fn log_rewrite(&mut self, recs: Vec<LogRec>) {
            self.log = recs;
        }
        fn commit(&mut self, c: Committed) -> Bytes {
            let result = c.cmd.payload.clone();
            self.commits.push(c);
            result
        }
        fn set_timer(&mut self, after: Micros, token: TimerToken) {
            self.timers.push((after, token));
        }
        fn sm_read(&mut self, cmd: &Command) -> Option<Bytes> {
            self.serve_reads
                .then(|| Bytes::from(format!("read:{}", cmd.id.seq).into_bytes()))
        }
        fn send_reply(&mut self, reply: Reply) {
            self.read_replies.push(reply);
        }
    }

    fn cmd(seq: u64) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from_static(b"op"),
        )
    }

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn replica(i: u16, n: u16) -> ClockRsm {
        ClockRsm::new(
            r(i),
            Membership::uniform(n),
            ClockRsmConfig::default().with_delta_us(None),
        )
    }

    fn ts(micros: Micros, i: u16) -> Timestamp {
        Timestamp::new(micros, r(i))
    }

    /// Builds a single-command PREPAREBATCH (most tests drive the
    /// protocol one command at a time).
    fn prepare(epoch: Epoch, t: Timestamp, origin: ReplicaId, c: Command) -> RsmMsg {
        RsmMsg::PrepareBatch {
            epoch,
            ts: t,
            origin,
            cmds: Batch::single(c),
        }
    }

    #[test]
    fn broadcast_shares_the_batch_payload_across_peers() {
        // The allocation-lean fan-out contract: the per-peer clones of a
        // PREPAREBATCH share one command vector (Arc), so an N-peer
        // broadcast of a k-command batch clones pointers, not commands.
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        let batch = Batch::new((1..=64).map(cmd).collect());
        p.on_client_batch(batch.clone(), &mut ctx);
        let prepares: Vec<&Batch> = ctx
            .sends
            .iter()
            .filter_map(|(_, m)| match m {
                RsmMsg::PrepareBatch { cmds, .. } => Some(cmds),
                _ => None,
            })
            .collect();
        assert_eq!(prepares.len(), 3, "one PREPAREBATCH per config member");
        for sent in &prepares {
            assert!(
                sent.ptr_eq(&batch),
                "a peer copy deep-cloned the command payload"
            );
        }
    }

    #[test]
    fn request_broadcasts_prepare_to_everyone() {
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        p.on_client_request(cmd(1), &mut ctx);
        let prepares: Vec<&RsmMsg> = ctx
            .sends
            .iter()
            .map(|(_, m)| m)
            .filter(|m| matches!(m, RsmMsg::PrepareBatch { .. }))
            .collect();
        assert_eq!(prepares.len(), 3, "PREPARE goes to all replicas incl self");
        match prepares[0] {
            RsmMsg::PrepareBatch { ts, origin, .. } => {
                assert_eq!(*origin, r(0));
                assert!(ts.micros() > 1_000);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn batched_request_reserves_contiguous_timestamps() {
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        p.on_client_batch(Batch::new(vec![cmd(1), cmd(2), cmd(3)]), &mut ctx);
        let heads: Vec<(Timestamp, usize)> = ctx
            .sends
            .iter()
            .filter_map(|(_, m)| match m {
                RsmMsg::PrepareBatch { ts, cmds, .. } => Some((*ts, cmds.len())),
                _ => None,
            })
            .collect();
        assert_eq!(heads.len(), 3, "one batch message per destination");
        assert!(heads.iter().all(|&(t, k)| t == heads[0].0 && k == 3));
        // The next stamp clears the whole reserved run.
        let next = p.next_send_ts(&mut ctx);
        assert!(next.micros() >= heads[0].0.micros() + 3);
    }

    #[test]
    fn prepare_is_logged_and_acked_with_greater_clock() {
        let mut p = replica(1, 3);
        let mut ctx = TestCtx::new(1_000);
        p.on_message(
            r(0),
            prepare(Epoch::ZERO, ts(500, 0), r(0), cmd(1)),
            &mut ctx,
        );
        assert_eq!(ctx.log.len(), 1);
        let oks: Vec<&RsmMsg> = ctx
            .sends
            .iter()
            .map(|(_, m)| m)
            .filter(|m| matches!(m, RsmMsg::PrepareOk { .. }))
            .collect();
        assert_eq!(oks.len(), 3, "PREPAREOK broadcast to all incl self");
        match oks[0] {
            RsmMsg::PrepareOk {
                up_to, clock_ts, ..
            } => {
                assert_eq!(*up_to, ts(500, 0));
                assert!(clock_ts.micros() > 500);
                assert_eq!(clock_ts.replica(), r(1));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn batched_prepare_acks_once_covering_the_whole_run() {
        let mut p = replica(1, 3);
        let mut ctx = TestCtx::new(1_000);
        p.on_message(
            r(0),
            RsmMsg::PrepareBatch {
                epoch: Epoch::ZERO,
                ts: ts(500, 0),
                origin: r(0),
                cmds: Batch::new(vec![cmd(1), cmd(2), cmd(3), cmd(4)]),
            },
            &mut ctx,
        );
        assert_eq!(ctx.log.len(), 4, "every command of the batch is logged");
        assert_eq!(p.pending_count(), 4);
        let oks: Vec<&RsmMsg> = ctx
            .sends
            .iter()
            .map(|(_, m)| m)
            .filter(|m| matches!(m, RsmMsg::PrepareOk { .. }))
            .collect();
        assert_eq!(oks.len(), 3, "ONE cumulative ack broadcast, not 4");
        match oks[0] {
            RsmMsg::PrepareOk { up_to, .. } => {
                assert_eq!(*up_to, ts(503, 0), "watermark covers the last command");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn prepare_from_the_future_waits_for_local_clock() {
        let mut p = replica(1, 3);
        let mut ctx = TestCtx::new(100);
        // Originator's clock (10_000) is far ahead of ours (≈100).
        p.on_message(
            r(0),
            prepare(Epoch::ZERO, ts(10_000, 0), r(0), cmd(1)),
            &mut ctx,
        );
        assert!(
            !ctx.sends
                .iter()
                .any(|(_, m)| matches!(m, RsmMsg::PrepareOk { .. })),
            "must not ack before local clock passes ts"
        );
        assert_eq!(ctx.timers.len(), 1, "wait timer armed");
        // Fire the timer once the clock has advanced past ts.
        ctx.clock = 10_050;
        p.on_timer(TOKEN_ACK_WAIT, &mut ctx);
        let oks = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, RsmMsg::PrepareOk { .. }))
            .count();
        assert_eq!(oks, 3);
    }

    /// Drives a full three-replica commit at replica 0 by hand.
    #[test]
    fn command_commits_after_majority_and_stable_order() {
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        p.on_client_request(cmd(1), &mut ctx);
        let tcmd = match &ctx.take_sends()[0] {
            (_, RsmMsg::PrepareBatch { ts, .. }) => *ts,
            _ => unreachable!(),
        };
        // Self-delivery of own PREPARE.
        p.on_message(r(0), prepare(Epoch::ZERO, tcmd, r(0), cmd(1)), &mut ctx);
        // Own PREPAREOK (self-delivery).
        let own_ok = ctx
            .take_sends()
            .into_iter()
            .find_map(|(to, m)| match (to, &m) {
                (to, RsmMsg::PrepareOk { .. }) if to == r(0) => Some(m),
                _ => None,
            })
            .unwrap();
        p.on_message(r(0), own_ok, &mut ctx);
        assert!(ctx.commits.is_empty(), "one ack is not a majority");
        // r1 acks: majority reached, but r2's latest timestamp is unknown
        // (stable order not yet satisfied).
        p.on_message(
            r(1),
            RsmMsg::PrepareOk {
                epoch: Epoch::ZERO,
                up_to: tcmd,
                clock_ts: ts(tcmd.micros() + 10, 1),
            },
            &mut ctx,
        );
        assert!(
            ctx.commits.is_empty(),
            "stable order requires a newer timestamp from every replica"
        );
        // r2's clock time arrives (e.g. a CLOCKTIME or another command's
        // PREPAREOK): now ts ≤ min(LatestTV) and the command commits.
        p.on_message(
            r(2),
            RsmMsg::ClockTime {
                epoch: Epoch::ZERO,
                ts: ts(tcmd.micros() + 12, 2),
            },
            &mut ctx,
        );
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(ctx.commits[0].origin, r(0));
        assert_eq!(p.committed_count(), 1);
        assert_eq!(p.pending_count(), 0);
        // Commit mark appended after the prepare record.
        assert!(ctx.log.iter().any(|l| l.is_commit()));
    }

    #[test]
    fn commits_follow_timestamp_order_across_originators() {
        let mut p = replica(2, 3);
        let mut ctx = TestCtx::new(1_000);
        let t0 = ts(5_000, 0);
        let t1 = ts(4_000, 1); // smaller timestamp from r1
        for (origin, t) in [(r(0), t0), (r(1), t1)] {
            p.on_message(
                origin,
                prepare(Epoch::ZERO, t, origin, cmd(t.micros())),
                &mut ctx,
            );
        }
        ctx.take_sends();
        // Majority acks for BOTH, with clock_ts > both commands.
        for t in [t0, t1] {
            for k in [0u16, 1, 2] {
                p.on_message(
                    r(k),
                    RsmMsg::PrepareOk {
                        epoch: Epoch::ZERO,
                        up_to: t,
                        clock_ts: ts(6_000 + k as u64, k),
                    },
                    &mut ctx,
                );
            }
        }
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[0].cmd.id.seq, 4_000, "smaller ts first");
        assert_eq!(ctx.commits[1].cmd.id.seq, 5_000);
        assert!(ctx.commits[0].order_hint < ctx.commits[1].order_hint);
    }

    #[test]
    fn prefix_replication_blocks_later_commands() {
        // A command with a larger timestamp reaches majority + stability,
        // but an earlier pending command hasn't: nothing commits.
        let mut p = replica(2, 3);
        let mut ctx = TestCtx::new(1_000);
        let early = ts(4_000, 0);
        let late = ts(5_000, 1);
        for (origin, t) in [(r(0), early), (r(1), late)] {
            p.on_message(
                origin,
                prepare(Epoch::ZERO, t, origin, cmd(t.micros())),
                &mut ctx,
            );
        }
        // Acks only for the late command.
        for k in [0u16, 1, 2] {
            p.on_message(
                r(k),
                RsmMsg::PrepareOk {
                    epoch: Epoch::ZERO,
                    up_to: late,
                    clock_ts: ts(6_000 + k as u64, k),
                },
                &mut ctx,
            );
        }
        assert!(
            ctx.commits.is_empty(),
            "prefix replication must hold back the later command"
        );
        // Early command's majority arrives: both commit, in order.
        for k in [0u16, 1] {
            p.on_message(
                r(k),
                RsmMsg::PrepareOk {
                    epoch: Epoch::ZERO,
                    up_to: early,
                    clock_ts: ts(6_100 + k as u64, k),
                },
                &mut ctx,
            );
        }
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[0].cmd.id.seq, 4_000);
    }

    #[test]
    fn stale_epoch_messages_dropped_and_newer_buffered() {
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        // Move to epoch 1 so an Epoch::ZERO message is genuinely stale.
        p.membership.install(Epoch(1), vec![r(0), r(1), r(2)]);
        let before = p.latest_tv[1];
        // Stale epoch: dropped outright, LatestTV untouched.
        p.on_message(
            r(1),
            RsmMsg::ClockTime {
                epoch: Epoch::ZERO,
                ts: ts(2_000, 1),
            },
            &mut ctx,
        );
        assert_eq!(p.latest_tv[1], before, "stale-epoch msg must be dropped");
        // Current epoch: applied.
        p.on_message(
            r(1),
            RsmMsg::ClockTime {
                epoch: Epoch(1),
                ts: ts(2_500, 1),
            },
            &mut ctx,
        );
        assert_eq!(p.latest_tv[1], ts(2_500, 1));
        // Future epoch: buffered + decision request sent.
        p.on_message(
            r(1),
            RsmMsg::ClockTime {
                epoch: Epoch(3),
                ts: ts(9_000, 1),
            },
            &mut ctx,
        );
        assert_eq!(p.latest_tv[1], ts(2_500, 1), "future-epoch msg not applied");
        assert!(ctx
            .sends
            .iter()
            .any(|(_, m)| matches!(m, RsmMsg::DecisionRequest { .. })));
        assert_eq!(p.queued_msgs.len(), 1);
    }

    #[test]
    fn clocktime_broadcast_fires_when_quiet() {
        let mut p = ClockRsm::new(
            r(0),
            Membership::uniform(3),
            ClockRsmConfig::default().with_delta_us(Some(5_000)),
        );
        let mut ctx = TestCtx::new(0);
        p.on_start(&mut ctx);
        assert!(ctx.timers.iter().any(|(_, t)| *t == TOKEN_CLOCKTIME));
        ctx.clock = 10_000; // quiet for > delta
        p.on_timer(TOKEN_CLOCKTIME, &mut ctx);
        let sent = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, RsmMsg::ClockTime { .. }))
            .count();
        assert_eq!(sent, 3);
        // Self-delivery updates our own LatestTV entry; the next tick
        // within delta must not rebroadcast.
        let (_, m) = ctx.sends[0].clone();
        p.on_message(r(0), m, &mut ctx);
        ctx.take_sends();
        p.on_timer(TOKEN_CLOCKTIME, &mut ctx);
        assert_eq!(
            ctx.sends
                .iter()
                .filter(|(_, m)| matches!(m, RsmMsg::ClockTime { .. }))
                .count(),
            0,
            "no rebroadcast within delta"
        );
    }

    #[test]
    fn send_timestamps_strictly_increase() {
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        ctx.clock_step = 0; // frozen clock: stamper must still increase
        let a = p.next_send_ts(&mut ctx);
        let b = p.next_send_ts(&mut ctx);
        let c = p.next_send_ts(&mut ctx);
        assert!(a < b && b < c);
    }

    #[test]
    fn rejoining_replica_logs_but_never_acks() {
        // Prepares may have been lost while this replica was down; a
        // cumulative PREPAREOK sent before the rejoin reconfiguration
        // completes would falsely cover them. The replica still logs
        // (shrinking the post-rejoin state transfer) but stays silent.
        let mut p = replica(1, 3);
        let mut ctx = TestCtx::new(1_000);
        p.on_recover(&[], &mut ctx);
        assert!(p.needs_rejoin);
        p.on_message(
            r(0),
            prepare(Epoch::ZERO, ts(500, 0), r(0), cmd(1)),
            &mut ctx,
        );
        assert_eq!(ctx.log.len(), 1, "the prepare is still logged");
        assert!(
            !ctx.sends
                .iter()
                .any(|(_, m)| matches!(m, RsmMsg::PrepareOk { .. })),
            "no cumulative ack may leave before the rejoin completes"
        );
        assert!(p.wait_queue.is_empty(), "no deferred ack either");
    }

    #[test]
    fn freeze_preserves_client_batch_boundaries() {
        // Batches queued during a freeze must re-issue exactly as the
        // driver delivered them: never merged (policy cap would be
        // violated) and never split.
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        p.frozen = true;
        p.on_client_batch(Batch::new(vec![cmd(1), cmd(2)]), &mut ctx);
        p.on_client_request(cmd(3), &mut ctx);
        assert!(ctx.sends.is_empty(), "frozen: nothing leaves");
        p.frozen = false;
        p.drain_buffers(&mut ctx);
        let shapes: Vec<usize> = ctx
            .sends
            .iter()
            .filter_map(|(to, m)| match m {
                RsmMsg::PrepareBatch { cmds, .. } if *to == r(0) => Some(cmds.len()),
                _ => None,
            })
            .collect();
        assert_eq!(shapes, vec![2, 1], "original batch boundaries kept");
    }

    #[test]
    fn recovery_replays_committed_prefix_in_order() {
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        let t1 = ts(100, 1);
        let t2 = ts(200, 0);
        let log = vec![
            LogRec::Prepare {
                ts: t2,
                origin: r(0),
                cmd: cmd(2),
            },
            LogRec::Prepare {
                ts: t1,
                origin: r(1),
                cmd: cmd(1),
            },
            LogRec::Commit { ts: t1 },
            LogRec::Commit { ts: t2 },
            LogRec::Prepare {
                ts: ts(300, 0),
                origin: r(0),
                cmd: cmd(3),
            }, // tail without commit
        ];
        p.on_recover(&log, &mut ctx);
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[0].cmd.id.seq, 1);
        assert_eq!(ctx.commits[1].cmd.id.seq, 2);
        assert!(p.needs_rejoin);
        assert!(p.send_floor >= 300, "must not reuse logged timestamps");
    }

    fn read(seq: u64) -> Command {
        Command::read(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from_static(b"get"),
        )
    }

    /// Advances every replica's `LatestTV` entry past `micros` via
    /// CLOCKTIME messages (the stable-timestamp feed).
    fn advance_latest_tv(p: &mut ClockRsm, micros: Micros, ctx: &mut TestCtx) {
        for k in 0..3u16 {
            p.on_message(
                r(k),
                RsmMsg::ClockTime {
                    epoch: p.epoch(),
                    ts: ts(micros, k),
                },
                ctx,
            );
        }
    }

    #[test]
    fn read_parks_until_stable_timestamp_passes_its_stamp() {
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        p.on_client_read(read(7), &mut ctx);
        assert_eq!(p.parked_reads(), 1);
        assert!(
            ctx.read_replies.is_empty() && ctx.sends.is_empty(),
            "a read neither answers early nor touches the wire"
        );
        // Two of three clocks pass the stamp: still not stable.
        for k in 0..2u16 {
            p.on_message(
                r(k),
                RsmMsg::ClockTime {
                    epoch: Epoch::ZERO,
                    ts: ts(5_000, k),
                },
                &mut ctx,
            );
        }
        assert_eq!(p.parked_reads(), 1, "min(LatestTV) still below the stamp");
        // The third clock arrives: stable timestamp passes the stamp.
        p.on_message(
            r(2),
            RsmMsg::ClockTime {
                epoch: Epoch::ZERO,
                ts: ts(5_000, 2),
            },
            &mut ctx,
        );
        assert_eq!(p.parked_reads(), 0);
        assert_eq!(ctx.read_replies.len(), 1);
        assert_eq!(ctx.read_replies[0].id.seq, 7);
        assert_eq!(&ctx.read_replies[0].result[..], b"read:7");
        assert!(
            ctx.commits.is_empty() && ctx.log.is_empty(),
            "local reads never commit or log"
        );
    }

    #[test]
    fn read_waits_for_smaller_pending_commands_to_commit() {
        let mut p = replica(2, 3);
        let mut ctx = TestCtx::new(1_000);
        // A write with a small timestamp is pending (not yet majority-
        // acked); a read stamped above it must wait even once every
        // clock passed the stamp.
        p.on_message(
            r(0),
            prepare(Epoch::ZERO, ts(500, 0), r(0), cmd(1)),
            &mut ctx,
        );
        ctx.take_sends();
        p.on_client_read(read(9), &mut ctx);
        advance_latest_tv(&mut p, 50_000, &mut ctx);
        assert_eq!(
            p.parked_reads(),
            1,
            "a pending write below the stamp blocks the read"
        );
        assert!(ctx.read_replies.is_empty());
        // Majority acks arrive, the write commits, the read releases.
        for k in [0u16, 1, 2] {
            p.on_message(
                r(k),
                RsmMsg::PrepareOk {
                    epoch: Epoch::ZERO,
                    up_to: ts(500, 0),
                    clock_ts: ts(60_000 + k as u64, k),
                },
                &mut ctx,
            );
        }
        assert_eq!(ctx.commits.len(), 1, "the write committed");
        assert_eq!(p.parked_reads(), 0);
        assert_eq!(ctx.read_replies.len(), 1);
    }

    #[test]
    fn read_falls_back_to_replication_without_sm_access() {
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        ctx.serve_reads = false; // driver cannot answer reads locally
        p.on_client_read(read(3), &mut ctx);
        advance_latest_tv(&mut p, 50_000, &mut ctx);
        assert_eq!(p.parked_reads(), 0);
        assert!(ctx.read_replies.is_empty());
        assert!(
            ctx.sends
                .iter()
                .any(|(_, m)| matches!(m, RsmMsg::PrepareBatch { .. })),
            "unserveable read must be replicated as an ordinary command"
        );
    }

    #[test]
    fn frozen_replica_queues_reads_and_restamps_on_unfreeze() {
        let mut p = replica(0, 3);
        let mut ctx = TestCtx::new(1_000);
        p.frozen = true;
        p.on_client_read(read(4), &mut ctx);
        assert_eq!(p.parked_reads(), 0, "frozen: not stamped yet");
        assert_eq!(p.queued_reads.len(), 1);
        p.frozen = false;
        p.drain_buffers(&mut ctx);
        assert_eq!(p.queued_reads.len(), 0);
        assert_eq!(p.parked_reads(), 1, "re-stamped and parked");
        advance_latest_tv(&mut p, 50_000, &mut ctx);
        assert_eq!(ctx.read_replies.len(), 1);
    }

    #[test]
    fn clock_rsm_reports_local_stable_read_path() {
        let p = replica(0, 3);
        assert_eq!(p.read_path(), ReadPath::LocalStable);
    }

    #[test]
    fn order_key_is_epoch_major() {
        let a = order_key(Epoch(0), ts(999_999, 7));
        let b = order_key(Epoch(1), ts(1, 0));
        assert!(a < b);
        let c = order_key(Epoch(1), ts(1, 1));
        assert!(b < c);
    }

    #[test]
    fn order_keys_distinct_across_max_membership() {
        // All 256 replica ids at the same micros must produce distinct,
        // ordered keys (the full width of the 8-bit lane).
        let keys: Vec<u64> = (0..MAX_ORDER_KEY_REPLICAS)
            .map(|i| order_key(Epoch::ZERO, ts(42, i)))
            .collect();
        let mut sorted = keys.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "order-key layout")]
    fn oversized_membership_is_rejected_at_construction() {
        // Replica ids ≥ 256 would silently collide in the order key's
        // 8-bit replica lane; construction must refuse them outright.
        let _ = ClockRsm::new(
            r(0),
            Membership::uniform(300),
            ClockRsmConfig::default().with_delta_us(None),
        );
    }
}
