//! # clock-rsm
//!
//! The **Clock-RSM** replication protocol from *"Clock-RSM: Low-Latency
//! Inter-Datacenter State Machine Replication Using Loosely Synchronized
//! Physical Clocks"* (Du, Sciascia, Elnikety, Zwaenepoel, Pedone —
//! DSN 2014), implemented in full: the replication protocol (Algorithm 1),
//! the periodic clock-time broadcast extension (Algorithm 2), the
//! reconfiguration protocol (Algorithm 3), and log-based recovery
//! (Section V-B).
//!
//! ## The protocol in one paragraph
//!
//! Clock-RSM is a *multi-leader* protocol: every replica orders its own
//! clients' commands by stamping them with its loosely synchronized
//! physical clock (ties broken by replica id) and broadcasting a `PREPARE`.
//! Each replica logs the command and broadcasts a `PREPAREOK` carrying its
//! own clock reading, promising never to send a smaller timestamp. A
//! command with timestamp `ts` commits at a replica once three conditions
//! hold (Section III-B):
//!
//! 1. **Majority replication** — a majority of replicas logged it;
//! 2. **Stable order** — every replica's latest known timestamp exceeds
//!    `ts`, so no smaller-timestamped command can still arrive;
//! 3. **Prefix replication** — every smaller-timestamped command has
//!    committed.
//!
//! Because the three conditions are awaited *in parallel* (overlapped),
//! commit latency is the **max** of their individual latencies rather than
//! the sum — the paper's central latency result (Table II).
//!
//! Safety never depends on clock synchronization quality: skewed clocks
//! only delay the stable-order condition. The property tests in this crate
//! and the workspace integration tests run the protocol with second-scale
//! skews to demonstrate exactly that.
//!
//! ## Linearizable local reads
//!
//! The same stable-order machinery yields **local reads at any replica**
//! (`rsm_core::read`): a read is stamped from the replica's monotonic
//! send-timestamp discipline and served from the local state machine
//! once the stable timestamp — `min(LatestTV)` with every smaller
//! pending command committed — passes the stamp. Any write whose reply
//! preceded the read's issue committed only after *this* replica's own
//! clock evidence exceeded the write's timestamp, so the stamp (strictly
//! above everything this replica ever sent) always orders after it.
//! Like commits, the read path keeps the paper's design rule intact:
//! clock skew moves only the stable-timestamp *wait*, never the answer —
//! in contrast to leader-lease reads (see the `paxos` crate), where a
//! clock bound is load-bearing for safety.
//!
//! ## Batching
//!
//! The data plane generalizes Algorithm 1 to whole batches: a driver can
//! hand the replica an ordered [`Batch`](rsm_core::Batch) of client
//! commands (knob: [`BatchPolicy`](rsm_core::BatchPolicy) on the driver),
//! which is stamped with **one** head timestamp — command `i` implicitly
//! holds `head + i` — and broadcast as a single `PREPAREBATCH`. Receivers
//! log every command but answer with a single **cumulative** `PREPAREOK`:
//! a per-originator watermark covering the batch's last timestamp (sound
//! because an originator emits prepares in increasing timestamp order
//! over FIFO channels). Commit checks then read a small watermark matrix
//! instead of per-timestamp ack counters, so the hot path does integer
//! compares and the message count per command drops by the batch factor.
//! Batch size 1 is byte-for-byte the paper's protocol.
//!
//! ## Failure handling
//!
//! Clock-RSM stalls if a replica in the current configuration stops
//! sending messages (condition 2 needs everyone). The reconfiguration
//! protocol (Algorithm 3) removes suspected replicas and reintegrates
//! recovered ones: a reconfigurer `SUSPEND`s the system, collects logged
//! commands with timestamps beyond its last commit from a majority, runs a
//! consensus instance (single-decree Paxos from the `paxos` crate) on the
//! `(config, timestamp, commands)` triple, and every replica applies the
//! decision — fetching missed commands via state transfer if it lags —
//! before resuming in the next epoch.
//!
//! In-flight commands that did not reach the decision are dropped by the
//! epoch change (their clients retry, as in any at-most-once RSM without
//! client session tables); commands that reached any majority member are
//! preserved by the overlapping-majority argument of the paper's Claim 3.
//!
//! ## Example
//!
//! ```
//! use clock_rsm::{ClockRsm, ClockRsmConfig};
//! use rsm_core::{Membership, ReplicaId};
//!
//! let replica = ClockRsm::new(
//!     ReplicaId::new(0),
//!     Membership::uniform(5),
//!     ClockRsmConfig::default(),
//! );
//! assert_eq!(replica.epoch().0, 0);
//! assert_eq!(replica.membership().config().len(), 5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod log;
pub mod msg;
pub mod reconfig;
pub mod replica;

pub use config::ClockRsmConfig;
pub use log::LogRec;
pub use msg::{Decision, LoggedCmd, RsmMsg};
pub use replica::ClockRsm;
