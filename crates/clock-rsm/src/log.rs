//! Clock-RSM stable log records.

use rsm_core::checkpoint::Checkpoint;
use rsm_core::command::Command;
use rsm_core::config::Epoch;
use rsm_core::id::ReplicaId;
use rsm_core::time::Timestamp;

/// A record in a Clock-RSM replica's stable log.
///
/// As in Section V-B of the paper, entries are of two main types —
/// `Prepare` (a command with its timestamp, appended in *arrival* order,
/// which is not necessarily timestamp order across originators) and
/// `Commit` (a commit mark, always appended in timestamp order, always
/// after its corresponding `Prepare`). `Epoch` records additionally
/// persist reconfiguration decisions so a recovering replica knows the
/// configuration it crashed in.
#[derive(Debug, Clone)]
pub enum LogRec {
    /// A logged command (Algorithm 1, line 7).
    Prepare {
        /// The command's timestamp.
        ts: Timestamp,
        /// The originating replica.
        origin: ReplicaId,
        /// The command.
        cmd: Command,
    },
    /// A commit mark (Algorithm 1, line 15); strictly increasing `ts`.
    Commit {
        /// The committed timestamp.
        ts: Timestamp,
    },
    /// A reconfiguration took effect (Algorithm 3, lines 21–22).
    Epoch {
        /// The new epoch.
        epoch: Epoch,
        /// The configuration installed with it.
        config: Vec<ReplicaId>,
    },
    /// A state machine checkpoint (Section V-B: "Checkpointing can be
    /// used to avoid replaying the whole log and speed up the recovery
    /// process"), in the shared [`rsm_core::checkpoint`] shape. The
    /// applied watermark is **inclusive**: every command with a timestamp
    /// ≤ `applied` is reflected in the snapshot. Recovery restores the
    /// snapshot and skips re-executing everything at or below it.
    Checkpoint(Checkpoint<Timestamp>),
}

impl LogRec {
    /// The timestamp of a `Prepare` or `Commit` record, if any.
    pub fn ts(&self) -> Option<Timestamp> {
        match self {
            LogRec::Prepare { ts, .. } | LogRec::Commit { ts } => Some(*ts),
            LogRec::Epoch { .. } | LogRec::Checkpoint(_) => None,
        }
    }

    /// Whether this is a `Prepare` record.
    pub fn is_prepare(&self) -> bool {
        matches!(self, LogRec::Prepare { .. })
    }

    /// Whether this is a `Commit` record.
    pub fn is_commit(&self) -> bool {
        matches!(self, LogRec::Commit { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::CommandId;
    use rsm_core::id::ClientId;

    #[test]
    fn accessors() {
        let ts = Timestamp::new(5, ReplicaId::new(1));
        let prep = LogRec::Prepare {
            ts,
            origin: ReplicaId::new(1),
            cmd: Command::new(
                CommandId::new(ClientId::new(ReplicaId::new(1), 0), 1),
                Bytes::from_static(b"x"),
            ),
        };
        assert!(prep.is_prepare());
        assert!(!prep.is_commit());
        assert_eq!(prep.ts(), Some(ts));
        let commit = LogRec::Commit { ts };
        assert!(commit.is_commit());
        let epoch = LogRec::Epoch {
            epoch: Epoch(1),
            config: vec![ReplicaId::new(0)],
        };
        assert_eq!(epoch.ts(), None);
    }
}
