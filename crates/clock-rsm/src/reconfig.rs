//! The reconfiguration protocol (Algorithm 3) and recovery reintegration
//! (Section V-B).
//!
//! Reconfiguration removes suspected replicas from — and reintegrates
//! recovered replicas into — the active configuration:
//!
//! 1. A reconfigurer broadcasts `SUSPEND(e, cts)` where `e` is the next
//!    epoch and `cts` its last commit mark. Receivers freeze their logs
//!    (stop processing `REQUEST`/`PREPARE`) and return every logged
//!    command with a timestamp greater than `cts`.
//! 2. With a majority of `SUSPENDOK`s collected, the reconfigurer proposes
//!    `(config_new, cts, ∪cmds)` in the `e`-th consensus instance — a
//!    single-decree Paxos from the `paxos` crate. Any command that could
//!    have committed anywhere was logged by a majority and therefore
//!    appears in the collected union (overlapping majorities — the paper's
//!    Claim 3).
//! 3. On `DECIDE`, every replica applies the decision: replicas whose last
//!    commit mark is below the decided timestamp first fetch the missing
//!    commands from a majority (`STATETRANSFER`); un-executed `PREPARE`
//!    records beyond the decided timestamp are dropped from the log; the
//!    decided commands are executed in timestamp order; finally the new
//!    epoch and configuration are installed and normal processing resumes.
//!
//! Replicas that missed decisions (crashed or partitioned) catch up via
//! `DecisionRequest`/`DecisionCatchup` and apply decisions strictly in
//! epoch order.

use std::collections::{BTreeMap, HashSet};
use std::ops::Bound::{Excluded, Unbounded};

use paxos::synod::{SynodInstance, SynodMsg};
use rsm_core::command::Committed;
use rsm_core::config::Epoch;
use rsm_core::id::ReplicaId;
use rsm_core::protocol::Context;
use rsm_core::time::Timestamp;

use crate::log::LogRec;
use crate::msg::{Decision, LoggedCmd, RsmMsg};
use crate::replica::{order_key, ClockRsm, TOKEN_RECONFIG_RETRY, TOKEN_SYNOD_RETRY};

/// Where a replica currently stands in the reconfiguration protocol.
#[derive(Debug)]
pub(crate) enum Phase {
    /// Normal operation.
    Idle,
    /// This replica is the reconfigurer, collecting `SUSPENDOK`s
    /// (Algorithm 3, lines 4–5).
    Collecting {
        /// The epoch being established.
        target_epoch: Epoch,
        /// Our last commit mark when the reconfiguration started.
        cts: Timestamp,
        /// The configuration we will propose.
        new_config: Vec<ReplicaId>,
        /// Union of commands collected so far, keyed by timestamp.
        collected: BTreeMap<Timestamp, LoggedCmd>,
        /// Replicas that have answered.
        responders: HashSet<ReplicaId>,
    },
    /// Proposal handed to consensus; waiting for the decision.
    AwaitingDecision {
        /// The epoch being decided.
        target_epoch: Epoch,
    },
    /// Applying a decision but lagging: fetching missed commands from a
    /// majority (lines 25–28).
    FetchingState {
        /// The epoch whose decision is being applied.
        epoch: Epoch,
        /// The decision awaiting application.
        decision: Decision,
        /// Commands fetched so far.
        fetched: BTreeMap<Timestamp, LoggedCmd>,
        /// Replicas that have answered.
        responders: HashSet<ReplicaId>,
        /// Exclusive lower bound of the fetch.
        from_ts: Timestamp,
        /// Inclusive upper bound of the fetch.
        to_ts: Timestamp,
    },
}

/// Reconfiguration state carried by every replica: the current phase, the
/// per-epoch consensus instances, and the full decision history used to
/// catch up lagging replicas.
#[derive(Debug)]
pub struct ReconfigEngine {
    id: ReplicaId,
    spec: Vec<ReplicaId>,
    pub(crate) phase: Phase,
    synods: BTreeMap<Epoch, SynodInstance<Decision>>,
    pub(crate) decisions: BTreeMap<Epoch, Decision>,
    /// The decision value this replica proposed for its own rejoin
    /// reconfiguration, keyed by target epoch. A recovered replica only
    /// trusts a decision built from its *own* post-recovery `SUSPEND`
    /// collection to cover the commands it missed while down — see
    /// `finish_apply`.
    pub(crate) rejoin_proposal: Option<(Epoch, Decision)>,
}

impl ReconfigEngine {
    pub(crate) fn new(id: ReplicaId, spec: Vec<ReplicaId>) -> Self {
        ReconfigEngine {
            id,
            spec,
            phase: Phase::Idle,
            synods: BTreeMap::new(),
            decisions: BTreeMap::new(),
            rejoin_proposal: None,
        }
    }

    /// Whether no reconfiguration activity is in flight at this replica.
    pub fn is_idle(&self) -> bool {
        matches!(self.phase, Phase::Idle)
    }

    /// Drops consensus instances for epochs at or below `epoch` (their
    /// decisions are retained for catch-up).
    pub(crate) fn forget_instances_up_to(&mut self, epoch: Epoch) {
        self.synods = self.synods.split_off(&Epoch(epoch.0 + 1));
    }

    fn synod_for(&mut self, epoch: Epoch) -> &mut SynodInstance<Decision> {
        let (id, spec) = (self.id, self.spec.clone());
        self.synods
            .entry(epoch)
            .or_insert_with(|| SynodInstance::new(id, spec))
    }
}

impl ClockRsm {
    // ------------------------------------------------------------------
    // Trigger paths
    // ------------------------------------------------------------------

    /// Starts a reconfiguration establishing `new_config` in the next
    /// epoch (Algorithm 3, lines 1–6). No-op when one is already running.
    pub fn trigger_reconfigure(&mut self, new_config: Vec<ReplicaId>, ctx: &mut dyn Context<Self>) {
        if !self.reconfig.is_idle() {
            return;
        }
        if new_config.len() < self.membership.majority() {
            return; // cannot survive below a majority of Spec
        }
        let target_epoch = self.epoch().next();
        let cts = self.last_committed;
        self.reconfig.phase = Phase::Collecting {
            target_epoch,
            cts,
            new_config,
            collected: BTreeMap::new(),
            responders: HashSet::new(),
        };
        for r in self.membership.spec().to_vec() {
            ctx.send(
                r,
                RsmMsg::Suspend {
                    epoch: target_epoch,
                    cts,
                },
            );
        }
        ctx.set_timer(self.cfg.reconfig_retry_us, TOKEN_RECONFIG_RETRY);
    }

    /// Recovery reintegration: rejoin the configuration via a
    /// reconfiguration that includes this replica (Section V-B).
    pub(crate) fn start_rejoin(&mut self, ctx: &mut dyn Context<Self>) {
        if !self.reconfig.is_idle() {
            return;
        }
        let mut config = self.membership.config().to_vec();
        if !config.contains(&self.id) {
            config.push(self.id);
            config.sort_unstable();
        }
        self.trigger_reconfigure(config, ctx);
    }

    // ------------------------------------------------------------------
    // SUSPEND / SUSPENDOK (lines 4–10)
    // ------------------------------------------------------------------

    pub(crate) fn handle_suspend(
        &mut self,
        from: ReplicaId,
        epoch: Epoch,
        cts: Timestamp,
        ctx: &mut dyn Context<Self>,
    ) {
        if epoch <= self.epoch() {
            // The reconfigurer is behind: hand it the decisions it missed.
            self.send_catchup(from, Epoch(epoch.0.saturating_sub(1)), ctx);
            return;
        }
        self.freeze(ctx);
        let cmds: Vec<LoggedCmd> = self
            .history
            .range((Excluded(cts), Unbounded))
            .map(|(&ts, (origin, cmd))| LoggedCmd {
                ts,
                origin: *origin,
                cmd: cmd.clone(),
            })
            .collect();
        ctx.send(from, RsmMsg::SuspendOk { epoch, cmds });
    }

    pub(crate) fn handle_suspend_ok(
        &mut self,
        from: ReplicaId,
        epoch: Epoch,
        cmds: Vec<LoggedCmd>,
        ctx: &mut dyn Context<Self>,
    ) {
        let majority = self.membership.majority();
        let ready = match &mut self.reconfig.phase {
            Phase::Collecting {
                target_epoch,
                collected,
                responders,
                cts,
                ..
            } if *target_epoch == epoch => {
                if responders.insert(from) {
                    for lc in cmds {
                        if lc.ts > *cts {
                            collected.insert(lc.ts, lc);
                        }
                    }
                }
                responders.len() >= majority
            }
            _ => false,
        };
        if !ready {
            return;
        }
        // PROPOSE(e, config_new, cts, ∪cmds) — line 6.
        let Phase::Collecting {
            target_epoch,
            cts,
            new_config,
            collected,
            ..
        } = std::mem::replace(&mut self.reconfig.phase, Phase::Idle)
        else {
            unreachable!("checked above");
        };
        let decision = Decision {
            config: new_config,
            cts,
            cmds: collected.into_values().collect(),
        };
        if self.needs_rejoin {
            self.reconfig.rejoin_proposal = Some((target_epoch, decision.clone()));
        }
        self.reconfig.phase = Phase::AwaitingDecision { target_epoch };
        let mut out = Vec::new();
        self.reconfig
            .synod_for(target_epoch)
            .propose(decision, &mut out);
        self.route_synod(target_epoch, out, ctx);
        ctx.set_timer(self.cfg.synod_retry_us, TOKEN_SYNOD_RETRY);
    }

    // ------------------------------------------------------------------
    // Consensus plumbing
    // ------------------------------------------------------------------

    fn route_synod(
        &mut self,
        epoch: Epoch,
        out: Vec<(ReplicaId, SynodMsg<Decision>)>,
        ctx: &mut dyn Context<Self>,
    ) {
        for (to, msg) in out {
            ctx.send(to, RsmMsg::Synod { epoch, msg });
        }
    }

    pub(crate) fn handle_synod(
        &mut self,
        from: ReplicaId,
        epoch: Epoch,
        msg: SynodMsg<Decision>,
        ctx: &mut dyn Context<Self>,
    ) {
        if epoch <= self.epoch() {
            // Already installed: the sender lags behind.
            self.send_catchup(from, Epoch(epoch.0.saturating_sub(1)), ctx);
            return;
        }
        let mut out = Vec::new();
        let decided = self
            .reconfig
            .synod_for(epoch)
            .on_message(from, msg, &mut out);
        self.route_synod(epoch, out, ctx);
        if let Some(decision) = decided {
            self.receive_decision(epoch, decision, ctx);
        }
    }

    pub(crate) fn synod_retry(&mut self, ctx: &mut dyn Context<Self>) {
        let Phase::AwaitingDecision { target_epoch } = self.reconfig.phase else {
            return;
        };
        if target_epoch <= self.epoch() {
            self.reconfig.phase = Phase::Idle;
            return;
        }
        let mut out = Vec::new();
        self.reconfig.synod_for(target_epoch).on_retry(&mut out);
        self.route_synod(target_epoch, out, ctx);
        ctx.set_timer(self.cfg.synod_retry_us, TOKEN_SYNOD_RETRY);
    }

    // ------------------------------------------------------------------
    // Decisions (lines 11–24)
    // ------------------------------------------------------------------

    fn receive_decision(&mut self, epoch: Epoch, decision: Decision, ctx: &mut dyn Context<Self>) {
        self.reconfig.decisions.entry(epoch).or_insert(decision);
        self.apply_ready_decisions(ctx);
    }

    /// Applies stashed decisions strictly in epoch order; pauses when a
    /// state transfer is required and resumes when it completes.
    pub(crate) fn apply_ready_decisions(&mut self, ctx: &mut dyn Context<Self>) {
        loop {
            if matches!(self.reconfig.phase, Phase::FetchingState { .. }) {
                return; // resumes from handle_retrieve_reply
            }
            let next = self.epoch().next();
            let Some(decision) = self.reconfig.decisions.get(&next).cloned() else {
                return;
            };
            if !self.begin_apply(next, decision, ctx) {
                return;
            }
        }
    }

    /// Starts applying the decision for epoch `e`; returns false when a
    /// state transfer was kicked off instead of completing synchronously.
    fn begin_apply(&mut self, e: Epoch, decision: Decision, ctx: &mut dyn Context<Self>) -> bool {
        self.freeze(ctx);
        let cts_local = self.last_committed;
        if decision.cts > cts_local {
            // Lines 13–14: we lag behind the decided commit point.
            let (from_ts, to_ts) = (cts_local, decision.cts);
            self.reconfig.phase = Phase::FetchingState {
                epoch: e,
                decision,
                fetched: BTreeMap::new(),
                responders: HashSet::new(),
                from_ts,
                to_ts,
            };
            for r in self.membership.spec().to_vec() {
                ctx.send(r, RsmMsg::RetrieveCmds { from_ts, to_ts });
            }
            ctx.set_timer(self.cfg.reconfig_retry_us, TOKEN_RECONFIG_RETRY);
            return false;
        }
        self.finish_apply(e, decision, BTreeMap::new(), ctx);
        true
    }

    /// Lines 15–24: prune the log, execute the decided commands in
    /// timestamp order, install the new epoch/configuration, and resume.
    fn finish_apply(
        &mut self,
        e: Epoch,
        decision: Decision,
        fetched: BTreeMap<Timestamp, LoggedCmd>,
        ctx: &mut dyn Context<Self>,
    ) {
        self.reconfig.phase = Phase::Idle;
        let mut to_apply = fetched;
        for lc in &decision.cmds {
            to_apply.insert(lc.ts, lc.clone());
        }

        // Line 15: drop un-executed PREPAREs beyond the decided timestamp
        // that did not make it into the decision — they can never have
        // committed anywhere.
        self.history.retain(|ts, _| {
            *ts <= decision.cts || to_apply.contains_key(ts) || *ts <= self.last_committed
        });

        // Lines 16–20: execute everything not yet executed, in ts order.
        let old_epoch = self.epoch();
        for (ts, lc) in to_apply {
            if ts <= self.last_committed {
                continue; // already executed locally
            }
            if self.keeps_history() {
                self.history.insert(ts, (lc.origin, lc.cmd.clone()));
            }
            ctx.log_append(LogRec::Prepare {
                ts,
                origin: lc.origin,
                cmd: lc.cmd.clone(),
            });
            ctx.log_append(LogRec::Commit { ts });
            self.last_committed = ts;
            self.committed_count += 1;
            let payload_len = lc.cmd.payload.len();
            let applied = self.sessions.commit_dedup(
                self.id,
                Committed {
                    cmd: lc.cmd,
                    origin: lc.origin,
                    order_hint: order_key(old_epoch, ts),
                },
                ctx,
            );
            if applied {
                self.checkpointer.note_commit(payload_len);
            }
        }

        // Lines 21–23: install epoch + configuration, reset LatestTV.
        self.membership.install(e, decision.config.clone());
        ctx.log_append(LogRec::Epoch {
            epoch: e,
            config: decision.config.clone(),
        });
        self.reconfig.forget_instances_up_to(e);
        for tv in &mut self.latest_tv {
            *tv = Timestamp::ZERO;
        }
        self.pending.clear();
        for row in &mut self.acked {
            row.fill(0);
        }
        // The trace cursors track the watermarks just reset; left high
        // they would suppress Replicated/Stable stamps for the new epoch.
        self.obs_stable_floor = Timestamp::ZERO;
        self.obs_repl_floor.fill(0);
        self.wait_queue.clear();
        self.wait_armed_for = None;
        self.send_floor = self.send_floor.max(self.last_committed.micros());
        // Reset the failure detector horizon so surviving members are not
        // immediately re-suspected after a long freeze.
        let clock = ctx.clock();
        for h in &mut self.last_heard {
            *h = clock;
        }

        // Line 24: resume.
        self.frozen = false;
        if self.membership.in_config(self.id) {
            if self.needs_rejoin {
                // A recovered replica's prepared history has a hole:
                // every command prepared while it was down. Of the
                // decisions it may apply, only one built from its *own*
                // post-recovery SUSPEND collection provably covers that
                // hole — the collection freezes a majority after the
                // recovery, so every command prepared earlier is either
                // committed below `cts` (fetched by state transfer) or
                // in a responder's returned log tail. A decision learned
                // by catch-up, or a competing proposal that won the
                // epoch, may have been collected before the recovery and
                // would silently omit commands committed during the
                // outage. Keep rejoining until our own proposal wins.
                let healed = self
                    .reconfig
                    .rejoin_proposal
                    .as_ref()
                    .is_some_and(|(pe, pd)| *pe == e && *pd == decision);
                if healed {
                    self.needs_rejoin = false;
                    self.reconfig.rejoin_proposal = None;
                } else {
                    ctx.set_timer(self.cfg.reconfig_retry_us, TOKEN_RECONFIG_RETRY);
                }
            }
        } else {
            // We are alive but excluded (removed while partitioned, or a
            // competing decision won): ask to rejoin, as a recovered
            // replica would (Section V-B).
            self.needs_rejoin = true;
            ctx.set_timer(self.cfg.reconfig_retry_us, TOKEN_RECONFIG_RETRY);
        }
        self.drain_buffers(ctx);
        self.try_commit(ctx);
    }

    fn freeze(&mut self, ctx: &mut dyn Context<Self>) {
        if !self.frozen {
            self.frozen = true;
            self.frozen_since = ctx.clock();
        }
    }

    // ------------------------------------------------------------------
    // State transfer (lines 25–31)
    // ------------------------------------------------------------------

    pub(crate) fn handle_retrieve(
        &mut self,
        from: ReplicaId,
        from_ts: Timestamp,
        to_ts: Timestamp,
        ctx: &mut dyn Context<Self>,
    ) {
        let cmds: Vec<LoggedCmd> = self
            .history
            .range((Excluded(from_ts), Unbounded))
            .take_while(|(&ts, _)| ts <= to_ts)
            .map(|(&ts, (origin, cmd))| LoggedCmd {
                ts,
                origin: *origin,
                cmd: cmd.clone(),
            })
            .collect();
        ctx.send(
            from,
            RsmMsg::RetrieveReply {
                from_ts,
                to_ts,
                cmds,
            },
        );
    }

    pub(crate) fn handle_retrieve_reply(
        &mut self,
        from: ReplicaId,
        from_ts: Timestamp,
        to_ts: Timestamp,
        cmds: Vec<LoggedCmd>,
        ctx: &mut dyn Context<Self>,
    ) {
        let majority = self.membership.majority();
        let ready = match &mut self.reconfig.phase {
            Phase::FetchingState {
                fetched,
                responders,
                from_ts: f,
                to_ts: t,
                ..
            } if *f == from_ts && *t == to_ts => {
                if responders.insert(from) {
                    for lc in cmds {
                        if lc.ts > from_ts && lc.ts <= to_ts {
                            fetched.insert(lc.ts, lc);
                        }
                    }
                }
                responders.len() >= majority
            }
            _ => false,
        };
        if !ready {
            return;
        }
        let Phase::FetchingState {
            epoch,
            decision,
            fetched,
            ..
        } = std::mem::replace(&mut self.reconfig.phase, Phase::Idle)
        else {
            unreachable!("checked above");
        };
        self.finish_apply(epoch, decision, fetched, ctx);
        self.apply_ready_decisions(ctx);
    }

    // ------------------------------------------------------------------
    // Epoch catch-up
    // ------------------------------------------------------------------

    pub(crate) fn send_catchup(
        &mut self,
        to: ReplicaId,
        have_epoch: Epoch,
        ctx: &mut dyn Context<Self>,
    ) {
        let decisions: Vec<(Epoch, Decision)> = self
            .reconfig
            .decisions
            .range(Epoch(have_epoch.0 + 1)..)
            .map(|(e, d)| (*e, d.clone()))
            .collect();
        if !decisions.is_empty() {
            ctx.send(to, RsmMsg::DecisionCatchup { decisions });
        }
    }

    pub(crate) fn handle_decision_request(
        &mut self,
        from: ReplicaId,
        have_epoch: Epoch,
        ctx: &mut dyn Context<Self>,
    ) {
        self.send_catchup(from, have_epoch, ctx);
    }

    pub(crate) fn handle_decision_catchup(
        &mut self,
        decisions: Vec<(Epoch, Decision)>,
        ctx: &mut dyn Context<Self>,
    ) {
        for (e, d) in decisions {
            self.reconfig.decisions.entry(e).or_insert(d);
        }
        self.apply_ready_decisions(ctx);
    }

    // ------------------------------------------------------------------
    // Retry / liveness backstop
    // ------------------------------------------------------------------

    pub(crate) fn reconfig_retry(&mut self, ctx: &mut dyn Context<Self>) {
        match &self.reconfig.phase {
            Phase::Collecting {
                target_epoch,
                cts,
                responders,
                ..
            } => {
                if *target_epoch <= self.epoch() {
                    // Superseded by an installed decision.
                    self.reconfig.phase = Phase::Idle;
                    if self.needs_rejoin {
                        self.start_rejoin(ctx);
                    }
                    return;
                }
                let (epoch, cts) = (*target_epoch, *cts);
                let missing: Vec<ReplicaId> = self
                    .membership
                    .spec()
                    .iter()
                    .copied()
                    .filter(|r| !responders.contains(r))
                    .collect();
                for r in missing {
                    ctx.send(r, RsmMsg::Suspend { epoch, cts });
                }
                ctx.set_timer(self.cfg.reconfig_retry_us, TOKEN_RECONFIG_RETRY);
            }
            Phase::FetchingState {
                from_ts,
                to_ts,
                responders,
                ..
            } => {
                let (from_ts, to_ts) = (*from_ts, *to_ts);
                let missing: Vec<ReplicaId> = self
                    .membership
                    .spec()
                    .iter()
                    .copied()
                    .filter(|r| !responders.contains(r))
                    .collect();
                for r in missing {
                    ctx.send(r, RsmMsg::RetrieveCmds { from_ts, to_ts });
                }
                ctx.set_timer(self.cfg.reconfig_retry_us, TOKEN_RECONFIG_RETRY);
            }
            Phase::AwaitingDecision { .. } => {
                // The synod retry timer drives this phase.
            }
            Phase::Idle => {
                if self.needs_rejoin {
                    self.start_rejoin(ctx);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClockRsmConfig;
    use bytes::Bytes;
    use rsm_core::command::{Command, CommandId};
    use rsm_core::config::Membership;
    use rsm_core::id::ClientId;
    use rsm_core::protocol::{Protocol, TimerToken};
    use rsm_core::time::Micros;

    struct TestCtx {
        sends: Vec<(ReplicaId, RsmMsg)>,
        commits: Vec<Committed>,
        log: Vec<LogRec>,
        clock: Micros,
    }

    impl TestCtx {
        fn new() -> Self {
            TestCtx {
                sends: Vec::new(),
                commits: Vec::new(),
                log: Vec::new(),
                clock: 1_000,
            }
        }
    }

    impl Context<ClockRsm> for TestCtx {
        fn clock(&mut self) -> Micros {
            self.clock += 1;
            self.clock
        }
        fn send(&mut self, to: ReplicaId, msg: RsmMsg) {
            self.sends.push((to, msg));
        }
        fn log_append(&mut self, rec: LogRec) {
            self.log.push(rec);
        }
        fn log_rewrite(&mut self, recs: Vec<LogRec>) {
            self.log = recs;
        }
        fn commit(&mut self, c: Committed) -> Bytes {
            let result = c.cmd.payload.clone();
            self.commits.push(c);
            result
        }
        fn set_timer(&mut self, _after: Micros, _token: TimerToken) {}
    }

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    fn replica(i: u16) -> ClockRsm {
        ClockRsm::new(
            r(i),
            Membership::uniform(3),
            ClockRsmConfig::default().with_failure_detection(Some(100_000)),
        )
    }

    fn cmd(seq: u64) -> Command {
        Command::new(
            CommandId::new(ClientId::new(r(0), 0), seq),
            Bytes::from_static(b"x"),
        )
    }

    fn lc(micros: u64, origin: u16, seq: u64) -> LoggedCmd {
        LoggedCmd {
            ts: Timestamp::new(micros, r(origin)),
            origin: r(origin),
            cmd: cmd(seq),
        }
    }

    #[test]
    fn trigger_broadcasts_suspend_to_spec() {
        let mut p = replica(0);
        let mut ctx = TestCtx::new();
        p.trigger_reconfigure(vec![r(0), r(1)], &mut ctx);
        let suspends = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, RsmMsg::Suspend { .. }))
            .count();
        assert_eq!(suspends, 3, "SUSPEND goes to all of Spec incl self");
        assert!(!p.reconfig.is_idle());
    }

    #[test]
    fn trigger_refuses_sub_majority_config() {
        let mut p = replica(0);
        let mut ctx = TestCtx::new();
        p.trigger_reconfigure(vec![r(0)], &mut ctx);
        assert!(p.reconfig.is_idle());
        assert!(ctx.sends.is_empty());
    }

    #[test]
    fn suspend_freezes_and_returns_log_tail() {
        let mut p = replica(1);
        let mut ctx = TestCtx::new();
        // Seed the history with two prepares.
        p.history.insert(Timestamp::new(100, r(0)), (r(0), cmd(1)));
        p.history.insert(Timestamp::new(200, r(0)), (r(0), cmd(2)));
        p.handle_suspend(r(0), Epoch(1), Timestamp::new(100, r(0)), &mut ctx);
        assert!(p.is_frozen());
        let (_, reply) = ctx
            .sends
            .iter()
            .find(|(_, m)| matches!(m, RsmMsg::SuspendOk { .. }))
            .unwrap();
        match reply {
            RsmMsg::SuspendOk { cmds, .. } => {
                assert_eq!(cmds.len(), 1, "only entries beyond cts are returned");
                assert_eq!(cmds[0].ts, Timestamp::new(200, r(0)));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn stale_suspend_gets_catchup_not_freeze() {
        let mut p = replica(1);
        let mut ctx = TestCtx::new();
        p.reconfig.decisions.insert(
            Epoch(1),
            Decision {
                config: vec![r(0), r(1)],
                cts: Timestamp::ZERO,
                cmds: vec![],
            },
        );
        p.membership.install(Epoch(1), vec![r(0), r(1), r(2)]);
        p.handle_suspend(r(2), Epoch(1), Timestamp::ZERO, &mut ctx);
        assert!(!p.is_frozen());
        assert!(ctx
            .sends
            .iter()
            .any(|(to, m)| *to == r(2) && matches!(m, RsmMsg::DecisionCatchup { .. })));
    }

    /// End-to-end reconfiguration across three hand-driven replicas:
    /// remove r2, verify everyone installs epoch 1 and the surviving
    /// configuration, and that a collected command commits everywhere.
    #[test]
    fn full_reconfiguration_round() {
        let mut nodes: Vec<ClockRsm> = (0..3).map(replica).collect();
        let mut ctxs: Vec<TestCtx> = (0..3).map(|_| TestCtx::new()).collect();

        // r1 has logged a command that r0 (the reconfigurer) hasn't seen.
        let orphan = lc(500, 1, 42);
        nodes[1]
            .history
            .insert(orphan.ts, (orphan.origin, orphan.cmd.clone()));

        // r0 suspects r2 and starts removing it.
        nodes[0].trigger_reconfigure(vec![r(0), r(1)], &mut ctxs[0]);

        // Message pump between r0 and r1 only (r2 is "dead").
        let mut inflight: Vec<(ReplicaId, ReplicaId, RsmMsg)> = Vec::new();
        let drain = |i: usize,
                     ctxs: &mut Vec<TestCtx>,
                     inflight: &mut Vec<(ReplicaId, ReplicaId, RsmMsg)>| {
            for (to, m) in std::mem::take(&mut ctxs[i].sends) {
                inflight.push((r(i as u16), to, m));
            }
        };
        drain(0, &mut ctxs, &mut inflight);
        let mut steps = 0;
        while let Some((from, to, msg)) = inflight.pop() {
            steps += 1;
            assert!(steps < 1_000, "reconfiguration did not converge");
            if to == r(2) {
                continue; // r2 is down
            }
            let idx = to.index();
            nodes[idx].on_message(from, msg, &mut ctxs[idx]);
            drain(idx, &mut ctxs, &mut inflight);
        }

        for i in [0usize, 1] {
            assert_eq!(nodes[i].epoch(), Epoch(1), "replica {i}");
            assert_eq!(nodes[i].membership().config(), &[r(0), r(1)]);
            assert!(!nodes[i].is_frozen());
            // The orphan command was collected from r1 and executed.
            assert_eq!(ctxs[i].commits.len(), 1, "replica {i}");
            assert_eq!(ctxs[i].commits[0].cmd.id.seq, 42);
        }
        // Epoch record landed in both logs.
        for ctx in &ctxs[..2] {
            assert!(ctx
                .log
                .iter()
                .any(|l| matches!(l, LogRec::Epoch { epoch, .. } if *epoch == Epoch(1))));
        }
    }

    #[test]
    fn fetching_state_requests_missing_range() {
        let mut p = replica(2);
        let mut ctx = TestCtx::new();
        // A decision whose commit point is ahead of ours.
        let d = Decision {
            config: vec![r(0), r(1), r(2)],
            cts: Timestamp::new(900, r(0)),
            cmds: vec![lc(950, 0, 7)],
        };
        p.reconfig.decisions.insert(Epoch(1), d);
        p.apply_ready_decisions(&mut ctx);
        assert!(matches!(p.reconfig.phase, Phase::FetchingState { .. }));
        let retrieves = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, RsmMsg::RetrieveCmds { .. }))
            .count();
        assert_eq!(retrieves, 3);
        // Majority replies with the missing command at ts 800.
        for k in [0u16, 1] {
            p.handle_retrieve_reply(
                r(k),
                Timestamp::ZERO,
                Timestamp::new(900, r(0)),
                vec![lc(800, 0, 6)],
                &mut ctx,
            );
        }
        assert!(p.reconfig.is_idle());
        assert_eq!(p.epoch(), Epoch(1));
        // Both the fetched (800) and decided (950) commands executed, in order.
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[0].cmd.id.seq, 6);
        assert_eq!(ctx.commits[1].cmd.id.seq, 7);
    }

    #[test]
    fn decision_catchup_applies_in_epoch_order() {
        let mut p = replica(2);
        let mut ctx = TestCtx::new();
        let d1 = Decision {
            config: vec![r(0), r(1), r(2)],
            cts: Timestamp::ZERO,
            cmds: vec![lc(100, 0, 1)],
        };
        let d2 = Decision {
            config: vec![r(0), r(1), r(2)],
            cts: Timestamp::new(100, r(0)),
            cmds: vec![lc(200, 0, 2)],
        };
        // Deliver out of order: epoch 2 first.
        p.handle_decision_catchup(vec![(Epoch(2), d2)], &mut ctx);
        assert_eq!(p.epoch(), Epoch(0), "cannot apply epoch 2 before 1");
        p.handle_decision_catchup(vec![(Epoch(1), d1)], &mut ctx);
        assert_eq!(p.epoch(), Epoch(2));
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[0].cmd.id.seq, 1);
        assert_eq!(ctx.commits[1].cmd.id.seq, 2);
        assert!(ctx.commits[0].order_hint < ctx.commits[1].order_hint);
    }

    #[test]
    fn retrieve_serves_requested_range() {
        let mut p = replica(0);
        let mut ctx = TestCtx::new();
        for (m, seq) in [(100u64, 1u64), (200, 2), (300, 3)] {
            p.history.insert(Timestamp::new(m, r(0)), (r(0), cmd(seq)));
        }
        p.handle_retrieve(
            r(1),
            Timestamp::new(100, r(0)),
            Timestamp::new(250, r(0)),
            &mut ctx,
        );
        let (_, reply) = &ctx.sends[0];
        match reply {
            RsmMsg::RetrieveReply { cmds, .. } => {
                assert_eq!(cmds.len(), 1);
                assert_eq!(cmds[0].cmd.id.seq, 2);
            }
            _ => unreachable!(),
        }
    }
}
