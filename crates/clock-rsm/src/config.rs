//! Tuning knobs for a Clock-RSM replica.

use rsm_core::checkpoint::CheckpointPolicy;
use rsm_core::session::DEFAULT_SESSION_WINDOW;
use rsm_core::time::{Micros, MILLIS};

/// Configuration of a Clock-RSM replica.
///
/// Defaults follow the paper's EC2 deployment: the Algorithm 2 extension
/// enabled with `Δ = 5 ms`, failure detection disabled (latency
/// experiments run failure-free; enable it for fault-tolerance tests).
///
/// # Examples
///
/// ```
/// use clock_rsm::ClockRsmConfig;
/// let cfg = ClockRsmConfig::default()
///     .with_delta_us(Some(5_000))
///     .with_failure_detection(Some(500_000));
/// assert_eq!(cfg.delta_us, Some(5_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockRsmConfig {
    /// Interval of the periodic clock-time broadcast (Algorithm 2), or
    /// `None` to disable the extension (making the protocol quiescent).
    pub delta_us: Option<Micros>,
    /// Failure detector timeout: a configuration member not heard from for
    /// this long is suspected and a reconfiguration removing it is
    /// triggered. `None` disables automatic reconfiguration.
    pub fd_timeout_us: Option<Micros>,
    /// Retry interval for the reconfiguration consensus proposer.
    pub synod_retry_us: Micros,
    /// Retry interval for suspend collection and state transfer.
    pub reconfig_retry_us: Micros,
    /// Checkpoint policy (shared subsystem, `rsm_core::checkpoint`):
    /// write a state machine checkpoint to the log every N commits / M
    /// bytes so recovery restores the snapshot instead of replaying the
    /// whole log (Section V-B), optionally compacting the log below the
    /// checkpoint watermark. Compaction is honoured only while the
    /// prepared-command history index is not required (failure detection
    /// off): reconfiguration state transfer rebuilds that index from the
    /// log, so truncating it would starve `SUSPENDOK`/`RETRIEVECMDS`.
    /// Requires a driver with snapshot support (both the simulator and
    /// the threaded runtime provide it).
    pub checkpoint: CheckpointPolicy,
    /// Bound on the client-session dedup window
    /// (`rsm_core::session::SessionTable`): how many distinct clients can
    /// have a retry recognised as a duplicate at any time. See the
    /// session module docs for the eviction staleness contract.
    pub session_window: usize,
}

impl Default for ClockRsmConfig {
    fn default() -> Self {
        ClockRsmConfig {
            delta_us: Some(5 * MILLIS),
            fd_timeout_us: None,
            synod_retry_us: 200 * MILLIS,
            reconfig_retry_us: 200 * MILLIS,
            checkpoint: CheckpointPolicy::DISABLED,
            session_window: DEFAULT_SESSION_WINDOW,
        }
    }
}

impl ClockRsmConfig {
    /// Sets the clock-time broadcast interval (`None` disables Algorithm 2).
    pub fn with_delta_us(mut self, delta: Option<Micros>) -> Self {
        self.delta_us = delta;
        self
    }

    /// Enables (or disables) the failure detector with the given timeout.
    ///
    /// # Panics
    ///
    /// Panics if failure detection is enabled while the clock-time
    /// broadcast is disabled: the detector relies on `CLOCKTIME` traffic
    /// as its heartbeat.
    pub fn with_failure_detection(mut self, timeout_us: Option<Micros>) -> Self {
        if timeout_us.is_some() {
            assert!(
                self.delta_us.is_some(),
                "failure detection requires the CLOCKTIME heartbeat (delta_us)"
            );
        }
        self.fd_timeout_us = timeout_us;
        self
    }

    /// Sets the consensus retry interval.
    pub fn with_synod_retry_us(mut self, us: Micros) -> Self {
        self.synod_retry_us = us;
        self
    }

    /// Sets the suspend/state-transfer retry interval.
    pub fn with_reconfig_retry_us(mut self, us: Micros) -> Self {
        self.reconfig_retry_us = us;
        self
    }

    /// Enables checkpointing every `n` commits (`None` disables), without
    /// a byte trigger or compaction. Sugar over
    /// [`with_checkpoint`](ClockRsmConfig::with_checkpoint).
    ///
    /// # Panics
    ///
    /// Panics if `n` is `Some(0)`.
    pub fn with_checkpoint_every(mut self, n: Option<u64>) -> Self {
        self.checkpoint = self.checkpoint.with_every(n);
        self
    }

    /// Sets the client-session dedup window bound.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_session_window(mut self, n: usize) -> Self {
        assert!(n > 0, "session window must be positive");
        self.session_window = n;
        self
    }

    /// Sets the full checkpoint policy (count/byte triggers, compaction).
    pub fn with_checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = policy;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_deployment() {
        let cfg = ClockRsmConfig::default();
        assert_eq!(cfg.delta_us, Some(5_000));
        assert_eq!(cfg.fd_timeout_us, None);
    }

    #[test]
    #[should_panic(expected = "CLOCKTIME")]
    fn fd_requires_heartbeat() {
        let _ = ClockRsmConfig::default()
            .with_delta_us(None)
            .with_failure_detection(Some(1_000_000));
    }

    #[test]
    fn builders_chain() {
        let cfg = ClockRsmConfig::default()
            .with_delta_us(Some(1_000))
            .with_failure_detection(Some(10_000))
            .with_synod_retry_us(5_000)
            .with_reconfig_retry_us(7_000);
        assert_eq!(cfg.fd_timeout_us, Some(10_000));
        assert_eq!(cfg.synod_retry_us, 5_000);
        assert_eq!(cfg.reconfig_retry_us, 7_000);
    }
}
