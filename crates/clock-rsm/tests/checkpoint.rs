//! Checkpointing (Section V-B): recovery restores the latest snapshot and
//! replays only the log suffix, instead of re-executing everything.

use bytes::Bytes;
use clock_rsm::{ClockRsm, ClockRsmConfig, LogRec, RsmMsg};
use rsm_core::batch::Batch;
use rsm_core::checkpoint::CheckpointPolicy;
use rsm_core::command::{Command, CommandId, Committed};
use rsm_core::config::{Epoch, Membership};
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::time::{Micros, Timestamp};

/// A context whose "state machine" is an append-only list of executed
/// sequence numbers, with snapshot/restore support.
struct CtxWithSm {
    clock: Micros,
    log: Vec<LogRec>,
    executed: Vec<u64>,
    commits: Vec<Committed>,
    support_snapshots: bool,
}

impl CtxWithSm {
    fn new(support_snapshots: bool) -> Self {
        CtxWithSm {
            clock: 1_000,
            log: Vec::new(),
            executed: Vec::new(),
            commits: Vec::new(),
            support_snapshots,
        }
    }
}

impl Context<ClockRsm> for CtxWithSm {
    fn clock(&mut self) -> Micros {
        self.clock += 1;
        self.clock
    }
    fn send(&mut self, _to: ReplicaId, _msg: RsmMsg) {}
    fn log_append(&mut self, rec: LogRec) {
        self.log.push(rec);
    }
    fn log_rewrite(&mut self, recs: Vec<LogRec>) {
        self.log = recs;
    }
    fn commit(&mut self, c: Committed) -> Bytes {
        let result = c.cmd.payload.clone();
        self.executed.push(c.cmd.id.seq);
        self.commits.push(c);
        result
    }
    fn set_timer(&mut self, _after: Micros, _token: TimerToken) {}
    fn sm_snapshot(&mut self) -> Option<Bytes> {
        if !self.support_snapshots {
            return None;
        }
        let mut buf = Vec::new();
        for s in &self.executed {
            buf.extend_from_slice(&s.to_be_bytes());
        }
        Some(Bytes::from(buf))
    }
    fn sm_install(&mut self, snapshot: Bytes) -> bool {
        if !self.support_snapshots {
            return false;
        }
        self.executed = snapshot
            .chunks(8)
            .map(|c| u64::from_be_bytes(c.try_into().expect("8-byte chunks")))
            .collect();
        true
    }
}

fn r(i: u16) -> ReplicaId {
    ReplicaId::new(i)
}

fn cmd(seq: u64) -> Command {
    Command::new(
        CommandId::new(ClientId::new(r(0), 0), seq),
        Bytes::from_static(b"x"),
    )
}

fn replica(checkpoint_every: Option<u64>) -> ClockRsm {
    ClockRsm::new(
        r(2),
        Membership::uniform(3),
        ClockRsmConfig::default()
            .with_delta_us(None)
            .with_checkpoint_every(checkpoint_every),
    )
}

fn replica_with(policy: CheckpointPolicy) -> ClockRsm {
    ClockRsm::new(
        r(2),
        Membership::uniform(3),
        ClockRsmConfig::default()
            .with_delta_us(None)
            .with_checkpoint(policy),
    )
}

/// Drives `count` full commits through a replica by hand.
fn commit_n(p: &mut ClockRsm, ctx: &mut CtxWithSm, count: u64) {
    for seq in 1..=count {
        let ts = Timestamp::new(10_000 * seq, r(0));
        p.on_message(
            r(0),
            RsmMsg::PrepareBatch {
                epoch: Epoch::ZERO,
                ts,
                origin: r(0),
                cmds: Batch::single(cmd(seq)),
            },
            ctx,
        );
        for k in 0..3u16 {
            p.on_message(
                r(k),
                RsmMsg::PrepareOk {
                    epoch: Epoch::ZERO,
                    up_to: ts,
                    clock_ts: Timestamp::new(ts.micros() + 10 + k as u64, r(k)),
                },
                ctx,
            );
        }
    }
}

#[test]
fn checkpoints_are_written_at_the_interval() {
    let mut p = replica(Some(3));
    let mut ctx = CtxWithSm::new(true);
    commit_n(&mut p, &mut ctx, 7);
    let checkpoints: Vec<&LogRec> = ctx
        .log
        .iter()
        .filter(|l| matches!(l, LogRec::Checkpoint { .. }))
        .collect();
    assert_eq!(
        checkpoints.len(),
        2,
        "7 commits at interval 3 -> 2 checkpoints"
    );
    match checkpoints[1] {
        LogRec::Checkpoint(cp) => {
            assert_eq!(
                cp.applied.micros(),
                60_000,
                "second checkpoint covers commit 6"
            );
            assert_eq!(cp.snapshot.len(), 6 * 8);
        }
        _ => unreachable!(),
    }
}

#[test]
fn byte_budget_triggers_checkpoints_before_the_count_interval() {
    // 1-byte commands, a 2-byte budget and a distant count interval: the
    // byte trigger must fire every two commits.
    let mut p = replica_with(CheckpointPolicy::every(1_000_000).with_every_bytes(Some(2)));
    let mut ctx = CtxWithSm::new(true);
    commit_n(&mut p, &mut ctx, 6);
    let checkpoints = ctx
        .log
        .iter()
        .filter(|l| matches!(l, LogRec::Checkpoint(_)))
        .count();
    assert_eq!(checkpoints, 3, "6 one-byte commits over a 2-byte budget");
}

#[test]
fn compaction_truncates_the_log_below_the_watermark() {
    let mut p = replica_with(CheckpointPolicy::every(3).with_compaction(true));
    let mut ctx = CtxWithSm::new(true);
    commit_n(&mut p, &mut ctx, 7);
    // The last compaction ran at commit 6: the log holds that checkpoint
    // plus only the records above its watermark (commit 7's pair).
    let below_watermark = ctx
        .log
        .iter()
        .filter_map(LogRec::ts)
        .filter(|ts| ts.micros() <= 60_000)
        .count();
    assert_eq!(below_watermark, 0, "records below the watermark survive");
    assert!(
        ctx.log.len() <= 4,
        "log must stay bounded, got {} records",
        ctx.log.len()
    );
    // Recovery from the compacted log reproduces the full state.
    let mut p2 = replica_with(CheckpointPolicy::every(3).with_compaction(true));
    let mut ctx2 = CtxWithSm::new(true);
    p2.on_recover(&ctx.log.clone(), &mut ctx2);
    assert_eq!(ctx2.executed, vec![1, 2, 3, 4, 5, 6, 7]);
    assert_eq!(p2.last_committed_ts().micros(), 70_000);
}

#[test]
fn recovery_restores_snapshot_and_replays_only_suffix() {
    let mut p = replica(Some(3));
    let mut ctx = CtxWithSm::new(true);
    commit_n(&mut p, &mut ctx, 7);
    let log = ctx.log.clone();

    // Fresh replica + fresh context: recover from the log.
    let mut p2 = replica(Some(3));
    let mut ctx2 = CtxWithSm::new(true);
    p2.on_recover(&log, &mut ctx2);

    // The snapshot restored commands 1..=6; only command 7 was replayed.
    assert_eq!(ctx2.executed, vec![1, 2, 3, 4, 5, 6, 7]);
    assert_eq!(ctx2.commits.len(), 1, "only the suffix is re-executed");
    assert_eq!(ctx2.commits[0].cmd.id.seq, 7);
    assert_eq!(p2.last_committed_ts().micros(), 70_000);
}

#[test]
fn recovery_without_snapshot_support_replays_everything() {
    let mut p = replica(Some(3));
    let mut ctx = CtxWithSm::new(true);
    commit_n(&mut p, &mut ctx, 7);
    let log = ctx.log.clone();

    // The recovering driver cannot restore snapshots: full replay.
    let mut p2 = replica(Some(3));
    let mut ctx2 = CtxWithSm::new(false);
    p2.on_recover(&log, &mut ctx2);
    assert_eq!(ctx2.executed, vec![1, 2, 3, 4, 5, 6, 7]);
    assert_eq!(ctx2.commits.len(), 7);
}

#[test]
fn no_checkpoints_without_configuration() {
    let mut p = replica(None);
    let mut ctx = CtxWithSm::new(true);
    commit_n(&mut p, &mut ctx, 10);
    assert!(
        !ctx.log
            .iter()
            .any(|l| matches!(l, LogRec::Checkpoint { .. })),
        "checkpointing must be opt-in"
    );
}

#[test]
fn snapshotless_driver_never_receives_checkpoint_records() {
    let mut p = replica(Some(2));
    let mut ctx = CtxWithSm::new(false);
    commit_n(&mut p, &mut ctx, 6);
    assert!(
        !ctx.log
            .iter()
            .any(|l| matches!(l, LogRec::Checkpoint { .. })),
        "no snapshots -> no checkpoint records"
    );
}
