//! Protocol-level property tests: drive a cluster of `ClockRsm` replicas
//! through randomized message schedules (respecting per-link FIFO, the
//! paper's channel assumption) with skewed clocks, and assert the paper's
//! safety claims directly:
//!
//! * Claim 1 — every replica executes commands in strictly increasing
//!   timestamp order;
//! * Claim 2 — all replicas execute the same total order;
//! * Agreement under full delivery — once every message drains, every
//!   replica has executed every command.
//!
//! This pump explores interleavings the discrete-event simulator (which
//! ties delivery order to latencies) cannot reach.

use std::collections::VecDeque;

use bytes::Bytes;
use clock_rsm::{ClockRsm, ClockRsmConfig, LogRec, RsmMsg};
use proptest::prelude::*;
use rsm_core::command::{Command, CommandId, Committed};
use rsm_core::config::Membership;
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::time::Micros;

/// Per-replica context: a skewed logical clock plus captured effects.
struct PumpCtx {
    clock: Micros,
    sends: Vec<(ReplicaId, RsmMsg)>,
    timers: Vec<(Micros, TimerToken)>,
    commits: Vec<Committed>,
}

impl PumpCtx {
    fn new(start_clock: Micros) -> Self {
        PumpCtx {
            clock: start_clock,
            sends: Vec::new(),
            timers: Vec::new(),
            commits: Vec::new(),
        }
    }
}

impl Context<ClockRsm> for PumpCtx {
    fn clock(&mut self) -> Micros {
        self.clock += 1;
        self.clock
    }
    fn send(&mut self, to: ReplicaId, msg: RsmMsg) {
        self.sends.push((to, msg));
    }
    fn log_append(&mut self, _rec: LogRec) {}
    fn log_rewrite(&mut self, _recs: Vec<LogRec>) {}
    fn commit(&mut self, c: Committed) -> Bytes {
        let result = c.cmd.payload.clone();
        self.commits.push(c);
        result
    }
    fn set_timer(&mut self, after: Micros, token: TimerToken) {
        self.timers.push((after, token));
    }
}

struct Pump {
    n: usize,
    replicas: Vec<ClockRsm>,
    ctxs: Vec<PumpCtx>,
    /// FIFO per (from, to) link.
    links: Vec<Vec<VecDeque<RsmMsg>>>,
}

impl Pump {
    fn new(n: usize, clock_offsets: &[Micros]) -> Self {
        let replicas = (0..n)
            .map(|i| {
                ClockRsm::new(
                    ReplicaId::new(i as u16),
                    Membership::uniform(n as u16),
                    ClockRsmConfig::default().with_delta_us(None),
                )
            })
            .collect();
        let ctxs = (0..n).map(|i| PumpCtx::new(clock_offsets[i])).collect();
        Pump {
            n,
            replicas,
            ctxs,
            links: vec![vec![VecDeque::new(); n]; n],
        }
    }

    fn flush_sends(&mut self, from: usize) {
        for (to, msg) in std::mem::take(&mut self.ctxs[from].sends) {
            self.links[from][to.index()].push_back(msg);
        }
    }

    fn submit(&mut self, at: usize, seq: u64) {
        let cmd = Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(at as u16), 0), seq),
            Bytes::from_static(b"w"),
        );
        self.replicas[at].on_client_request(cmd, &mut self.ctxs[at]);
        self.flush_sends(at);
    }

    /// Delivers the head of one link, if non-empty. Returns true on work.
    fn deliver(&mut self, from: usize, to: usize) -> bool {
        let Some(msg) = self.links[from][to].pop_front() else {
            return false;
        };
        self.replicas[to].on_message(ReplicaId::new(from as u16), msg, &mut self.ctxs[to]);
        self.flush_sends(to);
        true
    }

    /// Fires one pending timer at a replica (advancing its clock past the
    /// deadline so waited PREPAREOKs become sendable).
    fn fire_timer(&mut self, at: usize) -> bool {
        let Some((after, token)) = self.ctxs[at].timers.pop() else {
            return false;
        };
        self.ctxs[at].clock += after;
        self.replicas[at].on_timer(token, &mut self.ctxs[at]);
        self.flush_sends(at);
        true
    }

    /// Drains everything deterministically: rotate links and timers until
    /// quiescent.
    fn drain(&mut self) {
        loop {
            let mut progressed = false;
            for from in 0..self.n {
                for to in 0..self.n {
                    while self.deliver(from, to) {
                        progressed = true;
                    }
                }
            }
            for r in 0..self.n {
                while self.fire_timer(r) {
                    progressed = true;
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn committed_ids(&self, r: usize) -> Vec<CommandId> {
        self.ctxs[r].commits.iter().map(|c| c.cmd.id).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random submissions interleaved with random (FIFO) deliveries and
    /// timer fires, then a full drain: total order, timestamp order, and
    /// agreement must all hold.
    #[test]
    fn random_schedules_preserve_safety(
        n in 3usize..=5,
        offsets in proptest::collection::vec(1_000u64..500_000, 5),
        // (replica, action) stream: 0..n submit, n.. deliver choices.
        script in proptest::collection::vec((0usize..5, 0usize..25, any::<bool>()), 1..120),
    ) {
        let mut pump = Pump::new(n, &offsets[..n]);
        let mut seq = 0u64;
        for (who, link, fire) in script {
            let who = who % n;
            // Interleave: submit, then a few random delivery attempts.
            seq += 1;
            pump.submit(who, seq);
            let (from, to) = (link % n, (link / n) % n);
            pump.deliver(from, to);
            if fire {
                pump.fire_timer(who);
            }
        }
        pump.drain();

        // Agreement: everyone executed every command.
        for r in 0..n {
            prop_assert_eq!(
                pump.ctxs[r].commits.len() as u64, seq,
                "replica {} executed {} of {} commands",
                r, pump.ctxs[r].commits.len(), seq
            );
        }
        // Total order (Claim 2): identical sequences everywhere.
        let reference = pump.committed_ids(0);
        for r in 1..n {
            prop_assert_eq!(&pump.committed_ids(r), &reference, "replica {} diverged", r);
        }
        // Timestamp order (Claim 1): order hints strictly increase.
        for r in 0..n {
            let hints: Vec<u64> = pump.ctxs[r].commits.iter().map(|c| c.order_hint).collect();
            prop_assert!(hints.windows(2).all(|w| w[0] < w[1]), "replica {r} out of order");
        }
    }

    /// With wildly different clock offsets (up to half a second apart, vs
    /// zero network latency), the wait-out path (Algorithm 1 line 8) must
    /// keep acknowledgements timestamp-ordered and commits correct.
    #[test]
    fn extreme_skew_unit_level(
        offsets in proptest::collection::vec(1u64..500_000, 3),
        order in proptest::collection::vec(0usize..3, 3..30),
    ) {
        let mut pump = Pump::new(3, &offsets);
        let mut seq = 0u64;
        for who in order {
            seq += 1;
            pump.submit(who, seq);
        }
        pump.drain();
        let reference = pump.committed_ids(0);
        prop_assert_eq!(reference.len() as u64, seq);
        for r in 1..3 {
            prop_assert_eq!(&pump.committed_ids(r), &reference);
        }
    }
}

/// Deterministic regression: concurrent submissions at every replica with
/// adversarial delivery (deliver all PREPAREs before any PREPAREOK).
#[test]
fn prepares_before_acks_schedule() {
    let mut pump = Pump::new(3, &[10_000, 20_000, 30_000]);
    for (i, seq) in [(0usize, 1u64), (1, 2), (2, 3)] {
        pump.submit(i, seq);
    }
    // Deliver only PREPAREs first: acks queue up behind the waits.
    for from in 0..3 {
        for to in 0..3 {
            pump.deliver(from, to);
        }
    }
    pump.drain();
    let a = pump.committed_ids(0);
    assert_eq!(a.len(), 3);
    assert_eq!(pump.committed_ids(1), a);
    assert_eq!(pump.committed_ids(2), a);
}
