//! Property tests for Mencius-bcast: under random FIFO delivery schedules
//! and proposal placements, all replicas resolve the slot space in the
//! same way (total order) and every command eventually executes
//! everywhere once messages drain.

use std::collections::VecDeque;

use bytes::Bytes;
use mencius::{MenciusBcast, MenciusLogRec, MenciusMsg};
use proptest::prelude::*;
use rsm_core::command::{Command, CommandId, Committed};
use rsm_core::config::Membership;
use rsm_core::id::{ClientId, ReplicaId};
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::time::Micros;

struct PumpCtx {
    clock: Micros,
    sends: Vec<(ReplicaId, MenciusMsg)>,
    commits: Vec<Committed>,
}

impl Context<MenciusBcast> for PumpCtx {
    fn clock(&mut self) -> Micros {
        self.clock += 1;
        self.clock
    }
    fn send(&mut self, to: ReplicaId, msg: MenciusMsg) {
        self.sends.push((to, msg));
    }
    fn log_append(&mut self, _rec: MenciusLogRec) {}
    fn log_rewrite(&mut self, _recs: Vec<MenciusLogRec>) {}
    fn commit(&mut self, c: Committed) -> Bytes {
        let result = c.cmd.payload.clone();
        self.commits.push(c);
        result
    }
    fn set_timer(&mut self, _after: Micros, _token: TimerToken) {}
}

struct Pump {
    n: usize,
    replicas: Vec<MenciusBcast>,
    ctxs: Vec<PumpCtx>,
    links: Vec<Vec<VecDeque<MenciusMsg>>>,
}

impl Pump {
    fn new(n: usize) -> Self {
        Pump {
            n,
            replicas: (0..n)
                .map(|i| MenciusBcast::new(ReplicaId::new(i as u16), Membership::uniform(n as u16)))
                .collect(),
            ctxs: (0..n)
                .map(|_| PumpCtx {
                    clock: 0,
                    sends: Vec::new(),
                    commits: Vec::new(),
                })
                .collect(),
            links: vec![vec![VecDeque::new(); n]; n],
        }
    }

    fn flush(&mut self, from: usize) {
        for (to, msg) in std::mem::take(&mut self.ctxs[from].sends) {
            self.links[from][to.index()].push_back(msg);
        }
    }

    fn submit(&mut self, at: usize, seq: u64) {
        let cmd = Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(at as u16), 0), seq),
            Bytes::from_static(b"m"),
        );
        self.replicas[at].on_client_request(cmd, &mut self.ctxs[at]);
        self.flush(at);
    }

    fn deliver(&mut self, from: usize, to: usize) -> bool {
        let Some(msg) = self.links[from][to].pop_front() else {
            return false;
        };
        self.replicas[to].on_message(ReplicaId::new(from as u16), msg, &mut self.ctxs[to]);
        self.flush(to);
        true
    }

    fn drain(&mut self) {
        loop {
            let mut progressed = false;
            for from in 0..self.n {
                for to in 0..self.n {
                    while self.deliver(from, to) {
                        progressed = true;
                    }
                }
            }
            if !progressed {
                return;
            }
        }
    }

    fn committed_ids(&self, r: usize) -> Vec<CommandId> {
        self.ctxs[r].commits.iter().map(|c| c.cmd.id).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random proposers, random partial deliveries, then a drain: all
    /// replicas execute all commands in the same slot order.
    #[test]
    fn random_schedules_agree(
        n in 3usize..=5,
        submissions in proptest::collection::vec(0usize..5, 1..40),
        partial in proptest::collection::vec((0usize..5, 0usize..5), 0..150),
    ) {
        let mut pump = Pump::new(n);
        let mut seq = 0;
        let mut partial = partial.into_iter();
        for who in submissions {
            seq += 1;
            pump.submit(who % n, seq);
            if let Some((f, t)) = partial.next() {
                pump.deliver(f % n, t % n);
            }
        }
        pump.drain();
        for r in 0..n {
            prop_assert_eq!(
                pump.ctxs[r].commits.len() as u64, seq,
                "replica {} executed {}/{} commands", r, pump.ctxs[r].commits.len(), seq
            );
        }
        let reference = pump.committed_ids(0);
        for r in 1..n {
            prop_assert_eq!(&pump.committed_ids(r), &reference, "replica {} diverged", r);
        }
        // Slot order strictly increases.
        for r in 0..n {
            let slots: Vec<u64> = pump.ctxs[r].commits.iter().map(|c| c.order_hint).collect();
            prop_assert!(slots.windows(2).all(|w| w[0] < w[1]));
        }
    }

    /// A single proposer's commands always execute in submission order —
    /// its own slots are taken in increasing order.
    #[test]
    fn single_proposer_fifo(count in 1u64..30, who in 0usize..3) {
        let mut pump = Pump::new(3);
        for seq in 1..=count {
            pump.submit(who, seq);
        }
        pump.drain();
        let seqs: Vec<u64> = pump.ctxs[0].commits.iter().map(|c| c.cmd.id.seq).collect();
        prop_assert_eq!(seqs, (1..=count).collect::<Vec<_>>());
    }
}
