//! # mencius
//!
//! The **Mencius-bcast** baseline of the Clock-RSM paper (Sections IV-C
//! and VI): a multi-leader state machine replication protocol that rotates
//! the coordinator role round-robin over a pre-agreed slot space, with the
//! broadcast latency optimization applied (replicas broadcast their
//! acknowledgements, saving the final commit-notification step).
//!
//! ## Protocol sketch
//!
//! Slot `s` is owned by replica `s mod N`. A replica proposes its clients'
//! commands in its own slots. When a replica observes a proposal in slot
//! `s` it *skips* its own unused slots below `s` — a promise carried on its
//! broadcast acknowledgement — so that the gap slots resolve to no-ops. A
//! slot commits when a majority has acknowledged it **and** every smaller
//! slot is resolved (committed or skipped). Execution is in slot order.
//!
//! This structure reproduces the two behaviours the paper analyzes:
//!
//! * **Delayed commit** (balanced workloads): a command in slot `s` waits
//!   for concurrent commands in smaller slots owned by other replicas,
//!   adding up to one one-way delay beyond Clock-RSM's latency.
//! * **Imbalanced workloads**: with a single active proposer, a slot can
//!   only resolve once *every* other replica's skip promise arrives, so
//!   commit latency is a full round trip to the *farthest* replica
//!   (`2·max_k d(r_i, r_k)`).
//!
//! As in the paper's evaluation, the baseline runs failure-free: slot
//! revocation (running Paxos to steal a dead coordinator's slot) is not
//! modelled; Clock-RSM's reconfiguration is the paper's answer to failures.
//!
//! ## Example
//!
//! ```
//! use mencius::MenciusBcast;
//! use rsm_core::{Membership, ReplicaId};
//!
//! let m = MenciusBcast::new(ReplicaId::new(1), Membership::uniform(3));
//! assert_eq!(m.owner_of_slot(4), ReplicaId::new(1));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod msg;
pub mod replica;

pub use msg::MenciusMsg;
pub use replica::{MenciusBcast, MenciusLogRec, MAX_OWN_HISTORY};
