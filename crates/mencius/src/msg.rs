//! Mencius-bcast wire messages.

use rsm_core::command::Command;
use rsm_core::id::ReplicaId;
use rsm_core::wire::{WireSize, MSG_HEADER_BYTES};

/// Messages exchanged by [`MenciusBcast`](crate::MenciusBcast) replicas.
#[derive(Debug, Clone)]
pub enum MenciusMsg {
    /// The owner of `slot` proposes `cmd` in it.
    Propose {
        /// The slot being filled (owned by the sender).
        slot: u64,
        /// The command bound to the slot.
        cmd: Command,
        /// The replica whose client issued the command (the sender).
        origin: ReplicaId,
    },
    /// Broadcast acknowledgement that the sender logged `slot`, carrying
    /// the sender's **skip promise**: it will never propose in any of its
    /// own slots below `skip_below`.
    AcceptAck {
        /// The slot being acknowledged.
        slot: u64,
        /// The sender's skip promise (exclusive lower bound on its future
        /// own-slot proposals).
        skip_below: u64,
    },
}

impl WireSize for MenciusMsg {
    fn wire_size(&self) -> usize {
        match self {
            MenciusMsg::Propose { cmd, .. } => MSG_HEADER_BYTES + cmd.wire_size(),
            MenciusMsg::AcceptAck { .. } => MSG_HEADER_BYTES + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::CommandId;
    use rsm_core::id::ClientId;

    #[test]
    fn wire_sizes() {
        let cmd = Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1),
            Bytes::from(vec![0u8; 64]),
        );
        let p = MenciusMsg::Propose {
            slot: 0,
            cmd,
            origin: ReplicaId::new(0),
        };
        let a = MenciusMsg::AcceptAck {
            slot: 0,
            skip_below: 3,
        };
        assert!(p.wire_size() > 64);
        assert_eq!(a.wire_size(), MSG_HEADER_BYTES + 8);
    }
}
