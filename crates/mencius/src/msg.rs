//! Mencius-bcast wire messages.
//!
//! Like the other protocols in this workspace, the data plane is
//! batch-shaped: a coordinator proposes a whole [`Batch`] across its next
//! own slots with one message, and acknowledgements are cumulative
//! per-owner slot watermarks, so one ack covers the batch.

use bytes::BytesMut;
use rsm_core::batch::Batch;
use rsm_core::checkpoint::{StateTransferReply, StateTransferRequest};
use rsm_core::command::Command;
use rsm_core::id::ReplicaId;
use rsm_core::read::{ReadReply, ReadRequest};
use rsm_core::wire::MSG_HEADER_BYTES;
use rsm_core::wire::{WireDecode, WireEncode, WireError, WireMsg, WireReader, WireSize};

/// Messages exchanged by [`MenciusBcast`](crate::MenciusBcast) replicas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MenciusMsg {
    /// The owner proposes `cmds` in its own slots `first_slot`,
    /// `first_slot + N`, …, `first_slot + (len-1)·N` (its slot space has
    /// stride `N`, the number of replicas).
    Propose {
        /// The first slot being filled (owned by the sender).
        first_slot: u64,
        /// The commands bound to the consecutive own slots, in order.
        cmds: Batch,
        /// The replica whose clients issued the commands (the sender).
        origin: ReplicaId,
    },
    /// Cumulative broadcast acknowledgement: the sender has logged
    /// **every** slot owned by `up_to_slot % N` at or below `up_to_slot`
    /// (sound because an owner proposes its slots in increasing order
    /// over FIFO channels). Also carries the sender's **skip promise**:
    /// it will never propose in any of its own slots below `skip_below`.
    AcceptAck {
        /// Watermark slot; its owner is `up_to_slot % N`.
        up_to_slot: u64,
        /// The sender's skip promise (exclusive lower bound on its future
        /// own-slot proposals).
        skip_below: u64,
    },
    /// A recovered replica asks the receiver (an owner) to retransmit its
    /// own-slot proposals in `[from_slot, below)`. After a crash the
    /// sender can no longer tell a skipped slot from a proposal lost in
    /// flight while it was down, so absence must be confirmed by the
    /// owner before the slot may resolve as a no-op.
    GapRequest {
        /// First slot of the queried range (owned by the receiver).
        from_slot: u64,
        /// Exclusive upper bound; taken from the owner's observed skip
        /// promise, so no new proposal can land in the range later.
        below: u64,
    },
    /// The owner's answer to a [`MenciusMsg::GapRequest`]: every proposal
    /// it ever made in its own slots within `[from_slot, below)`. Own
    /// slots in the range absent from `cmds` are permanently empty.
    GapFill {
        /// Echo of the queried range start.
        from_slot: u64,
        /// Echo of the queried range bound.
        below: u64,
        /// The retransmitted proposals, as `(slot, command)` pairs.
        cmds: Vec<(u64, Command)>,
    },
    /// A replica stalled at a hole whose owner can no longer answer gap
    /// requests (its retained history was pruned past the hole) asks a
    /// peer for a checkpoint covering the gap (shared subsystem,
    /// `rsm_core::checkpoint`). The watermark is the requester's
    /// next-to-resolve slot.
    StateRequest(StateTransferRequest<u64>),
    /// A peer's checkpoint: its state through every slot below the
    /// carried (exclusive) watermark. The requester installs it and
    /// resumes resolution from the watermark.
    StateReply(StateTransferReply<u64>),
    /// Quorum-read probe (`rsm_core::read`): a replica with a pending
    /// local read asks a peer for its read mark. Clock-free: safety
    /// comes from quorum intersection (a committed slot was logged by a
    /// majority, which intersects the probed majority).
    ReadProbe(ReadRequest),
    /// Answer to a [`ReadProbe`](MenciusMsg::ReadProbe): the responder's
    /// read marks, one coordinate **per owner** instead of one scalar.
    ///
    /// `owner_marks[o]` is an exclusive upper bound on owner `o`'s slots
    /// that any *completed* write could occupy, from the responder's
    /// perspective:
    ///
    /// * for the responder's **own** slot space (`o == responder`) it is
    ///   the responder's execution cursor — tight, because an owner
    ///   replies to a client only after executing the write, so every
    ///   completed own-slot write sits strictly below it. Crucially this
    ///   *excludes* the responder's own in-flight (logged but uncommitted)
    ///   proposals, which a scalar logged-top mark would force the read
    ///   to wait out;
    /// * for every **other** owner it is the logged-top bound (cursor
    ///   raised past every slot of that owner in the responder's slot
    ///   table) — the classic quorum-intersection guarantee: a completed
    ///   write of a non-responding owner was logged by a majority, which
    ///   intersects the probed majority.
    ///
    /// The scalar [`ReadReply::mark`] is still carried for diagnostics
    /// and as the conservative fallback.
    ReadMark {
        /// Probe echo plus the folded scalar mark (conservative).
        reply: ReadReply,
        /// Per-owner exclusive bounds, indexed by owner; see above.
        owner_marks: Vec<u64>,
    },
}

impl WireSize for MenciusMsg {
    fn wire_size(&self) -> usize {
        match self {
            MenciusMsg::Propose { cmds, .. } => MSG_HEADER_BYTES + cmds.wire_size(),
            MenciusMsg::AcceptAck { .. } => MSG_HEADER_BYTES + 8,
            MenciusMsg::GapRequest { .. } => MSG_HEADER_BYTES + 16,
            MenciusMsg::GapFill { cmds, .. } => {
                MSG_HEADER_BYTES + 16 + cmds.iter().map(|(_, c)| 8 + c.wire_size()).sum::<usize>()
            }
            MenciusMsg::StateRequest(req) => req.wire_size(),
            MenciusMsg::StateReply(reply) => reply.wire_size(),
            MenciusMsg::ReadProbe(req) => req.wire_size(),
            MenciusMsg::ReadMark { reply, owner_marks } => {
                reply.wire_size() + 8 * owner_marks.len()
            }
        }
    }
}

impl WireEncode for MenciusMsg {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            MenciusMsg::Propose {
                first_slot,
                cmds,
                origin,
            } => {
                0u8.encode(buf);
                first_slot.encode(buf);
                cmds.encode(buf);
                origin.encode(buf);
            }
            MenciusMsg::AcceptAck {
                up_to_slot,
                skip_below,
            } => {
                1u8.encode(buf);
                up_to_slot.encode(buf);
                skip_below.encode(buf);
            }
            MenciusMsg::GapRequest { from_slot, below } => {
                2u8.encode(buf);
                from_slot.encode(buf);
                below.encode(buf);
            }
            MenciusMsg::GapFill {
                from_slot,
                below,
                cmds,
            } => {
                3u8.encode(buf);
                from_slot.encode(buf);
                below.encode(buf);
                cmds.encode(buf);
            }
            MenciusMsg::StateRequest(req) => {
                4u8.encode(buf);
                req.encode(buf);
            }
            MenciusMsg::StateReply(reply) => {
                5u8.encode(buf);
                reply.encode(buf);
            }
            MenciusMsg::ReadProbe(req) => {
                6u8.encode(buf);
                req.encode(buf);
            }
            MenciusMsg::ReadMark { reply, owner_marks } => {
                7u8.encode(buf);
                reply.encode(buf);
                owner_marks.encode(buf);
            }
        }
    }
}

impl WireDecode for MenciusMsg {
    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(match r.u8()? {
            0 => MenciusMsg::Propose {
                first_slot: u64::decode(r)?,
                cmds: Batch::decode(r)?,
                origin: ReplicaId::decode(r)?,
            },
            1 => MenciusMsg::AcceptAck {
                up_to_slot: u64::decode(r)?,
                skip_below: u64::decode(r)?,
            },
            2 => MenciusMsg::GapRequest {
                from_slot: u64::decode(r)?,
                below: u64::decode(r)?,
            },
            3 => MenciusMsg::GapFill {
                from_slot: u64::decode(r)?,
                below: u64::decode(r)?,
                cmds: Vec::<(u64, Command)>::decode(r)?,
            },
            4 => MenciusMsg::StateRequest(StateTransferRequest::<u64>::decode(r)?),
            5 => MenciusMsg::StateReply(StateTransferReply::<u64>::decode(r)?),
            6 => MenciusMsg::ReadProbe(ReadRequest::decode(r)?),
            7 => MenciusMsg::ReadMark {
                reply: ReadReply::decode(r)?,
                owner_marks: Vec::<u64>::decode(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    ty: "MenciusMsg",
                    tag,
                })
            }
        })
    }
}

impl WireMsg for MenciusMsg {
    /// A [`Propose`](MenciusMsg::Propose) broadcast clones one `Arc`'d
    /// [`Batch`] per peer; batch identity plus the scalar fields decides
    /// byte-identity without touching command payloads.
    fn shares_encoding(&self, prev: &Self) -> bool {
        match (self, prev) {
            (
                MenciusMsg::Propose {
                    first_slot: s1,
                    cmds: c1,
                    origin: o1,
                },
                MenciusMsg::Propose {
                    first_slot: s2,
                    cmds: c2,
                    origin: o2,
                },
            ) => s1 == s2 && o1 == o2 && c1.ptr_eq(c2),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::{Command, CommandId};
    use rsm_core::id::ClientId;

    fn cmd(len: usize) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1),
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn wire_sizes() {
        let p = MenciusMsg::Propose {
            first_slot: 0,
            cmds: Batch::single(cmd(64)),
            origin: ReplicaId::new(0),
        };
        let a = MenciusMsg::AcceptAck {
            up_to_slot: 0,
            skip_below: 3,
        };
        assert!(p.wire_size() > 64);
        assert_eq!(a.wire_size(), MSG_HEADER_BYTES + 8);
    }

    #[test]
    fn batched_propose_amortizes_the_header() {
        let one = MenciusMsg::Propose {
            first_slot: 0,
            cmds: Batch::single(cmd(10)),
            origin: ReplicaId::new(0),
        };
        let eight = MenciusMsg::Propose {
            first_slot: 0,
            cmds: Batch::new((0..8).map(|_| cmd(10)).collect()),
            origin: ReplicaId::new(0),
        };
        assert!(eight.wire_size() < 8 * one.wire_size());
    }
}
