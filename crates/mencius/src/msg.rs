//! Mencius-bcast wire messages.
//!
//! Like the other protocols in this workspace, the data plane is
//! batch-shaped: a coordinator proposes a whole [`Batch`] across its next
//! own slots with one message, and acknowledgements are cumulative
//! per-owner slot watermarks, so one ack covers the batch.

use rsm_core::batch::Batch;
use rsm_core::checkpoint::{StateTransferReply, StateTransferRequest};
use rsm_core::command::Command;
use rsm_core::id::ReplicaId;
use rsm_core::read::{ReadReply, ReadRequest};
use rsm_core::wire::{WireSize, MSG_HEADER_BYTES};

/// Messages exchanged by [`MenciusBcast`](crate::MenciusBcast) replicas.
#[derive(Debug, Clone)]
pub enum MenciusMsg {
    /// The owner proposes `cmds` in its own slots `first_slot`,
    /// `first_slot + N`, …, `first_slot + (len-1)·N` (its slot space has
    /// stride `N`, the number of replicas).
    Propose {
        /// The first slot being filled (owned by the sender).
        first_slot: u64,
        /// The commands bound to the consecutive own slots, in order.
        cmds: Batch,
        /// The replica whose clients issued the commands (the sender).
        origin: ReplicaId,
    },
    /// Cumulative broadcast acknowledgement: the sender has logged
    /// **every** slot owned by `up_to_slot % N` at or below `up_to_slot`
    /// (sound because an owner proposes its slots in increasing order
    /// over FIFO channels). Also carries the sender's **skip promise**:
    /// it will never propose in any of its own slots below `skip_below`.
    AcceptAck {
        /// Watermark slot; its owner is `up_to_slot % N`.
        up_to_slot: u64,
        /// The sender's skip promise (exclusive lower bound on its future
        /// own-slot proposals).
        skip_below: u64,
    },
    /// A recovered replica asks the receiver (an owner) to retransmit its
    /// own-slot proposals in `[from_slot, below)`. After a crash the
    /// sender can no longer tell a skipped slot from a proposal lost in
    /// flight while it was down, so absence must be confirmed by the
    /// owner before the slot may resolve as a no-op.
    GapRequest {
        /// First slot of the queried range (owned by the receiver).
        from_slot: u64,
        /// Exclusive upper bound; taken from the owner's observed skip
        /// promise, so no new proposal can land in the range later.
        below: u64,
    },
    /// The owner's answer to a [`MenciusMsg::GapRequest`]: every proposal
    /// it ever made in its own slots within `[from_slot, below)`. Own
    /// slots in the range absent from `cmds` are permanently empty.
    GapFill {
        /// Echo of the queried range start.
        from_slot: u64,
        /// Echo of the queried range bound.
        below: u64,
        /// The retransmitted proposals, as `(slot, command)` pairs.
        cmds: Vec<(u64, Command)>,
    },
    /// A replica stalled at a hole whose owner can no longer answer gap
    /// requests (its retained history was pruned past the hole) asks a
    /// peer for a checkpoint covering the gap (shared subsystem,
    /// `rsm_core::checkpoint`). The watermark is the requester's
    /// next-to-resolve slot.
    StateRequest(StateTransferRequest<u64>),
    /// A peer's checkpoint: its state through every slot below the
    /// carried (exclusive) watermark. The requester installs it and
    /// resumes resolution from the watermark.
    StateReply(StateTransferReply<u64>),
    /// Quorum-read probe (`rsm_core::read`): a replica with a pending
    /// local read asks a peer for its read mark. Clock-free: safety
    /// comes from quorum intersection (a committed slot was logged by a
    /// majority, which intersects the probed majority).
    ReadProbe(ReadRequest),
    /// Answer to a [`ReadProbe`](MenciusMsg::ReadProbe): the responder's
    /// read mark — its resolution cursor raised to the top of its slot
    /// table, covering every slot of **every owner** it has ever logged
    /// (the all-owners commit watermark the read will park on).
    ReadMark(ReadReply),
}

impl WireSize for MenciusMsg {
    fn wire_size(&self) -> usize {
        match self {
            MenciusMsg::Propose { cmds, .. } => MSG_HEADER_BYTES + cmds.wire_size(),
            MenciusMsg::AcceptAck { .. } => MSG_HEADER_BYTES + 8,
            MenciusMsg::GapRequest { .. } => MSG_HEADER_BYTES + 16,
            MenciusMsg::GapFill { cmds, .. } => {
                MSG_HEADER_BYTES + 16 + cmds.iter().map(|(_, c)| 8 + c.wire_size()).sum::<usize>()
            }
            MenciusMsg::StateRequest(req) => req.wire_size(),
            MenciusMsg::StateReply(reply) => reply.wire_size(),
            MenciusMsg::ReadProbe(req) => req.wire_size(),
            MenciusMsg::ReadMark(reply) => reply.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::{Command, CommandId};
    use rsm_core::id::ClientId;

    fn cmd(len: usize) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), 1),
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn wire_sizes() {
        let p = MenciusMsg::Propose {
            first_slot: 0,
            cmds: Batch::single(cmd(64)),
            origin: ReplicaId::new(0),
        };
        let a = MenciusMsg::AcceptAck {
            up_to_slot: 0,
            skip_below: 3,
        };
        assert!(p.wire_size() > 64);
        assert_eq!(a.wire_size(), MSG_HEADER_BYTES + 8);
    }

    #[test]
    fn batched_propose_amortizes_the_header() {
        let one = MenciusMsg::Propose {
            first_slot: 0,
            cmds: Batch::single(cmd(10)),
            origin: ReplicaId::new(0),
        };
        let eight = MenciusMsg::Propose {
            first_slot: 0,
            cmds: Batch::new((0..8).map(|_| cmd(10)).collect()),
            origin: ReplicaId::new(0),
        };
        assert!(eight.wire_size() < 8 * one.wire_size());
    }
}
