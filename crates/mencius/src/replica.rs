//! The Mencius-bcast replica state machine.

use std::collections::BTreeMap;

use rsm_core::command::{Command, Committed};
use rsm_core::config::Membership;
use rsm_core::id::ReplicaId;
use rsm_core::protocol::{Context, Protocol, TimerToken};

use crate::msg::MenciusMsg;

/// Stable log record of Mencius-bcast.
#[derive(Debug, Clone)]
pub enum MenciusLogRec {
    /// A logged (accepted) proposal for a slot.
    Accept {
        /// Slot number.
        slot: u64,
        /// The command.
        cmd: Command,
        /// Originating replica (the slot owner).
        origin: ReplicaId,
    },
    /// A commit mark: the slot's command was executed.
    Commit {
        /// Slot number.
        slot: u64,
    },
    /// A skip mark: the slot resolved to a no-op.
    Skip {
        /// Slot number.
        slot: u64,
    },
}

#[derive(Debug, Default)]
struct Slot {
    cmd: Option<(Command, ReplicaId)>,
    acks: usize,
}

/// A Mencius replica with the broadcast-acknowledgement optimization.
///
/// Slot `s` is owned by replica `s mod N`; replicas propose only in their
/// own slots and *skip* (promise never to use) their unused slots below any
/// slot they acknowledge. See the crate docs for the protocol sketch and
/// latency behaviour.
#[derive(Debug)]
pub struct MenciusBcast {
    id: ReplicaId,
    membership: Membership,
    n: u64,
    /// The smallest own slot this replica may still propose in.
    next_own_slot: u64,
    /// Per-replica skip promise: replica `k` will never issue a *new*
    /// proposal in a `k`-owned slot below `floor[k]`.
    floor: Vec<u64>,
    slots: BTreeMap<u64, Slot>,
    /// Next slot to execute or skip; all smaller slots are resolved.
    exec_cursor: u64,
}

impl MenciusBcast {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the membership spec.
    pub fn new(id: ReplicaId, membership: Membership) -> Self {
        assert!(membership.in_spec(id), "replica {id} not in spec");
        let n = membership.spec().len() as u64;
        let floor = (0..n).collect();
        MenciusBcast {
            id,
            n,
            next_own_slot: id.index() as u64,
            floor,
            slots: BTreeMap::new(),
            exec_cursor: 0,
            membership,
        }
    }

    /// The owner (round-robin coordinator) of `slot`.
    pub fn owner_of_slot(&self, slot: u64) -> ReplicaId {
        ReplicaId::new((slot % self.n) as u16)
    }

    /// Number of slots resolved (executed or skipped) so far.
    pub fn resolved(&self) -> u64 {
        self.exec_cursor
    }

    fn majority(&self) -> usize {
        self.membership.majority()
    }

    /// The smallest slot owned by this replica that is strictly greater
    /// than `s`.
    fn own_slot_after(&self, s: u64) -> u64 {
        let me = self.id.index() as u64;
        let base = (s + 1).max(me);
        // Round base up to ≡ me (mod n).
        let rem = (base + self.n - me % self.n) % self.n;
        let candidate = if rem == 0 { base } else { base + self.n - rem };
        debug_assert!(candidate % self.n == me && candidate > s);
        candidate
    }

    fn broadcast(&self, msg: MenciusMsg, ctx: &mut dyn Context<Self>) {
        for r in self.membership.config().to_vec() {
            ctx.send(r, msg.clone());
        }
    }

    fn on_propose(
        &mut self,
        slot: u64,
        cmd: Command,
        origin: ReplicaId,
        ctx: &mut dyn Context<Self>,
    ) {
        if slot < self.exec_cursor {
            return; // stale
        }
        ctx.log_append(MenciusLogRec::Accept {
            slot,
            cmd: cmd.clone(),
            origin,
        });
        self.slots.entry(slot).or_default().cmd = Some((cmd, origin));
        // The owner will not propose below its next own slot again.
        let owner = self.owner_of_slot(slot);
        self.floor[owner.index()] = self.floor[owner.index()].max(slot + self.n);
        // Acknowledging slot s implicitly skips our own unused slots < s.
        if self.next_own_slot <= slot {
            self.next_own_slot = self.own_slot_after(slot);
        }
        self.floor[self.id.index()] = self.floor[self.id.index()].max(self.next_own_slot);
        self.broadcast(
            MenciusMsg::AcceptAck {
                slot,
                skip_below: self.next_own_slot,
            },
            ctx,
        );
        self.try_execute(ctx);
    }

    fn on_accept_ack(
        &mut self,
        from: ReplicaId,
        slot: u64,
        skip_below: u64,
        ctx: &mut dyn Context<Self>,
    ) {
        self.floor[from.index()] = self.floor[from.index()].max(skip_below);
        if slot >= self.exec_cursor {
            self.slots.entry(slot).or_default().acks += 1;
        }
        self.try_execute(ctx);
    }

    /// Resolves slots in order: execute a slot once it has a command and a
    /// majority of acknowledgements; skip it once its owner's promise
    /// covers it; otherwise stop and wait (the delayed-commit behaviour).
    fn try_execute(&mut self, ctx: &mut dyn Context<Self>) {
        loop {
            let c = self.exec_cursor;
            let has_cmd = self.slots.get(&c).is_some_and(|s| s.cmd.is_some());
            if has_cmd {
                let ready = self.slots.get(&c).map(|s| s.acks >= self.majority());
                if ready != Some(true) {
                    break;
                }
                let slot = self.slots.remove(&c).expect("checked above");
                let (cmd, origin) = slot.cmd.expect("checked above");
                ctx.log_append(MenciusLogRec::Commit { slot: c });
                self.exec_cursor = c + 1;
                ctx.commit(Committed {
                    cmd,
                    origin,
                    order_hint: c,
                });
            } else if self.floor[self.owner_of_slot(c).index()] > c {
                // The owner promised never to fill this slot: no-op.
                ctx.log_append(MenciusLogRec::Skip { slot: c });
                self.slots.remove(&c);
                self.exec_cursor = c + 1;
            } else {
                break;
            }
        }
    }
}

impl Protocol for MenciusBcast {
    type Msg = MenciusMsg;
    type LogRec = MenciusLogRec;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, _ctx: &mut dyn Context<Self>) {}

    fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        let slot = self.next_own_slot;
        debug_assert_eq!(self.owner_of_slot(slot), self.id);
        self.next_own_slot = slot + self.n;
        // Send to the peers, then register the proposal locally *before*
        // anything else can advance our own skip floor past it: if a
        // peer's proposal raced ahead of our self-delivery, the skip
        // check could otherwise resolve our own in-flight slot to a no-op
        // while everyone else executes it.
        for r in self.membership.config().to_vec() {
            if r != self.id {
                ctx.send(
                    r,
                    MenciusMsg::Propose {
                        slot,
                        cmd: cmd.clone(),
                        origin: self.id,
                    },
                );
            }
        }
        self.on_propose(slot, cmd, self.id, ctx);
    }

    fn on_message(&mut self, from: ReplicaId, msg: MenciusMsg, ctx: &mut dyn Context<Self>) {
        match msg {
            MenciusMsg::Propose { slot, cmd, origin } => self.on_propose(slot, cmd, origin, ctx),
            MenciusMsg::AcceptAck { slot, skip_below } => {
                self.on_accept_ack(from, slot, skip_below, ctx)
            }
        }
    }

    fn on_timer(&mut self, _token: TimerToken, _ctx: &mut dyn Context<Self>) {}

    fn on_recover(&mut self, log: &[MenciusLogRec], ctx: &mut dyn Context<Self>) {
        // Rebuild the slot table, then re-execute the resolved prefix in
        // slot order exactly as it was executed before the crash.
        let mut resolved: BTreeMap<u64, Option<(Command, ReplicaId)>> = BTreeMap::new();
        for rec in log {
            match rec {
                MenciusLogRec::Accept { slot, cmd, origin } => {
                    self.slots.entry(*slot).or_default().cmd = Some((cmd.clone(), *origin));
                }
                MenciusLogRec::Commit { slot } => {
                    let cmd = self
                        .slots
                        .get(slot)
                        .and_then(|s| s.cmd.clone())
                        .expect("commit mark must follow its accept record");
                    resolved.insert(*slot, Some(cmd));
                }
                MenciusLogRec::Skip { slot } => {
                    resolved.insert(*slot, None);
                }
            }
        }
        while let Some(entry) = resolved.remove(&self.exec_cursor) {
            let c = self.exec_cursor;
            self.exec_cursor += 1;
            self.slots.remove(&c);
            if let Some((cmd, origin)) = entry {
                ctx.commit(Committed {
                    cmd,
                    origin,
                    order_hint: c,
                });
            }
        }
        // Never reuse own slots at or below anything we have seen.
        let max_seen = self.slots.keys().max().copied().unwrap_or(0);
        let base = self.next_own_slot.max(self.exec_cursor);
        self.next_own_slot = if base.max(max_seen) == 0 {
            self.id.index() as u64
        } else {
            self.own_slot_after(base.max(max_seen))
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::CommandId;
    use rsm_core::id::ClientId;
    use rsm_core::time::Micros;

    struct TestCtx {
        sends: Vec<(ReplicaId, MenciusMsg)>,
        commits: Vec<Committed>,
        log: Vec<MenciusLogRec>,
        clock: Micros,
    }

    impl TestCtx {
        fn new() -> Self {
            TestCtx {
                sends: Vec::new(),
                commits: Vec::new(),
                log: Vec::new(),
                clock: 0,
            }
        }
    }

    impl Context<MenciusBcast> for TestCtx {
        fn clock(&mut self) -> Micros {
            self.clock += 1;
            self.clock
        }
        fn send(&mut self, to: ReplicaId, msg: MenciusMsg) {
            self.sends.push((to, msg));
        }
        fn log_append(&mut self, rec: MenciusLogRec) {
            self.log.push(rec);
        }
        fn log_rewrite(&mut self, recs: Vec<MenciusLogRec>) {
            self.log = recs;
        }
        fn commit(&mut self, c: Committed) {
            self.commits.push(c);
        }
        fn set_timer(&mut self, _after: Micros, _token: TimerToken) {}
    }

    fn cmd(seq: u64) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from_static(b"op"),
        )
    }

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    #[test]
    fn own_slot_progression() {
        let m = MenciusBcast::new(r(1), Membership::uniform(3));
        assert_eq!(m.own_slot_after(0), 1);
        assert_eq!(m.own_slot_after(1), 4);
        assert_eq!(m.own_slot_after(2), 4);
        assert_eq!(m.own_slot_after(5), 7);
        let m0 = MenciusBcast::new(r(0), Membership::uniform(3));
        assert_eq!(m0.own_slot_after(0), 3);
        assert_eq!(m0.own_slot_after(2), 3);
    }

    #[test]
    fn proposer_uses_own_slots_in_order() {
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        m.on_client_request(cmd(1), &mut ctx);
        m.on_client_request(cmd(2), &mut ctx);
        let slots: Vec<u64> = ctx
            .sends
            .iter()
            .filter_map(|(_, msg)| match msg {
                MenciusMsg::Propose { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        // Both peers (the proposer handles its own copy inline) get both
        // proposals in own-slot order: 1,1 then 4,4.
        assert_eq!(slots, vec![1, 1, 4, 4]);
        // The local registration also acknowledged both slots.
        let acks = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, MenciusMsg::AcceptAck { .. }))
            .count();
        assert_eq!(acks, 6, "one ack broadcast (3 dests) per own proposal");
    }

    #[test]
    fn ack_carries_skip_promise_and_advances_own_slot() {
        let mut m = MenciusBcast::new(r(2), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        // r0 proposes slot 3 (its second slot); r2 must skip its slot 2.
        m.on_propose(3, cmd(1), r(0), &mut ctx);
        let (_, ack) = ctx
            .sends
            .iter()
            .find(|(_, msg)| matches!(msg, MenciusMsg::AcceptAck { .. }))
            .unwrap();
        match ack {
            MenciusMsg::AcceptAck { slot, skip_below } => {
                assert_eq!(*slot, 3);
                assert_eq!(*skip_below, 5, "next own slot of r2 after 3 is 5");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn slot_zero_commits_with_majority_and_no_predecessors() {
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        m.on_propose(0, cmd(1), r(0), &mut ctx);
        m.on_accept_ack(r(0), 0, 3, &mut ctx);
        assert!(ctx.commits.is_empty());
        m.on_accept_ack(r(1), 0, 1, &mut ctx);
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(ctx.commits[0].order_hint, 0);
    }

    #[test]
    fn later_slot_waits_for_skip_promises_from_all_owners() {
        // Imbalanced workload shape: only r0 proposes; its second command
        // sits in slot 3 and needs r1's and r2's promises covering slots
        // 1 and 2.
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        m.on_propose(0, cmd(1), r(0), &mut ctx);
        m.on_propose(3, cmd(2), r(0), &mut ctx);
        // Majority acks for both slots from r0 (self) and r1.
        m.on_accept_ack(r(0), 0, 3, &mut ctx);
        m.on_accept_ack(r(0), 3, 6, &mut ctx);
        m.on_accept_ack(r(1), 0, 1, &mut ctx);
        m.on_accept_ack(r(1), 3, 4, &mut ctx);
        // Slot 0 commits; slot 3 blocked: r2's promise for slot 2 missing.
        assert_eq!(ctx.commits.len(), 1);
        // r2's ack arrives: skip_below 5 covers its slot 2; slot 1 covered
        // by r1's skip_below 4.
        m.on_accept_ack(r(2), 3, 5, &mut ctx);
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[1].order_hint, 3);
        assert_eq!(m.resolved(), 4);
    }

    #[test]
    fn delayed_commit_blocks_on_concurrent_smaller_slot() {
        // r1 observes its own slot-1 proposal fully acked, but r0's
        // concurrent slot-0 command is still short of a majority: slot 1
        // must wait (the delayed-commit problem).
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        m.on_propose(0, cmd(1), r(0), &mut ctx);
        m.on_propose(1, cmd(2), r(1), &mut ctx);
        m.on_accept_ack(r(1), 1, 4, &mut ctx);
        m.on_accept_ack(r(2), 1, 5, &mut ctx);
        m.on_accept_ack(r(0), 1, 3, &mut ctx);
        assert!(ctx.commits.is_empty(), "slot 1 must wait for slot 0");
        m.on_accept_ack(r(0), 0, 3, &mut ctx);
        m.on_accept_ack(r(2), 0, 2, &mut ctx);
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[0].order_hint, 0);
        assert_eq!(ctx.commits[1].order_hint, 1);
    }

    #[test]
    fn skipped_slots_resolve_without_commands() {
        let mut m = MenciusBcast::new(r(2), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        // r1 proposes in its slot 4; everyone skips 0..4.
        m.on_propose(4, cmd(1), r(1), &mut ctx);
        m.on_accept_ack(r(0), 4, 6, &mut ctx); // r0 skips 0 and 3
        m.on_accept_ack(r(1), 4, 7, &mut ctx); // r1 skips 1 (4 proposed)
        m.on_accept_ack(r(2), 4, 5, &mut ctx); // r2 skips 2
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(ctx.commits[0].order_hint, 4);
        assert_eq!(m.resolved(), 5);
        let skips = ctx
            .log
            .iter()
            .filter(|r| matches!(r, MenciusLogRec::Skip { .. }))
            .count();
        assert_eq!(skips, 4);
    }

    #[test]
    fn recovery_replays_resolved_prefix() {
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3));
        let log = vec![
            MenciusLogRec::Accept {
                slot: 0,
                cmd: cmd(1),
                origin: r(0),
            },
            MenciusLogRec::Commit { slot: 0 },
            MenciusLogRec::Skip { slot: 1 },
            MenciusLogRec::Skip { slot: 2 },
            MenciusLogRec::Accept {
                slot: 3,
                cmd: cmd(2),
                origin: r(0),
            },
        ];
        let mut ctx = TestCtx::new();
        m.on_recover(&log, &mut ctx);
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(m.resolved(), 3);
        // Own slots never reused below what the log shows.
        assert!(m.next_own_slot > 3);
        assert_eq!(m.next_own_slot % 3, 0);
    }
}
