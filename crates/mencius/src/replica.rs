//! The Mencius-bcast replica state machine.
//!
//! The data plane is fully batched: a coordinator proposes a whole client
//! [`Batch`] across its next own slots with one `PROPOSE`, and replicas
//! answer with one cumulative `ACCEPTACK` watermark per batch instead of
//! one ack per slot. Per-slot ack counters collapse into a small
//! per-(acker, owner) watermark matrix.

use std::collections::{BTreeMap, HashMap};

use rsm_core::batch::Batch;
use rsm_core::checkpoint::{
    Checkpoint, CheckpointPolicy, Checkpointer, StateTransferReply, StateTransferRequest,
};
use rsm_core::command::{Command, Committed, Reply};
use rsm_core::config::{Epoch, Membership};
use rsm_core::id::ReplicaId;
use rsm_core::obs::{names, TraceStage};
use rsm_core::protocol::{Context, Protocol, TimerToken};
use rsm_core::read::{ReadPath, ReadProbes, ReadQueue, ReadReply, MAX_READ_PROBES};
use rsm_core::session::SessionTable;
use rsm_core::time::Micros;

use crate::msg::MenciusMsg;

/// Timer token for the queued-probe-read escape flush (the crate uses no
/// other timers).
pub(crate) const TOKEN_PROBE_FLUSH: TimerToken = TimerToken(1);
/// How long queued reads wait behind in-flight probes before getting
/// their own probe anyway. Probes are fire-once (no retransmit), so
/// without this bound a probe whose marks were lost would strand every
/// read queued behind it.
pub(crate) const PROBE_FLUSH_US: Micros = 5_000;
/// Reads queue behind in-flight probes only past this concurrency cap.
/// Below it, each read probes immediately — queuing a lone read behind a
/// wide-area probe RTT just trades latency for nothing — while a burst
/// that would otherwise fan out one broadcast per read coalesces onto
/// the next flush.
pub(crate) const MAX_INFLIGHT_PROBES: usize = 4;

/// Stable log record of Mencius-bcast.
#[derive(Debug, Clone)]
pub enum MenciusLogRec {
    /// A logged (accepted) proposal for a slot.
    Accept {
        /// Slot number.
        slot: u64,
        /// The command.
        cmd: Command,
        /// Originating replica (the slot owner).
        origin: ReplicaId,
    },
    /// A commit mark: the slot's command was executed.
    Commit {
        /// Slot number.
        slot: u64,
    },
    /// A skip mark: the slot resolved to a no-op.
    Skip {
        /// Slot number.
        slot: u64,
    },
    /// A durable record of a [`MenciusMsg::GapFill`] confirmation: the
    /// owner vouched that every proposal it ever made at own slots in
    /// `[from_slot, below)` is in our log (the fill's `Accept` records
    /// precede this one). Persisting the range keeps absence proofs —
    /// and the cumulative acks built on them — valid across our own
    /// crashes, since an empty confirmed slot leaves no other trace in
    /// the log.
    GapConfirm {
        /// The confirming owner.
        owner: ReplicaId,
        /// First confirmed slot (inclusive).
        from_slot: u64,
        /// End of the confirmed range (exclusive).
        below: u64,
    },
    /// A state machine checkpoint (shared subsystem,
    /// `rsm_core::checkpoint`): the snapshot reflects every slot
    /// **below** the (exclusive) applied watermark. `history_floor`
    /// persists the own-proposal retention floor, so a recovered replica
    /// never confirms emptiness of a slot whose proposal a compaction
    /// dropped from the log.
    Checkpoint {
        /// The checkpoint (slot watermark, epoch/config, snapshot).
        cp: Checkpoint<u64>,
        /// The own-history retention floor at checkpoint time.
        history_floor: u64,
    },
}

/// Default cap on retained own proposals for gap retransmission (see
/// `MenciusBcast::own_history`): beyond this the oldest entries are
/// dropped and the retention floor advances, so a peer that stayed down
/// long enough to need them cannot be given a wrong emptiness
/// confirmation — it fetches a checkpoint from a peer instead
/// ([`MenciusMsg::StateRequest`]). Override per replica with
/// [`MenciusBcast::with_history_cap`].
pub const MAX_OWN_HISTORY: usize = 4096;

/// How long an unanswered [`MenciusMsg::StateRequest`] stays deduplicated
/// before it may be re-sent (same rationale as [`GAP_RETRY_US`]).
const TRANSFER_RETRY_US: Micros = 500_000;

/// How long an unanswered [`MenciusMsg::GapRequest`] stays deduplicated
/// before it may be re-sent. Comfortably above a WAN round trip, so a
/// request/fill exchange in flight is never duplicated by the owner's
/// ongoing traffic, while a request lost to the owner's downtime is
/// retried promptly once traffic gives `try_execute` another pass.
const GAP_RETRY_US: Micros = 500_000;

/// A Mencius replica with the broadcast-acknowledgement optimization.
///
/// Slot `s` is owned by replica `s mod N`; replicas propose only in their
/// own slots and *skip* (promise never to use) their unused slots below any
/// slot they acknowledge. See the crate docs for the protocol sketch and
/// latency behaviour.
#[derive(Debug)]
pub struct MenciusBcast {
    id: ReplicaId,
    membership: Membership,
    n: u64,
    /// The smallest own slot this replica may still propose in.
    next_own_slot: u64,
    /// Per-replica skip promise: replica `k` will never issue a *new*
    /// proposal in a `k`-owned slot below `floor[k]`.
    floor: Vec<u64>,
    /// Pending proposals by slot.
    slots: BTreeMap<u64, (Command, ReplicaId)>,
    /// Cumulative acknowledgement watermarks: `acked_below[k][o]` means
    /// replica `k` has logged **every** slot owned by `o` below that
    /// value. Slot `c` (owner `o`) is acknowledged by `k` iff
    /// `acked_below[k][o] > c`. One cumulative ack per batch replaces
    /// per-slot counters.
    acked_below: Vec<Vec<u64>>,
    /// Whether this replica has received every proposal owner `o` ever
    /// made (true while continuously up: owners propose their slots in
    /// increasing order over FIFO channels, so nothing can be missed).
    /// Cleared for the other owners by a crash — proposals in flight to
    /// a down replica are lost — after which this replica stops issuing
    /// cumulative acks for them: it can no longer bound what it missed.
    /// Own proposals are logged synchronously, so the own entry is
    /// always true. Restored per owner once every own slot of theirs
    /// below the first post-recovery receipt is accounted for — held in
    /// the slot table, already resolved, or confirmed absent by a
    /// `GapFill` — since FIFO receipt bounds everything at and above
    /// that first receipt (see `resync_floor`).
    recv_synced: Vec<bool>,
    /// First slot received from each owner after a desync: the only
    /// proposals a crash can have cost us sit **below** it (FIFO — the
    /// owner proposes its slots in increasing order, and nothing sent
    /// after our recovery is lost). Once every one of the owner's slots
    /// in `[exec_cursor, floor)` is held, resolved, or covered by
    /// `gap_trust`, cumulative acks for the owner are truthful again.
    /// Crucially this needs no execution progress, so a recovered
    /// replica re-arms its quorum duty even while the cluster is
    /// blocked waiting for exactly that ack — execution-gated resync
    /// deadlocks when two replicas desync in overlapping windows.
    resync_floor: Vec<Option<u64>>,
    /// Own proposals retained for gap retransmission: a peer that was
    /// down while a proposal was in flight can no longer tell a skipped
    /// own slot from a lost one and asks the owner ([`MenciusMsg::GapRequest`]).
    /// Entries are pruned once every replica's cumulative watermark over
    /// our slots covers them (a crashed peer's watermark freezes, so
    /// anything it may still ask about stays retained), and capped at
    /// [`MAX_OWN_HISTORY`] entries so a permanently dead peer cannot
    /// grow memory without bound.
    own_history: BTreeMap<u64, Command>,
    /// Smallest own slot still answerable from `own_history`: advanced by
    /// watermark pruning and by the [`MAX_OWN_HISTORY`] cap. A `GapFill`
    /// never confirms emptiness below it — a peer that stayed down long
    /// enough to need capped-out history stalls instead of being handed
    /// a wrong "permanently empty" answer (safety over liveness).
    history_floor: u64,
    /// Ranges `[from, below)` the owner confirmed via
    /// [`MenciusMsg::GapFill`]: we hold every proposal it ever made at
    /// own slots inside them, so absence there proves a skip even while
    /// `recv_synced[o]` is false. Cleared on resync (no longer needed).
    gap_trust: Vec<Vec<(u64, u64)>>,
    /// Rate limiter: the hole (`from_slot`) last queried per owner and
    /// when; cleared when the fill arrives, and expired after
    /// [`GAP_RETRY_US`] so a request or fill lost to the owner's
    /// downtime is eventually re-sent.
    gap_requested: Vec<Option<(u64, Micros)>>,
    /// Highest retention floor each owner has echoed in a [`MenciusMsg::GapFill`]:
    /// the owner's cap has dropped its proposals below this, so gap
    /// requests starting under it can never be answered and are not
    /// re-sent — the hole resolves through checkpoint transfer instead
    /// ([`MenciusMsg::StateRequest`]).
    gap_unanswerable: Vec<u64>,
    /// Next slot to execute or skip; all smaller slots are resolved.
    exec_cursor: u64,
    /// Cap on `own_history` (defaults to [`MAX_OWN_HISTORY`]).
    history_cap: usize,
    /// Shared checkpoint scheduler (`rsm_core::checkpoint`).
    checkpointer: Checkpointer,
    /// When the last [`MenciusMsg::StateRequest`] left (rate limiter).
    last_transfer_req: Option<Micros>,
    /// Rotation cursor over the peers for state transfer requests: one
    /// peer is asked per round (a snapshot is large; asking everyone
    /// would make every peer serialize and ship one while the requester
    /// installs exactly one), and an unhelpful or dead peer just means
    /// the next retry asks the next one.
    transfer_target: usize,

    // ------ local reads (`rsm_core::read`) ------
    /// Reads parked on a slot mark — the fold of the per-owner bounds a
    /// majority probe established — served once `exec_cursor` passes it.
    read_queue: ReadQueue<u64>,
    /// Quorum-read probes awaiting a majority of marks.
    read_probes: ReadProbes,
    /// Per-owner mark state for each in-flight probe, keyed by probe
    /// seq (the shared [`ReadProbes`] tracks only the folded scalar).
    probe_marks: HashMap<u64, ProbeMarks>,
    /// Reads that arrived while a probe was in flight: they ride the
    /// next probe (launched when the current one completes, or when the
    /// [`TOKEN_PROBE_FLUSH`] escape timer fires) instead of paying one
    /// probe broadcast each.
    queued_probe_reads: Vec<Command>,
    /// Whether the escape-flush timer is armed.
    probe_flush_armed: bool,

    // ------ client sessions (`rsm_core::session`) ------
    /// Per-client dedup window, consulted at execution time beside the
    /// read-probe bookkeeping: a retried command whose seq was already
    /// applied is answered from the cached reply instead of re-applied.
    sessions: SessionTable,
}

/// The requester-side per-owner bounds accumulated for one read probe.
///
/// Soundness of the two kinds of entry (see [`MenciusMsg::ReadMark`]):
/// an owner's answer about its **own** slot space is its execution
/// cursor, which covers every own write it completed before answering —
/// tight, because it excludes the owner's in-flight proposals. For an
/// owner that never answers, the element-wise maximum of the responders'
/// logged-top bounds covers its completed writes by quorum intersection
/// (committed ⇒ logged by a majority ⇒ logged by some responder).
#[derive(Debug)]
struct ProbeMarks {
    /// Owner `o`'s bound for its own slots, when `o` answered the probe
    /// (seeded for self at probe start).
    own: Vec<Option<u64>>,
    /// Element-wise maximum over every answer's mark vector (seeded with
    /// the requester's own vector): the fallback bound for owners that
    /// never answered.
    all: Vec<u64>,
}

impl MenciusBcast {
    /// Creates a replica.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the membership spec.
    pub fn new(id: ReplicaId, membership: Membership) -> Self {
        assert!(membership.in_spec(id), "replica {id} not in spec");
        let n = membership.spec().len() as u64;
        let floor = (0..n).collect();
        MenciusBcast {
            id,
            n,
            next_own_slot: id.index() as u64,
            floor,
            slots: BTreeMap::new(),
            acked_below: vec![vec![0; n as usize]; n as usize],
            recv_synced: vec![true; n as usize],
            resync_floor: vec![None; n as usize],
            own_history: BTreeMap::new(),
            history_floor: 0,
            gap_trust: vec![Vec::new(); n as usize],
            gap_requested: vec![None; n as usize],
            gap_unanswerable: vec![0; n as usize],
            exec_cursor: 0,
            history_cap: MAX_OWN_HISTORY,
            checkpointer: Checkpointer::new(CheckpointPolicy::DISABLED),
            last_transfer_req: None,
            transfer_target: 0,
            read_queue: ReadQueue::new(),
            read_probes: ReadProbes::new(),
            probe_marks: HashMap::new(),
            queued_probe_reads: Vec::new(),
            probe_flush_armed: false,
            sessions: SessionTable::default(),
            membership,
        }
    }

    /// Enables periodic checkpoints (and, per the policy, log compaction)
    /// for this replica.
    pub fn with_checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpointer = Checkpointer::new(policy);
        self
    }

    /// Overrides the client-session dedup window bound (defaults to
    /// [`rsm_core::session::DEFAULT_SESSION_WINDOW`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_session_window(mut self, n: usize) -> Self {
        self.sessions = SessionTable::new(n);
        self
    }

    /// Sets the session-table chaos-canary knob (**test-only**): when on,
    /// duplicate writes re-apply instead of deduplicating — the bug the
    /// chaos fuzzer proves it can find and shrink.
    pub fn with_session_canary(mut self, on: bool) -> Self {
        self.sessions.set_canary_skip_dedup(on);
        self
    }

    /// Overrides the own-proposal retention cap (tests and memory-tight
    /// deployments; defaults to [`MAX_OWN_HISTORY`]).
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_history_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "history cap must be positive");
        self.history_cap = cap;
        self
    }

    /// The owner (round-robin coordinator) of `slot`.
    pub fn owner_of_slot(&self, slot: u64) -> ReplicaId {
        ReplicaId::new((slot % self.n) as u16)
    }

    /// Number of slots resolved (executed or skipped) so far.
    pub fn resolved(&self) -> u64 {
        self.exec_cursor
    }

    fn majority(&self) -> usize {
        self.membership.majority()
    }

    /// The smallest slot owned by this replica that is strictly greater
    /// than `s`.
    fn own_slot_after(&self, s: u64) -> u64 {
        let me = self.id.index() as u64;
        let base = (s + 1).max(me);
        // Round base up to ≡ me (mod n).
        let rem = (base + self.n - me % self.n) % self.n;
        let candidate = if rem == 0 { base } else { base + self.n - rem };
        debug_assert!(candidate % self.n == me && candidate > s);
        candidate
    }

    fn broadcast(&self, msg: MenciusMsg, ctx: &mut dyn Context<Self>) {
        for r in self.membership.config().to_vec() {
            ctx.send(r, msg.clone());
        }
    }

    /// Handles a batch proposal filling the owner's consecutive own slots
    /// `first_slot, first_slot + n, …`; acknowledges the whole run with
    /// one cumulative ack.
    fn on_propose(
        &mut self,
        first_slot: u64,
        cmds: Batch,
        origin: ReplicaId,
        ctx: &mut dyn Context<Self>,
    ) {
        let k = cmds.len() as u64;
        let last_slot = first_slot + (k - 1) * self.n;
        // Iterate by reference: the batch's storage is typically still
        // shared with the owner's other in-flight broadcast copies, so
        // consuming it would deep-clone the whole command vector just to
        // move commands we clone anyway (Command clones are cheap).
        for (i, cmd) in cmds.iter().enumerate() {
            let slot = first_slot + i as u64 * self.n;
            if slot < self.exec_cursor {
                continue; // stale
            }
            ctx.log_append(MenciusLogRec::Accept {
                slot,
                cmd: cmd.clone(),
                origin,
            });
            if origin == self.id {
                self.own_history.insert(slot, cmd.clone());
                self.cap_own_history();
            }
            self.slots.insert(slot, (cmd.clone(), origin));
        }
        // The owner will not propose below its next own slot again.
        let owner = self.owner_of_slot(first_slot);
        self.floor[owner.index()] = self.floor[owner.index()].max(last_slot + self.n);
        // Acknowledging the run implicitly skips our own unused slots
        // below its last slot.
        if self.next_own_slot <= last_slot {
            self.next_own_slot = self.own_slot_after(last_slot);
        }
        self.floor[self.id.index()] = self.floor[self.id.index()].max(self.next_own_slot);
        // The cumulative watermark is only truthful while we provably
        // received every proposal this owner ever made (FIFO + up the
        // whole time). After a crash we may have missed some, so vouch
        // for our own slots instead — trivially complete in our log —
        // which still carries the skip promise everyone needs for
        // liveness of the gap slots. Coverage becomes truthful again
        // once the window a crash can have punctured — the owner's
        // slots between our cursor and our first post-recovery receipt
        // — is fully accounted for (held, resolved, or confirmed empty
        // by a gap fill); anything missing is fetched from the owner
        // right here, so resync never waits on execution progress.
        let oi = owner.index();
        if !self.recv_synced[oi] {
            if self.resync_floor[oi].is_none() {
                // First post-recovery receipt from this owner: the
                // resync round for its slot space starts here.
                self.resync_floor[oi] = Some(first_slot);
                ctx.obs_count(names::RESYNCS, 1);
            }
            let f = self.resync_floor[oi].expect("just initialized");
            match self.resync_coverage_hole(oi, f) {
                None => self.restore_recv_sync(oi),
                Some(hole) => self.request_gap_fill(hole, owner, ctx),
            }
        }
        let up_to_slot = if self.recv_synced[oi] {
            last_slot
        } else {
            self.own_ack_mark()
        };
        self.broadcast(
            MenciusMsg::AcceptAck {
                up_to_slot,
                skip_below: self.next_own_slot,
            },
            ctx,
        );
        self.try_execute(ctx);
    }

    /// The highest own slot this replica could have proposed — own
    /// proposals are logged synchronously, so claiming cumulative
    /// coverage of them is always sound. Used as the ack watermark when
    /// coverage of another owner cannot be claimed.
    fn own_ack_mark(&self) -> u64 {
        if self.next_own_slot >= self.n {
            self.next_own_slot - self.n
        } else {
            // Never proposed: our first own slot; it holds no command
            // from anyone else, so the claim is vacuous but well-formed.
            self.id.index() as u64
        }
    }

    /// First uncovered own slot of owner `o` in `[exec_cursor, f)`, or
    /// `None` when the whole window is accounted for and cumulative
    /// acks for `o` are truthful again. A slot is covered when its
    /// proposal is in hand (logged in the slot table), it already
    /// resolved (below the cursor), or a `GapFill` confirmed the owner
    /// never proposed there (`gap_trust`). FIFO receipt covers `[f, ∞)`
    /// by construction, so the window is the entire claim.
    fn resync_coverage_hole(&self, o: usize, f: u64) -> Option<u64> {
        let o64 = o as u64;
        let r = self.exec_cursor % self.n;
        // Smallest slot ≥ exec_cursor owned by `o` (slots stripe round
        // robin: owner_of_slot(s) = s mod n).
        let mut s = if r <= o64 {
            self.exec_cursor + (o64 - r)
        } else {
            self.exec_cursor + self.n - (r - o64)
        };
        while s < f {
            if !self.slots.contains_key(&s)
                && !self.gap_trust[o].iter().any(|&(a, b)| a <= s && s < b)
            {
                return Some(s);
            }
            s += self.n;
        }
        None
    }

    /// Re-arms cumulative acknowledgements for owner `o` after its
    /// coverage window closed (see [`Self::resync_coverage_hole`]).
    fn restore_recv_sync(&mut self, o: usize) {
        self.recv_synced[o] = true;
        self.resync_floor[o] = None;
        // The blanket claim subsumes per-range confirmations: a held
        // proposal stays in the slot table until it executes, and an
        // absent covered slot was confirmed empty for good (the range's
        // durable `GapConfirm` record keeps that proof across crashes).
        self.gap_trust[o].clear();
    }

    fn on_accept_ack(
        &mut self,
        from: ReplicaId,
        up_to_slot: u64,
        skip_below: u64,
        ctx: &mut dyn Context<Self>,
    ) {
        self.floor[from.index()] = self.floor[from.index()].max(skip_below);
        let owner = self.owner_of_slot(up_to_slot).index();
        let below = up_to_slot + 1;
        if self.acked_below[from.index()][owner] < below {
            self.acked_below[from.index()][owner] = below;
        }
        // Prune retained own proposals every replica has now covered:
        // nobody can ask about a slot it already acknowledged (an ack
        // implies the proposal is in the acker's stable log).
        if owner == self.id.index() {
            let min_acked = self
                .membership
                .config()
                .iter()
                .map(|k| self.acked_below[k.index()][owner])
                .min()
                .unwrap_or(0);
            self.own_history = self.own_history.split_off(&min_acked);
            self.history_floor = self.history_floor.max(min_acked);
        }
        self.try_execute(ctx);
    }

    /// Whether slot `c` has been acknowledged by a majority, read off the
    /// cumulative watermark matrix.
    fn majority_acked(&self, c: u64) -> bool {
        let owner = self.owner_of_slot(c).index();
        let acks = self
            .membership
            .config()
            .iter()
            .filter(|k| self.acked_below[k.index()][owner] > c)
            .count();
        acks >= self.majority()
    }

    /// Resolves slots in order: execute a slot once it has a command and a
    /// majority of acknowledgements; skip it once its owner's promise
    /// covers it; otherwise stop and wait (the delayed-commit behaviour).
    fn try_execute(&mut self, ctx: &mut dyn Context<Self>) {
        loop {
            let c = self.exec_cursor;
            if self.slots.contains_key(&c) {
                if !self.majority_acked(c) {
                    break;
                }
                let (cmd, origin) = self.slots.remove(&c).expect("checked above");
                if ctx.obs_active() && origin == self.id {
                    // Resolution requires the majority ack — the commit
                    // event is the replication event in Mencius. Stamped
                    // from the owner's vantage only: that is where the
                    // round trip gates the client's commit (a peer can
                    // resolve the slot a one-way hop earlier).
                    ctx.trace(cmd.id, TraceStage::Replicated);
                }
                ctx.log_append(MenciusLogRec::Commit { slot: c });
                self.exec_cursor = c + 1;
                let payload_len = cmd.payload.len();
                let applied = self.sessions.commit_dedup(
                    self.id,
                    Committed {
                        cmd,
                        origin,
                        order_hint: c,
                    },
                    ctx,
                );
                if applied {
                    self.checkpointer.note_commit(payload_len);
                }
                continue;
            }
            let owner = self.owner_of_slot(c);
            let o = owner.index();
            if self.floor[o] <= c {
                break; // no skip promise yet: wait for owner activity
            }
            if self.recv_synced[o] || self.gap_trust[o].iter().any(|&(f, b)| f <= c && c < b) {
                // The owner promised never to fill this slot with a NEW
                // proposal, and we provably hold every proposal it ever
                // made here (continuous FIFO receipt, or an explicit
                // GapFill): the slot is a no-op.
                ctx.obs_count(names::GAP_FILLS, 1);
                ctx.log_append(MenciusLogRec::Skip { slot: c });
                self.exec_cursor = c + 1;
            } else if c < self.gap_unanswerable[o] {
                // The owner's retention cap has dropped the range: no
                // gap fill can ever answer. Only a peer's checkpoint —
                // which reflects however the cluster resolved the slot —
                // can cover the hole (this closes the permanent stall a
                // long outage used to cause).
                self.request_state_transfer(ctx);
                break;
            } else {
                // Post-crash hole: the floor rules out new proposals, but
                // one may have been in flight and lost while we were
                // down — skipping could omit a globally committed
                // command. Ask the owner to retransmit the range.
                self.request_gap_fill(c, owner, ctx);
                break;
            }
        }
        self.maybe_checkpoint(ctx);
        // The resolution cursor may have passed parked read marks.
        self.release_reads(ctx);
    }

    // ------------------------------------------------------------------
    // Local reads (`rsm_core::read`): per-owner watermarks
    // ------------------------------------------------------------------
    //
    // Mencius has no leader to lease, so every read takes the clock-free
    // quorum path: probe the replicas for their read marks, park the
    // read, and serve it once the local resolution cursor passes the
    // park point. What makes the Mencius path fast is *which* marks the
    // answers carry. A scalar logged-top mark (what Paxos followers use)
    // forces the read to wait out every slot any responder has ever
    // logged — including the responders' own **in-flight** proposals,
    // which commit a full WAN round later. That made the read-mix p50
    // identical to the write p50.
    //
    // Per-owner marks break that tie. Each answer carries one bound per
    // owner ([`MenciusMsg::ReadMark`]):
    //
    // * the responder's bound for its **own** slot space is its
    //   execution cursor — an owner replies to its client only after
    //   executing the write, so every *completed* own write is strictly
    //   below it, while its in-flight proposals (logged, uncommitted,
    //   not yet visible to any client) are above it and stop gating the
    //   read;
    // * its bound for every **other** owner is the logged-top fallback,
    //   needed only for owners that never answer: a completed write of
    //   such an owner was logged by a majority, which intersects the
    //   responders, so the element-wise maximum covers it.
    //
    // The fold back to the scalar `ReadQueue` coordinate is exact
    // because execution is total-order by slot: waiting for owner `o`'s
    // slots below bound `p` means waiting for the largest `o`-owned slot
    // below `p`, so the park point is the maximum of those largest
    // slots, plus one ([`park_mark`](Self::park_mark)). Latency is one
    // local quorum round trip plus the resolution of slots below the
    // *completed-write* frontier — not below the in-flight frontier.

    /// This replica's scalar read mark: an exclusive upper bound on
    /// every slot it has ever logged, across all owners (carried in
    /// [`ReadReply::mark`] as the conservative fallback).
    fn local_read_mark(&self) -> u64 {
        self.slots
            .keys()
            .next_back()
            .map_or(self.exec_cursor, |&top| top + 1)
            .max(self.exec_cursor)
    }

    /// This replica's per-owner mark vector: entry `o` bounds the slots
    /// of owner `o` a completed write could occupy — the execution
    /// cursor for our own slot space (in-flight own proposals excluded),
    /// raised past every *other* owner's slot in the pending table.
    fn owner_marks(&self) -> Vec<u64> {
        let mut marks = vec![self.exec_cursor; self.n as usize];
        for &slot in self.slots.keys() {
            let o = (slot % self.n) as usize;
            if o != self.id.index() {
                marks[o] = marks[o].max(slot + 1);
            }
        }
        marks
    }

    /// Starts a quorum-read probe carrying `cmds`.
    fn start_read_probe(&mut self, cmds: Vec<Command>, ctx: &mut dyn Context<Self>) {
        let req = self.read_probes.begin(self.local_read_mark(), cmds);
        let mut marks = ProbeMarks {
            own: vec![None; self.n as usize],
            all: self.owner_marks(),
        };
        marks.own[self.id.index()] = Some(self.exec_cursor);
        self.probe_marks.insert(req.seq, marks);
        // `ReadProbes` silently evicts the oldest probe past its cap;
        // seqs are dense, so everything at or below seq - cap is dead.
        if self.probe_marks.len() > MAX_READ_PROBES {
            let floor = req.seq.saturating_sub(MAX_READ_PROBES as u64);
            self.probe_marks.retain(|&s, _| s > floor);
        }
        for r in self.membership.config().to_vec() {
            if r != self.id {
                ctx.send(r, MenciusMsg::ReadProbe(req));
            }
        }
        // A single-replica configuration is its own majority.
        self.complete_ready_probes(ctx);
    }

    /// Answers a peer's probe with our read marks.
    fn on_read_probe(&mut self, from: ReplicaId, seq: u64, ctx: &mut dyn Context<Self>) {
        let mark = self.local_read_mark();
        ctx.send(
            from,
            MenciusMsg::ReadMark {
                reply: ReadReply { seq, mark },
                owner_marks: self.owner_marks(),
            },
        );
    }

    /// Collects a probe answer; on a majority, parks the probe's reads
    /// at the fold of the accumulated per-owner bounds.
    fn on_read_mark(
        &mut self,
        from: ReplicaId,
        reply: ReadReply,
        owner_marks: Vec<u64>,
        ctx: &mut dyn Context<Self>,
    ) {
        if let Some(marks) = self.probe_marks.get_mut(&reply.seq) {
            if owner_marks.len() == self.n as usize {
                for (a, &m) in marks.all.iter_mut().zip(&owner_marks) {
                    *a = (*a).max(m);
                }
                let fi = from.index();
                marks.own[fi] = Some(marks.own[fi].unwrap_or(0).max(owner_marks[fi]));
            } else {
                // Malformed vector (wrong configuration size): fold the
                // scalar mark into every entry — it bounds every owner's
                // logged slots at the responder, so the quorum-
                // intersection fallback stays sound.
                for a in marks.all.iter_mut() {
                    *a = (*a).max(reply.mark);
                }
            }
        }
        self.read_probes.on_reply(from, reply);
        self.complete_ready_probes(ctx);
    }

    /// Folds a completed probe's per-owner bounds into the single
    /// [`ReadQueue`] coordinate: the smallest cursor position at which
    /// every bound is honored. Owner `o` with (exclusive) bound `p` has
    /// its largest constrained slot at `p - 1 - ((p - 1 - o) mod n)`
    /// when `p > o`, and none otherwise; execution is total-order by
    /// slot, so waiting for the maximum of those slots waits for all.
    fn park_mark(&self, marks: &ProbeMarks) -> u64 {
        let mut needed = 0u64;
        for o in 0..self.n {
            let p = marks.own[o as usize].unwrap_or(marks.all[o as usize]);
            if p > o {
                let last = p - 1 - ((p - 1 - o) % self.n);
                needed = needed.max(last + 1);
            }
        }
        needed
    }

    /// Moves every probe that reached a majority (self plus responders)
    /// into the read queue and releases whatever is already resolvable.
    fn complete_ready_probes(&mut self, ctx: &mut dyn Context<Self>) {
        let ready = self.read_probes.take_ready(self.majority());
        if ready.is_empty() {
            return;
        }
        for (seq, scalar_mark, cmds) in ready {
            let mark = match self.probe_marks.remove(&seq) {
                Some(marks) => self.park_mark(&marks),
                // Side state evicted (probe-cap overflow): the folded
                // scalar is the conservative all-owners bound.
                None => scalar_mark,
            };
            for cmd in cmds {
                self.read_queue.park(mark, cmd);
            }
        }
        self.release_reads(ctx);
        self.flush_queued_probe_reads(ctx);
    }

    /// Launches one probe carrying every read queued behind the probe
    /// that just completed (or timed out).
    fn flush_queued_probe_reads(&mut self, ctx: &mut dyn Context<Self>) {
        if !self.queued_probe_reads.is_empty() {
            let cmds = std::mem::take(&mut self.queued_probe_reads);
            self.start_read_probe(cmds, ctx);
        }
    }

    /// Serves every parked read whose mark the resolution cursor has
    /// passed.
    fn release_reads(&mut self, ctx: &mut dyn Context<Self>) {
        if self.read_queue.is_empty() {
            return;
        }
        for cmd in self.read_queue.release(self.exec_cursor) {
            match ctx.sm_read(&cmd) {
                Some(result) => ctx.send_reply(Reply::new(cmd.id, result)),
                // Driver cannot serve reads (or the command is not
                // actually read-only): replicate it like a write.
                None => self.on_client_batch(Batch::single(cmd), ctx),
            }
        }
    }

    /// Number of reads parked or riding probes (test observability).
    pub fn pending_reads(&self) -> usize {
        self.read_queue.len() + self.read_probes.pending() + self.queued_probe_reads.len()
    }

    /// Writes a checkpoint when one is due and the driver supports
    /// snapshots; with compaction, rewrites the log to the checkpoint,
    /// the own proposals still retained for gap retransmission, and the
    /// unresolved slots above the watermark.
    fn maybe_checkpoint(&mut self, ctx: &mut dyn Context<Self>) {
        if !self.checkpointer.due() {
            return;
        }
        let Some(snapshot) = ctx.sm_snapshot() else {
            return; // driver without snapshot support: replay-only recovery
        };
        self.checkpointer.taken();
        let cp = Checkpoint {
            applied: self.exec_cursor,
            epoch: Epoch::ZERO,
            config: self.membership.config().to_vec(),
            snapshot,
            sessions: self.sessions.export(),
        };
        if self.checkpointer.policy().compact {
            self.compact_log(cp, ctx);
        } else {
            ctx.log_append(MenciusLogRec::Checkpoint {
                cp,
                history_floor: self.history_floor,
            });
        }
    }

    /// Rewrites the stable log to `cp` plus the records still live above
    /// (or retained below) its watermark: own proposals kept for gap
    /// retransmission — peers whose crash lost them in flight may still
    /// ask — and the unresolved slots. The persisted `history_floor`
    /// keeps emptiness confirmations sound across the truncation.
    fn compact_log(&self, cp: Checkpoint<u64>, ctx: &mut dyn Context<Self>) {
        let cursor = cp.applied;
        let mut recs = Vec::with_capacity(1 + self.own_history.len() + self.slots.len());
        recs.push(MenciusLogRec::Checkpoint {
            cp,
            history_floor: self.history_floor,
        });
        // Own proposals below the cursor (those at or above it are in
        // `slots` and re-emitted there).
        for (&slot, cmd) in self.own_history.range(..cursor) {
            recs.push(MenciusLogRec::Accept {
                slot,
                cmd: cmd.clone(),
                origin: self.id,
            });
        }
        for (&slot, (cmd, origin)) in &self.slots {
            recs.push(MenciusLogRec::Accept {
                slot,
                cmd: cmd.clone(),
                origin: *origin,
            });
        }
        ctx.log_rewrite(recs);
    }

    /// Asks the peers for a checkpoint covering our resolved prefix; see
    /// `rsm_core::checkpoint` for the transfer invariants. Unlike the
    /// Paxos trigger, no confirmation window is needed: the caller has a
    /// clamped [`MenciusMsg::GapFill`] in hand proving the hole can
    /// never resolve through retransmission.
    fn request_state_transfer(&mut self, ctx: &mut dyn Context<Self>) {
        let now = ctx.clock();
        if let Some(at) = self.last_transfer_req {
            if now.saturating_sub(at) < TRANSFER_RETRY_US {
                return; // an exchange is (presumed) in flight
            }
        }
        self.last_transfer_req = Some(now);
        if let Some(to) = self.next_transfer_target() {
            ctx.send(
                to,
                MenciusMsg::StateRequest(StateTransferRequest {
                    have: self.exec_cursor,
                }),
            );
        }
    }

    /// The next peer to ask for a checkpoint (round-robin over the
    /// configuration, skipping self).
    fn next_transfer_target(&mut self) -> Option<ReplicaId> {
        let config = self.membership.config();
        for _ in 0..config.len() {
            let candidate = config[self.transfer_target % config.len()];
            self.transfer_target = (self.transfer_target + 1) % config.len();
            if candidate != self.id {
                return Some(candidate);
            }
        }
        None // single-replica configuration: no peer to ask
    }

    /// Serves a state transfer request with a fresh snapshot of our
    /// resolved prefix.
    fn on_state_request(&mut self, from: ReplicaId, have: u64, ctx: &mut dyn Context<Self>) {
        if self.exec_cursor <= have {
            return; // nothing the requester does not already have
        }
        let Some(snapshot) = ctx.sm_snapshot() else {
            return; // cannot snapshot: let a peer that can answer
        };
        ctx.send(
            from,
            MenciusMsg::StateReply(StateTransferReply {
                checkpoint: Checkpoint {
                    applied: self.exec_cursor,
                    epoch: Epoch::ZERO,
                    config: self.membership.config().to_vec(),
                    snapshot,
                    sessions: self.sessions.export(),
                },
            }),
        );
    }

    /// Installs a transferred checkpoint: every slot below its watermark
    /// resolved at the sender exactly as the cluster decided (commit or
    /// skip), so the state machine jumps there and resolution resumes
    /// from the watermark. Our own slots below it were all either
    /// proposed by us or covered by a skip promise we made, so
    /// `next_own_slot` already clears them — the `max` is a defensive
    /// restatement of that invariant.
    fn on_state_reply(&mut self, cp: Checkpoint<u64>, ctx: &mut dyn Context<Self>) {
        if cp.applied <= self.exec_cursor {
            return; // stale or duplicate reply
        }
        if !ctx.sm_install(cp.snapshot.clone()) {
            return; // driver cannot install snapshots
        }
        let _ = self.sessions.install(&cp.sessions);
        self.last_transfer_req = None;
        self.slots = self.slots.split_off(&cp.applied);
        self.exec_cursor = cp.applied;
        self.next_own_slot = self.next_own_slot.max(self.own_slot_after(cp.applied - 1));
        self.floor[self.id.index()] = self.floor[self.id.index()].max(self.next_own_slot);
        // Gap bookkeeping below the watermark is obsolete.
        for g in self.gap_requested.iter_mut() {
            if matches!(g, Some((f, _)) if *f < cp.applied) {
                *g = None;
            }
        }
        if self.checkpointer.policy().compact {
            self.compact_log(cp, ctx);
        } else {
            ctx.log_append(MenciusLogRec::Checkpoint {
                cp,
                history_floor: self.history_floor,
            });
        }
        self.try_execute(ctx);
    }

    /// Enforces the history cap: drops the oldest retained own proposals
    /// and advances `history_floor` past them, so emptiness is never
    /// confirmed for a slot whose command was dropped.
    fn cap_own_history(&mut self) {
        while self.own_history.len() > self.history_cap {
            let (dropped, _) = self.own_history.pop_first().expect("len checked");
            self.history_floor = self.history_floor.max(dropped + self.n);
        }
    }

    /// Sends one [`MenciusMsg::GapRequest`] for the unresolved range
    /// `[from_slot, floor[owner])`. An identical request stays
    /// deduplicated for [`GAP_RETRY_US`] — long enough that the owner's
    /// ongoing traffic never duplicates an exchange in flight, short
    /// enough that a request or fill lost to the owner's downtime is
    /// retried once traffic gives `try_execute` another pass.
    fn request_gap_fill(&mut self, from_slot: u64, owner: ReplicaId, ctx: &mut dyn Context<Self>) {
        let o = owner.index();
        if from_slot < self.gap_unanswerable[o] {
            return; // the owner's retention cap already said it cannot answer
        }
        let below = self.floor[o];
        let now = ctx.clock();
        // Dedup on the hole alone: the owner's pipelined traffic keeps
        // raising its floor (a different `below` every message), but the
        // in-flight fill for this hole will cover it regardless — a
        // wider range can be requested after that fill, or after the
        // retry window expires.
        if let Some((f, sent_at)) = self.gap_requested[o] {
            if f == from_slot && now.saturating_sub(sent_at) < GAP_RETRY_US {
                return; // request for this hole in flight, not yet timed out
            }
        }
        self.gap_requested[o] = Some((from_slot, now));
        ctx.obs_count(names::GAP_REQUESTS, 1);
        ctx.send(owner, MenciusMsg::GapRequest { from_slot, below });
    }

    /// Owner side of gap retransmission: answer with every retained own
    /// proposal in the range. Slots the requester already acknowledged
    /// are never queried (the ack proves they are in its log), so the
    /// pruned prefix of `own_history` cannot be needed.
    fn on_gap_request(
        &mut self,
        from: ReplicaId,
        from_slot: u64,
        below: u64,
        ctx: &mut dyn Context<Self>,
    ) {
        // The requester's floor for us can never outrun our own promise,
        // but clamp defensively: we must not confirm emptiness of slots
        // we could still propose in, nor of slots the retention cap
        // already dropped (the echoed `from_slot` tells the requester
        // how far back the confirmation actually reaches).
        let below = below.min(self.next_own_slot);
        let from_slot = from_slot.max(self.history_floor);
        // The clamps can invert the range (cap advanced past the
        // requested bound, or a malformed request): answer with an
        // empty fill — the echoed `from_slot` still tells the requester
        // how far back we can answer at all.
        let cmds: Vec<(u64, Command)> = if from_slot < below {
            self.own_history
                .range(from_slot..below)
                .map(|(s, c)| (*s, c.clone()))
                .collect()
        } else {
            Vec::new()
        };
        ctx.send(
            from,
            MenciusMsg::GapFill {
                from_slot,
                below,
                cmds,
            },
        );
    }

    /// Requester side: log and register the retransmitted proposals, then
    /// trust absence across the confirmed range.
    fn on_gap_fill(
        &mut self,
        from: ReplicaId,
        from_slot: u64,
        below: u64,
        cmds: Vec<(u64, Command)>,
        ctx: &mut dyn Context<Self>,
    ) {
        let o = from.index();
        self.gap_requested[o] = None;
        // The echoed start carries the owner's retention floor when it
        // exceeds what we asked for: ranges below it will never be
        // answerable, so remember it and stop re-requesting them.
        self.gap_unanswerable[o] = self.gap_unanswerable[o].max(from_slot);
        for (slot, cmd) in cmds {
            debug_assert_eq!(self.owner_of_slot(slot), from);
            if slot < self.exec_cursor || self.slots.contains_key(&slot) {
                continue;
            }
            ctx.log_append(MenciusLogRec::Accept {
                slot,
                cmd: cmd.clone(),
                origin: from,
            });
            self.slots.insert(slot, (cmd, from));
        }
        // Absence now proves a skip anywhere in `[from_slot, below)` —
        // and only there: an owner that clamped `from_slot` upward
        // (retention cap) has not confirmed the slots below it, so a
        // hole at the cursor stays blocked rather than being skipped
        // over a possibly dropped command. The confirmation is logged:
        // cumulative acks will lean on it, and they must stay truthful
        // across our own crashes (the owner prunes history behind them).
        let covered = self.gap_trust[o]
            .iter()
            .any(|&(f, b)| f <= from_slot && below <= b);
        if from_slot < below && !covered {
            ctx.log_append(MenciusLogRec::GapConfirm {
                owner: from,
                from_slot,
                below,
            });
            self.gap_trust[o].push((from_slot, below));
        }
        // The fill may have closed the owner's desync window. Check
        // here, not just on the owner's next proposal: peers may be
        // blocked waiting for precisely the cumulative ack we have been
        // withholding — and when two replicas desync in overlapping
        // windows, every cursor in the cluster can be stuck on a slot
        // whose majority needs that ack, so no proposal-side resync
        // would ever fire. Announce restored coverage immediately, up
        // to the highest of the owner's slots in hand.
        if !self.recv_synced[o] {
            if let Some(f) = self.resync_floor[o] {
                if self.resync_coverage_hole(o, f).is_none() {
                    self.restore_recv_sync(o);
                    let up_to_slot = self
                        .slots
                        .keys()
                        .rev()
                        .find(|&&s| self.owner_of_slot(s) == from)
                        .copied()
                        .unwrap_or(f)
                        .max(f);
                    self.broadcast(
                        MenciusMsg::AcceptAck {
                            up_to_slot,
                            skip_below: self.next_own_slot,
                        },
                        ctx,
                    );
                }
            }
        }
        self.try_execute(ctx);
    }
}

impl Protocol for MenciusBcast {
    type Msg = MenciusMsg;
    type LogRec = MenciusLogRec;

    fn id(&self) -> ReplicaId {
        self.id
    }

    fn on_start(&mut self, _ctx: &mut dyn Context<Self>) {}

    fn on_client_request(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        self.on_client_batch(Batch::single(cmd), ctx);
    }

    fn on_client_read(&mut self, cmd: Command, ctx: &mut dyn Context<Self>) {
        if self.read_probes.in_flight() >= MAX_INFLIGHT_PROBES {
            // Ride the next probe instead of broadcasting one per read;
            // the escape timer bounds the wait if the in-flight probes'
            // marks were lost.
            self.queued_probe_reads.push(cmd);
            if !self.probe_flush_armed {
                self.probe_flush_armed = true;
                ctx.set_timer(PROBE_FLUSH_US, TOKEN_PROBE_FLUSH);
            }
        } else {
            self.start_read_probe(vec![cmd], ctx);
        }
    }

    fn read_path(&self) -> ReadPath {
        ReadPath::CommitWatermark
    }

    fn on_client_batch(&mut self, batch: Batch, ctx: &mut dyn Context<Self>) {
        let first_slot = self.next_own_slot;
        debug_assert_eq!(self.owner_of_slot(first_slot), self.id);
        self.next_own_slot = first_slot + batch.len() as u64 * self.n;
        if ctx.obs_active() {
            for cmd in batch.iter() {
                ctx.trace(cmd.id, TraceStage::Proposed);
            }
        }
        // Send to the peers, then register the proposal locally *before*
        // anything else can advance our own skip floor past it: if a
        // peer's proposal raced ahead of our self-delivery, the skip
        // check could otherwise resolve our own in-flight slots to no-ops
        // while everyone else executes them.
        for r in self.membership.config().to_vec() {
            if r != self.id {
                ctx.send(
                    r,
                    MenciusMsg::Propose {
                        first_slot,
                        cmds: batch.clone(),
                        origin: self.id,
                    },
                );
            }
        }
        self.on_propose(first_slot, batch, self.id, ctx);
    }

    fn on_message(&mut self, from: ReplicaId, msg: MenciusMsg, ctx: &mut dyn Context<Self>) {
        match msg {
            MenciusMsg::Propose {
                first_slot,
                cmds,
                origin,
            } => self.on_propose(first_slot, cmds, origin, ctx),
            MenciusMsg::AcceptAck {
                up_to_slot,
                skip_below,
            } => self.on_accept_ack(from, up_to_slot, skip_below, ctx),
            MenciusMsg::GapRequest { from_slot, below } => {
                self.on_gap_request(from, from_slot, below, ctx)
            }
            MenciusMsg::GapFill {
                from_slot,
                below,
                cmds,
            } => self.on_gap_fill(from, from_slot, below, cmds, ctx),
            MenciusMsg::StateRequest(req) => self.on_state_request(from, req.have, ctx),
            MenciusMsg::StateReply(reply) => self.on_state_reply(reply.checkpoint, ctx),
            MenciusMsg::ReadProbe(req) => self.on_read_probe(from, req.seq, ctx),
            MenciusMsg::ReadMark { reply, owner_marks } => {
                self.on_read_mark(from, reply, owner_marks, ctx)
            }
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut dyn Context<Self>) {
        if token == TOKEN_PROBE_FLUSH {
            self.probe_flush_armed = false;
            // A probe always begins after its riders arrived, so an
            // extra overlapping probe is safe — just extra traffic.
            self.flush_queued_probe_reads(ctx);
        }
    }

    fn on_recover(&mut self, log: &[MenciusLogRec], ctx: &mut dyn Context<Self>) {
        // Proposals in flight while we were down are gone (no
        // retransmission), so cumulative ack coverage of the other
        // owners can never be claimed again — only our own slots stay
        // vouchable (see `recv_synced`).
        let me = self.id.index();
        for (o, synced) in self.recv_synced.iter_mut().enumerate() {
            *synced = o == me;
        }
        self.resync_floor.fill(None);
        // Checkpoint fast path (shared subsystem): restore the newest
        // durable checkpoint and resume resolution at its watermark
        // instead of replaying from slot zero. Falls back to a full
        // replay when the driver cannot install snapshots (sound only
        // while the log is uncompacted). The persisted history floor
        // survives the truncation: emptiness below it is never
        // confirmed, whatever the rebuilt history happens to hold.
        let mut base = 0u64;
        for rec in log.iter().rev() {
            if let MenciusLogRec::Checkpoint { cp, history_floor } = rec {
                if ctx.sm_install(cp.snapshot.clone()) {
                    base = cp.applied;
                    let _ = self.sessions.install(&cp.sessions);
                }
                self.history_floor = *history_floor;
                break;
            }
        }
        self.exec_cursor = base;
        // Rebuild the slot table above the base, then re-execute the
        // resolved suffix in slot order exactly as before the crash.
        let mut resolved: BTreeMap<u64, Option<(Command, ReplicaId)>> = BTreeMap::new();
        for rec in log {
            match rec {
                MenciusLogRec::Accept { slot, cmd, origin } => {
                    if *origin == self.id {
                        // Own proposals stay answerable for peers whose
                        // crash may have lost them in flight — including
                        // those below the checkpoint watermark.
                        self.own_history.insert(*slot, cmd.clone());
                    }
                    if *slot >= base {
                        self.slots.insert(*slot, (cmd.clone(), *origin));
                    }
                }
                MenciusLogRec::Commit { slot } if *slot >= base => {
                    let cmd = self
                        .slots
                        .get(slot)
                        .cloned()
                        .expect("commit mark must follow its accept record");
                    resolved.insert(*slot, Some(cmd));
                }
                MenciusLogRec::Skip { slot } if *slot >= base => {
                    resolved.insert(*slot, None);
                }
                MenciusLogRec::GapConfirm {
                    owner,
                    from_slot,
                    below,
                } if *below > base => {
                    // Confirmed-empty ranges hold for good (the owner
                    // never proposes below the promise it echoed), so
                    // the absence proofs — and the cumulative acks we
                    // issued on their strength — survive the crash.
                    self.gap_trust[owner.index()].push((*from_slot, *below));
                }
                MenciusLogRec::Commit { .. }
                | MenciusLogRec::Skip { .. }
                | MenciusLogRec::GapConfirm { .. }
                | MenciusLogRec::Checkpoint { .. } => {}
            }
        }
        // The log holds every own proposal the compactions have not
        // folded below the persisted floor, so the rebuilt history is
        // complete above it; re-apply the retention cap to bound memory.
        self.cap_own_history();
        while let Some(entry) = resolved.remove(&self.exec_cursor) {
            let c = self.exec_cursor;
            self.exec_cursor += 1;
            self.slots.remove(&c);
            if let Some((cmd, origin)) = entry {
                self.sessions.commit_dedup(
                    self.id,
                    Committed {
                        cmd,
                        origin,
                        order_hint: c,
                    },
                    ctx,
                );
            }
        }
        // Never reuse own slots: continue at the smallest own slot that
        // is ≥ the replayed cursor position and strictly above every
        // slot the log showed — an uncommitted Accept still counts as
        // "seen", since peers may have logged or committed it, and
        // re-proposing its slot with a different command would fork the
        // log. Own proposals are logged synchronously, so an empty floor
        // proves nothing was ever proposed and the replica may start
        // from its first own slot again.
        let mut floor = self.next_own_slot.max(self.exec_cursor);
        if let Some(m) = self.slots.keys().max() {
            floor = floor.max(m + 1);
        }
        self.next_own_slot = if floor == 0 {
            self.id.index() as u64
        } else {
            self.own_slot_after(floor - 1)
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use rsm_core::command::CommandId;
    use rsm_core::id::ClientId;
    use rsm_core::read::ReadRequest;
    use rsm_core::time::Micros;

    struct TestCtx {
        sends: Vec<(ReplicaId, MenciusMsg)>,
        commits: Vec<Committed>,
        log: Vec<MenciusLogRec>,
        clock: Micros,
        /// Executed command seqs — a trivial state machine for snapshot
        /// tests; `snapshots` gates whether the driver supports them.
        executed: Vec<u64>,
        snapshots: bool,
        /// Replies routed via `send_reply` (served local reads).
        read_replies: Vec<Reply>,
        /// Whether `sm_read` answers (false models a driver without
        /// state machine access, forcing the replicated fallback).
        serve_reads: bool,
    }

    impl TestCtx {
        fn new() -> Self {
            TestCtx {
                sends: Vec::new(),
                commits: Vec::new(),
                log: Vec::new(),
                clock: 0,
                executed: Vec::new(),
                snapshots: false,
                read_replies: Vec::new(),
                serve_reads: true,
            }
        }

        fn with_snapshots() -> Self {
            TestCtx {
                snapshots: true,
                ..TestCtx::new()
            }
        }
    }

    impl Context<MenciusBcast> for TestCtx {
        fn clock(&mut self) -> Micros {
            self.clock += 1;
            self.clock
        }
        fn send(&mut self, to: ReplicaId, msg: MenciusMsg) {
            self.sends.push((to, msg));
        }
        fn log_append(&mut self, rec: MenciusLogRec) {
            self.log.push(rec);
        }
        fn log_rewrite(&mut self, recs: Vec<MenciusLogRec>) {
            self.log = recs;
        }
        fn commit(&mut self, c: Committed) -> Bytes {
            let result = c.cmd.payload.clone();
            self.executed.push(c.cmd.id.seq);
            self.commits.push(c);
            result
        }
        fn set_timer(&mut self, _after: Micros, _token: TimerToken) {}
        fn sm_snapshot(&mut self) -> Option<Bytes> {
            if !self.snapshots {
                return None;
            }
            let mut buf = Vec::new();
            for s in &self.executed {
                buf.extend_from_slice(&s.to_be_bytes());
            }
            Some(Bytes::from(buf))
        }
        fn sm_install(&mut self, snapshot: Bytes) -> bool {
            if !self.snapshots {
                return false;
            }
            self.executed = snapshot
                .chunks(8)
                .map(|c| u64::from_be_bytes(c.try_into().expect("8-byte chunks")))
                .collect();
            true
        }
        fn sm_read(&mut self, _cmd: &Command) -> Option<Bytes> {
            self.serve_reads
                .then(|| Bytes::from(self.executed.len().to_be_bytes().to_vec()))
        }
        fn send_reply(&mut self, reply: Reply) {
            self.read_replies.push(reply);
        }
    }

    fn cmd(seq: u64) -> Command {
        Command::new(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from_static(b"op"),
        )
    }

    fn r(i: u16) -> ReplicaId {
        ReplicaId::new(i)
    }

    /// Single-command propose, the shape most tests drive by hand.
    fn propose(m: &mut MenciusBcast, ctx: &mut TestCtx, slot: u64, c: Command, origin: ReplicaId) {
        m.on_propose(slot, Batch::single(c), origin, ctx);
    }

    /// Single-slot ack with a skip promise (cumulative watermark = slot).
    fn ack(m: &mut MenciusBcast, ctx: &mut TestCtx, from: ReplicaId, slot: u64, skip: u64) {
        m.on_accept_ack(from, slot, skip, ctx);
    }

    #[test]
    fn own_slot_progression() {
        let m = MenciusBcast::new(r(1), Membership::uniform(3));
        assert_eq!(m.own_slot_after(0), 1);
        assert_eq!(m.own_slot_after(1), 4);
        assert_eq!(m.own_slot_after(2), 4);
        assert_eq!(m.own_slot_after(5), 7);
        let m0 = MenciusBcast::new(r(0), Membership::uniform(3));
        assert_eq!(m0.own_slot_after(0), 3);
        assert_eq!(m0.own_slot_after(2), 3);
    }

    #[test]
    fn propose_fanout_shares_the_batch_payload_across_peers() {
        // Allocation-lean fan-out: the per-peer PROPOSE clones share one
        // Arc-backed command vector with the submitted batch instead of
        // deep-copying it per destination.
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        let batch = Batch::new((1..=64).map(cmd).collect());
        m.on_client_batch(batch.clone(), &mut ctx);
        let proposes: Vec<&Batch> = ctx
            .sends
            .iter()
            .filter_map(|(_, msg)| match msg {
                MenciusMsg::Propose { cmds, .. } => Some(cmds),
                _ => None,
            })
            .collect();
        assert_eq!(proposes.len(), 2, "one PROPOSE per peer");
        for sent in &proposes {
            assert!(
                sent.ptr_eq(&batch),
                "a peer copy deep-cloned the command payload"
            );
        }
    }

    #[test]
    fn proposer_uses_own_slots_in_order() {
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        m.on_client_request(cmd(1), &mut ctx);
        m.on_client_request(cmd(2), &mut ctx);
        let slots: Vec<u64> = ctx
            .sends
            .iter()
            .filter_map(|(_, msg)| match msg {
                MenciusMsg::Propose { first_slot, .. } => Some(*first_slot),
                _ => None,
            })
            .collect();
        // Both peers (the proposer handles its own copy inline) get both
        // proposals in own-slot order: 1,1 then 4,4.
        assert_eq!(slots, vec![1, 1, 4, 4]);
        // The local registration also acknowledged both slots.
        let acks = ctx
            .sends
            .iter()
            .filter(|(_, m)| matches!(m, MenciusMsg::AcceptAck { .. }))
            .count();
        assert_eq!(acks, 6, "one ack broadcast (3 dests) per own proposal");
    }

    #[test]
    fn batched_proposal_strides_own_slots_with_one_message() {
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        m.on_client_batch(Batch::new(vec![cmd(1), cmd(2), cmd(3)]), &mut ctx);
        let proposes: Vec<(u64, usize)> = ctx
            .sends
            .iter()
            .filter_map(|(_, msg)| match msg {
                MenciusMsg::Propose {
                    first_slot, cmds, ..
                } => Some((*first_slot, cmds.len())),
                _ => None,
            })
            .collect();
        // One batch message per peer (2 peers; own copy handled inline).
        assert_eq!(proposes, vec![(1, 3), (1, 3)]);
        // The batch occupies own slots 1, 4, 7; the local registration
        // logged all three and acked once with the last slot's watermark.
        assert_eq!(ctx.log.len(), 3);
        let acks: Vec<(u64, u64)> = ctx
            .sends
            .iter()
            .filter_map(|(_, msg)| match msg {
                MenciusMsg::AcceptAck {
                    up_to_slot,
                    skip_below,
                } => Some((*up_to_slot, *skip_below)),
                _ => None,
            })
            .collect();
        assert_eq!(acks.len(), 3, "ONE cumulative ack broadcast, not 3");
        assert!(acks.iter().all(|&(u, s)| u == 7 && s == 10));
        assert_eq!(m.next_own_slot, 10);
    }

    #[test]
    fn ack_carries_skip_promise_and_advances_own_slot() {
        let mut m = MenciusBcast::new(r(2), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        // r0 proposes slot 3 (its second slot); r2 must skip its slot 2.
        propose(&mut m, &mut ctx, 3, cmd(1), r(0));
        let (_, ack) = ctx
            .sends
            .iter()
            .find(|(_, msg)| matches!(msg, MenciusMsg::AcceptAck { .. }))
            .unwrap();
        match ack {
            MenciusMsg::AcceptAck {
                up_to_slot,
                skip_below,
            } => {
                assert_eq!(*up_to_slot, 3);
                assert_eq!(*skip_below, 5, "next own slot of r2 after 3 is 5");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn slot_zero_commits_with_majority_and_no_predecessors() {
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        propose(&mut m, &mut ctx, 0, cmd(1), r(0));
        ack(&mut m, &mut ctx, r(0), 0, 3);
        assert!(ctx.commits.is_empty());
        ack(&mut m, &mut ctx, r(1), 0, 1);
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(ctx.commits[0].order_hint, 0);
    }

    #[test]
    fn later_slot_waits_for_skip_promises_from_all_owners() {
        // Imbalanced workload shape: only r0 proposes; its second command
        // sits in slot 3 and needs r1's and r2's promises covering slots
        // 1 and 2.
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        propose(&mut m, &mut ctx, 0, cmd(1), r(0));
        propose(&mut m, &mut ctx, 3, cmd(2), r(0));
        // Majority acks for both slots from r0 (self) and r1.
        ack(&mut m, &mut ctx, r(0), 0, 3);
        ack(&mut m, &mut ctx, r(0), 3, 6);
        ack(&mut m, &mut ctx, r(1), 0, 1);
        ack(&mut m, &mut ctx, r(1), 3, 4);
        // Slot 0 commits; slot 3 blocked: r2's promise for slot 2 missing.
        assert_eq!(ctx.commits.len(), 1);
        // r2's ack arrives: skip_below 5 covers its slot 2; slot 1 covered
        // by r1's skip_below 4.
        ack(&mut m, &mut ctx, r(2), 3, 5);
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[1].order_hint, 3);
        assert_eq!(m.resolved(), 4);
    }

    #[test]
    fn delayed_commit_blocks_on_concurrent_smaller_slot() {
        // r1 observes its own slot-1 proposal fully acked, but r0's
        // concurrent slot-0 command is still short of a majority: slot 1
        // must wait (the delayed-commit problem).
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        propose(&mut m, &mut ctx, 0, cmd(1), r(0));
        propose(&mut m, &mut ctx, 1, cmd(2), r(1));
        ack(&mut m, &mut ctx, r(1), 1, 4);
        ack(&mut m, &mut ctx, r(2), 1, 5);
        ack(&mut m, &mut ctx, r(0), 1, 3);
        assert!(ctx.commits.is_empty(), "slot 1 must wait for slot 0");
        ack(&mut m, &mut ctx, r(0), 0, 3);
        ack(&mut m, &mut ctx, r(2), 0, 2);
        assert_eq!(ctx.commits.len(), 2);
        assert_eq!(ctx.commits[0].order_hint, 0);
        assert_eq!(ctx.commits[1].order_hint, 1);
    }

    #[test]
    fn cumulative_ack_covers_earlier_slots_of_the_same_owner() {
        // r2 receives r0's slots 0 and 3 and acks only once for slot 3:
        // the watermark must count for slot 0 as well.
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        propose(&mut m, &mut ctx, 0, cmd(1), r(0));
        propose(&mut m, &mut ctx, 3, cmd(2), r(0));
        // One cumulative ack per replica, watermark at slot 3.
        ack(&mut m, &mut ctx, r(0), 3, 6);
        ack(&mut m, &mut ctx, r(1), 3, 4);
        ack(&mut m, &mut ctx, r(2), 3, 5);
        assert_eq!(ctx.commits.len(), 2, "both slots commit off one watermark");
        assert_eq!(ctx.commits[0].order_hint, 0);
        assert_eq!(ctx.commits[1].order_hint, 3);
    }

    #[test]
    fn skipped_slots_resolve_without_commands() {
        let mut m = MenciusBcast::new(r(2), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        // r1 proposes in its slot 4; everyone skips 0..4.
        propose(&mut m, &mut ctx, 4, cmd(1), r(1));
        ack(&mut m, &mut ctx, r(0), 4, 6); // r0 skips 0 and 3
        ack(&mut m, &mut ctx, r(1), 4, 7); // r1 skips 1 (4 proposed)
        ack(&mut m, &mut ctx, r(2), 4, 5); // r2 skips 2
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(ctx.commits[0].order_hint, 4);
        assert_eq!(m.resolved(), 5);
        let skips = ctx
            .log
            .iter()
            .filter(|r| matches!(r, MenciusLogRec::Skip { .. }))
            .count();
        assert_eq!(skips, 4);
    }

    #[test]
    fn recovered_replica_never_vouches_for_other_owners() {
        // r1 crashes while r0's slot-0 proposal is in flight (lost),
        // recovers, then receives r0's next proposal in slot 3. A
        // cumulative ack up to slot 3 would falsely cover the lost
        // slot 0; the replica must fall back to vouching only for its
        // own slots (still carrying the skip promise).
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        m.on_recover(&[], &mut ctx);
        propose(&mut m, &mut ctx, 3, cmd(2), r(0));
        let acks: Vec<(u64, u64)> = ctx
            .sends
            .iter()
            .filter_map(|(_, msg)| match msg {
                MenciusMsg::AcceptAck {
                    up_to_slot,
                    skip_below,
                } => Some((*up_to_slot, *skip_below)),
                _ => None,
            })
            .collect();
        assert!(!acks.is_empty());
        for (up_to, skip) in acks {
            assert_eq!(
                m.owner_of_slot(up_to),
                r(1),
                "post-recovery ack must only reference own slots"
            );
            assert!(skip > 3, "skip promise must still cover the gap slots");
        }
        // Own proposals remain fully vouchable after recovery.
        m.on_client_request(cmd(9), &mut ctx);
        let own_acks = ctx
            .sends
            .iter()
            .filter(|(_, msg)| {
                matches!(msg, MenciusMsg::AcceptAck { up_to_slot, .. }
                if *up_to_slot == m.next_own_slot - 3)
            })
            .count();
        assert!(own_acks >= 3, "own-slot acks keep flowing");
    }

    #[test]
    fn recovered_replica_resyncs_once_the_gap_resolves() {
        // r1 recovers, first hears r0 at slot 3 (slots 0..3 may have
        // been missed). Once everything below 3 resolves locally, the
        // gap is globally decided, so cumulative coverage of r0 becomes
        // truthful again and full acks resume.
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        m.on_recover(&[], &mut ctx);
        propose(&mut m, &mut ctx, 3, cmd(1), r(0));
        // Unsynced: the ack references r1's own slots, not slot 3.
        let last_ack = |ctx: &TestCtx| {
            ctx.sends
                .iter()
                .rev()
                .find_map(|(_, msg)| match msg {
                    MenciusMsg::AcceptAck { up_to_slot, .. } => Some(*up_to_slot),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(m.owner_of_slot(last_ack(&ctx)), r(1));
        // Majority watermarks for slot 3 arrive.
        ack(&mut m, &mut ctx, r(0), 0, 3);
        ack(&mut m, &mut ctx, r(2), 0, 5);
        ack(&mut m, &mut ctx, r(0), 3, 6);
        ack(&mut m, &mut ctx, r(2), 3, 5);
        // Gap slots 0 and 2 cannot resolve off the owners' floors alone
        // (a proposal may have been lost in r1's crash); the owners
        // confirm emptiness, then 0..3 skip and slot 3 commits.
        assert!(m.resolved() < 4, "holes must wait for owner confirmation");
        m.on_message(
            r(0),
            MenciusMsg::GapFill {
                from_slot: 0,
                below: 6,
                cmds: Vec::new(),
            },
            &mut ctx,
        );
        m.on_message(
            r(2),
            MenciusMsg::GapFill {
                from_slot: 2,
                below: 5,
                cmds: Vec::new(),
            },
            &mut ctx,
        );
        assert!(m.resolved() >= 4, "gap resolved: {}", m.resolved());
        // Next proposal from r0: resynced, full cumulative ack again.
        propose(&mut m, &mut ctx, 6, cmd(2), r(0));
        assert_eq!(
            last_ack(&ctx),
            6,
            "cumulative acks must resume after resync"
        );
    }

    #[test]
    fn recovered_replica_fetches_lost_proposals_instead_of_skipping() {
        // r0 proposed slot 0 (committed by r0+r2) while the Propose to a
        // crashed r1 was lost. On recovery r1 must not resolve slot 0 as
        // a skip off r0's floor — that would fork its committed sequence.
        // It queries r0, which retransmits from its retained history, and
        // r1 commits the same command everyone else executed.
        let mut owner = MenciusBcast::new(r(0), Membership::uniform(3));
        let mut owner_ctx = TestCtx::new();
        owner.on_client_request(cmd(7), &mut owner_ctx); // fills slot 0
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        m.on_recover(&[], &mut ctx);
        // r0's next batch is the first thing r1 hears: its floor now
        // covers slot 0, which the old code skipped locally.
        propose(&mut m, &mut ctx, 3, cmd(8), r(0));
        assert_eq!(m.resolved(), 0, "slot 0 must not resolve as a skip");
        let (to, from_slot, below) = ctx
            .sends
            .iter()
            .find_map(|(to, msg)| match msg {
                MenciusMsg::GapRequest { from_slot, below } => Some((*to, *from_slot, *below)),
                _ => None,
            })
            .expect("recovered replica must query the owner");
        assert_eq!(to, r(0));
        // The owner answers from its retained own-proposal history.
        owner_ctx.sends.clear();
        owner.on_message(
            r(1),
            MenciusMsg::GapRequest { from_slot, below },
            &mut owner_ctx,
        );
        let fill = owner_ctx
            .sends
            .iter()
            .find_map(|(to, msg)| match (to, msg) {
                (to, MenciusMsg::GapFill { .. }) if *to == r(1) => Some(msg.clone()),
                _ => None,
            })
            .expect("owner must answer a gap request");
        assert!(
            matches!(&fill, MenciusMsg::GapFill { cmds, .. } if cmds.len() == 1),
            "retransmission must carry the lost slot-0 proposal"
        );
        m.on_message(r(0), fill, &mut ctx);
        // r2 confirms its own slots in the gap are empty.
        m.on_message(
            r(2),
            MenciusMsg::GapFill {
                from_slot: 2,
                below: 5,
                cmds: Vec::new(),
            },
            &mut ctx,
        );
        // Majority watermarks for slots 0 and 3 arrive: everything
        // resolves, slot 0 first and with the original command.
        ack(&mut m, &mut ctx, r(0), 0, 6);
        ack(&mut m, &mut ctx, r(2), 0, 5);
        ack(&mut m, &mut ctx, r(0), 3, 6);
        ack(&mut m, &mut ctx, r(2), 3, 5);
        assert!(m.resolved() >= 4, "gap resolved: {}", m.resolved());
        assert_eq!(ctx.commits[0].order_hint, 0);
        assert_eq!(
            ctx.commits[0].cmd.id.seq, 7,
            "slot 0 must commit the owner's original command"
        );
    }

    #[test]
    fn lost_gap_request_is_retried_when_the_owner_is_heard_from() {
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        m.on_recover(&[], &mut ctx);
        propose(&mut m, &mut ctx, 3, cmd(1), r(0));
        let count_reqs = |ctx: &TestCtx| {
            ctx.sends
                .iter()
                .filter(|(_, msg)| matches!(msg, MenciusMsg::GapRequest { .. }))
                .count()
        };
        assert_eq!(count_reqs(&ctx), 1, "stall at slot 0 queries the owner");
        // Owner traffic within the retry window must not duplicate the
        // in-flight exchange…
        m.on_message(
            r(0),
            MenciusMsg::AcceptAck {
                up_to_slot: 3,
                skip_below: 6,
            },
            &mut ctx,
        );
        assert_eq!(count_reqs(&ctx), 1, "in-flight request is deduplicated");
        // …but once the window expires, the request (or its fill) is
        // presumed lost to the owner's downtime and is re-sent.
        ctx.clock = 1_000_000;
        m.on_message(
            r(0),
            MenciusMsg::AcceptAck {
                up_to_slot: 3,
                skip_below: 6,
            },
            &mut ctx,
        );
        assert_eq!(count_reqs(&ctx), 2, "timed-out request is retried");
    }

    #[test]
    fn own_history_is_capped_and_capped_ranges_never_confirm_emptiness() {
        let mut owner = MenciusBcast::new(r(0), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        for s in 0..(MAX_OWN_HISTORY as u64 + 8) {
            owner.on_client_request(cmd(s), &mut ctx);
        }
        assert!(owner.own_history.len() <= MAX_OWN_HISTORY);
        assert!(owner.history_floor > 0, "cap must advance the floor");
        // A request reaching below the retention floor is answered with
        // a clamped range…
        let mut reply_ctx = TestCtx::new();
        owner.on_message(
            r(1),
            MenciusMsg::GapRequest {
                from_slot: 0,
                below: owner.next_own_slot,
            },
            &mut reply_ctx,
        );
        let fill = reply_ctx
            .sends
            .iter()
            .find_map(|(_, msg)| match msg {
                MenciusMsg::GapFill { .. } => Some(msg.clone()),
                _ => None,
            })
            .expect("owner must still answer");
        let MenciusMsg::GapFill { from_slot, .. } = &fill else {
            unreachable!()
        };
        assert_eq!(*from_slot, owner.history_floor);
        // …and the requester refuses to treat it as proof of emptiness
        // at its cursor: the capped-out slot 0 may have held a command.
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut mctx = TestCtx::new();
        m.on_recover(&[], &mut mctx);
        ack(&mut m, &mut mctx, r(0), 0, owner.next_own_slot);
        m.on_message(r(0), fill, &mut mctx);
        assert!(
            !m.gap_trust[0].iter().any(|&(f, b)| f == 0 && b > 0),
            "trust must not reach below the owner's retention floor"
        );
        assert_eq!(m.resolved(), 0, "the hole at slot 0 must keep waiting");
        // Further owner traffic must not restart the request/fill
        // ping-pong: the range is recorded as unanswerable.
        let reqs = |ctx: &TestCtx| {
            ctx.sends
                .iter()
                .filter(|(_, msg)| matches!(msg, MenciusMsg::GapRequest { .. }))
                .count()
        };
        let before = reqs(&mctx);
        m.on_message(
            r(0),
            MenciusMsg::AcceptAck {
                up_to_slot: 0,
                skip_below: owner.next_own_slot,
            },
            &mut mctx,
        );
        assert_eq!(
            reqs(&mctx),
            before,
            "unanswerable range is not re-requested"
        );
    }

    #[test]
    fn capped_out_hole_fetches_a_checkpoint_instead_of_stalling() {
        // The ROADMAP's permanent-stall hole: r1 stays down while r0
        // proposes past its retention cap. On rejoin, r0's clamped
        // GapFill cannot confirm the early slots — previously a quiet
        // forever-stall; now the hole resolves via checkpoint transfer.
        let mut owner = MenciusBcast::new(r(0), Membership::uniform(3)).with_history_cap(4);
        let mut octx = TestCtx::with_snapshots();
        for s in 0..8 {
            owner.on_client_request(cmd(s), &mut octx);
        }
        assert!(owner.history_floor > 0, "cap must have advanced the floor");
        // Majority watermarks + skip promises resolve everything at the
        // owner: its own 8 slots commit, everyone else's skip.
        ack(&mut owner, &mut octx, r(1), 21, 22);
        ack(&mut owner, &mut octx, r(2), 21, 23);
        ack(&mut owner, &mut octx, r(0), 21, 24);
        assert_eq!(owner.resolved(), 22, "owner resolved its whole prefix");

        // r1 recovers from a long outage with an empty log and hears the
        // owner's promise; the gap request comes back clamped.
        let mut m = MenciusBcast::new(r(1), Membership::uniform(3));
        let mut ctx = TestCtx::with_snapshots();
        m.on_recover(&[], &mut ctx);
        ack(&mut m, &mut ctx, r(0), 21, 24);
        let (from_slot, below) = ctx
            .sends
            .iter()
            .find_map(|(to, msg)| match msg {
                MenciusMsg::GapRequest { from_slot, below } if *to == r(0) => {
                    Some((*from_slot, *below))
                }
                _ => None,
            })
            .expect("hole must first try a gap request");
        octx.sends.clear();
        owner.on_message(r(1), MenciusMsg::GapRequest { from_slot, below }, &mut octx);
        let fill = octx
            .sends
            .iter()
            .find_map(|(to, msg)| match (to, msg) {
                (to, MenciusMsg::GapFill { .. }) if *to == r(1) => Some(msg.clone()),
                _ => None,
            })
            .expect("owner answers with a clamped fill");
        m.on_message(r(0), fill, &mut ctx);
        // The clamped fill proves retransmission can never cover the
        // hole: a state transfer request must leave for a peer (one per
        // retry round — a snapshot is large, so peers are tried
        // round-robin rather than all at once).
        let reqs: Vec<ReplicaId> = ctx
            .sends
            .iter()
            .filter_map(|(to, msg)| match msg {
                MenciusMsg::StateRequest(_) => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(reqs, vec![r(0)], "one transfer request, first peer");

        // The owner serves its checkpoint; installing it converges r1 on
        // the owner's exact state and unblocks resolution.
        octx.sends.clear();
        owner.on_message(
            r(1),
            MenciusMsg::StateRequest(StateTransferRequest { have: 0 }),
            &mut octx,
        );
        let reply = octx
            .sends
            .iter()
            .find_map(|(to, msg)| match (to, msg) {
                (to, MenciusMsg::StateReply(_)) if *to == r(1) => Some(msg.clone()),
                _ => None,
            })
            .expect("owner must serve a checkpoint");
        m.on_message(r(0), reply, &mut ctx);
        assert_eq!(m.resolved(), 22, "hole covered by the checkpoint");
        assert_eq!(
            ctx.executed, octx.executed,
            "recovered replica reaches the owner's exact state"
        );
        // And it can keep proposing above everything resolved.
        m.on_client_request(cmd(99), &mut ctx);
        assert!(m.next_own_slot > 22);
    }

    #[test]
    fn checkpoints_compact_the_log_and_recovery_restores_them() {
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3))
            .with_checkpoints(CheckpointPolicy::every(2).with_compaction(true));
        let mut ctx = TestCtx::with_snapshots();
        for s in 0..6 {
            m.on_client_request(cmd(s), &mut ctx);
        }
        ack(&mut m, &mut ctx, r(1), 15, 16);
        ack(&mut m, &mut ctx, r(2), 15, 17);
        ack(&mut m, &mut ctx, r(0), 15, 18);
        assert_eq!(m.resolved(), 16, "all six own slots + skips resolved");
        // Compaction keeps the log at the checkpoint + retained own
        // proposals — far below the 6 accepts + 16 commit/skip marks a
        // plain log would hold.
        let checkpoints = ctx
            .log
            .iter()
            .filter(|l| matches!(l, MenciusLogRec::Checkpoint { .. }))
            .count();
        assert_eq!(checkpoints, 1, "log holds exactly the newest checkpoint");
        assert!(
            ctx.log.len() <= 1 + 6,
            "log must stay bounded, got {} records",
            ctx.log.len()
        );
        // Recovery from the compacted log reproduces the full state.
        let mut m2 = MenciusBcast::new(r(0), Membership::uniform(3));
        let mut ctx2 = TestCtx::with_snapshots();
        m2.on_recover(&ctx.log.clone(), &mut ctx2);
        assert_eq!(ctx2.executed, ctx.executed);
        assert!(m2.resolved() >= 14, "cursor resumes at the watermark");
        assert!(m2.next_own_slot >= m2.resolved(), "own slots never reused");
        // Own proposals below the watermark stay answerable after the
        // round trip (they are retained in the compacted log).
        assert!(!m2.own_history.is_empty());
    }

    #[test]
    fn recovery_replays_resolved_prefix() {
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3));
        let log = vec![
            MenciusLogRec::Accept {
                slot: 0,
                cmd: cmd(1),
                origin: r(0),
            },
            MenciusLogRec::Commit { slot: 0 },
            MenciusLogRec::Skip { slot: 1 },
            MenciusLogRec::Skip { slot: 2 },
            MenciusLogRec::Accept {
                slot: 3,
                cmd: cmd(2),
                origin: r(0),
            },
        ];
        let mut ctx = TestCtx::new();
        m.on_recover(&log, &mut ctx);
        assert_eq!(ctx.commits.len(), 1);
        assert_eq!(m.resolved(), 3);
        // Own slots never reused below what the log shows.
        assert!(m.next_own_slot > 3);
        assert_eq!(m.next_own_slot % 3, 0);
    }

    #[test]
    fn recovery_never_reuses_slot_zero() {
        // An uncommitted Accept for slot 0 must push replica 0 past it:
        // peers may have logged or committed the original proposal, so
        // re-proposing slot 0 with a new command would fork the log.
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3));
        let log = vec![MenciusLogRec::Accept {
            slot: 0,
            cmd: cmd(1),
            origin: r(0),
        }];
        let mut ctx = TestCtx::new();
        m.on_recover(&log, &mut ctx);
        assert_eq!(m.next_own_slot, 3, "slot 0 was seen; next own slot is 3");
        // A genuinely empty log is a fresh start from the replica's own
        // first slot — for every replica id, not just 0.
        for i in 0..3 {
            let mut fresh = MenciusBcast::new(r(i), Membership::uniform(3));
            fresh.on_recover(&[], &mut ctx);
            assert_eq!(fresh.next_own_slot, i as u64);
        }
    }
    fn read(seq: u64) -> Command {
        Command::read(
            CommandId::new(ClientId::new(ReplicaId::new(0), 0), seq),
            Bytes::from_static(b"get"),
        )
    }

    #[test]
    fn read_probes_a_majority_and_parks_on_the_max_mark() {
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        // Slot 1 (owned by r1) is logged here but unresolved.
        propose(&mut m, &mut ctx, 1, cmd(11), r(1));
        ctx.sends.clear();
        m.on_client_read(read(5), &mut ctx);
        assert!(ctx.read_replies.is_empty(), "reads never serve eagerly");
        assert_eq!(
            ctx.sends
                .iter()
                .filter(|(_, msg)| matches!(msg, MenciusMsg::ReadProbe(_)))
                .count(),
            2,
            "probe goes to both peers"
        );
        // One answer + self = majority of 3. The peer's own-slot bound
        // (owner 1, bound 4) constrains the read: its largest owner-1
        // slot below 4 is slot 1, so the read parks at cursor mark 2.
        m.on_message(
            r(1),
            MenciusMsg::ReadMark {
                reply: ReadReply { seq: 1, mark: 4 },
                owner_marks: vec![0, 4, 0],
            },
            &mut ctx,
        );
        assert_eq!(m.pending_reads(), 1, "parked until slots 0..2 resolve");
        assert!(ctx.read_replies.is_empty());
        // Resolve slots 0..4: acks give slot 1 a majority, and the skip
        // promises cover the empty slots of every owner.
        ack(&mut m, &mut ctx, r(1), 1, 7);
        ack(&mut m, &mut ctx, r(2), 1, 8);
        m.on_client_request(cmd(1), &mut ctx); // fills own slot 3... (slot 0 skipped by own floor)
        ack(&mut m, &mut ctx, r(1), 3, 7);
        ack(&mut m, &mut ctx, r(2), 3, 8);
        assert!(
            m.resolved() >= 4,
            "slots below the mark resolved: {}",
            m.resolved()
        );
        assert_eq!(ctx.read_replies.len(), 1);
        assert_eq!(ctx.read_replies[0].id.seq, 5);
        assert_eq!(m.pending_reads(), 0);
    }

    #[test]
    fn any_replica_answers_read_probes_with_its_log_top() {
        let mut m = MenciusBcast::new(r(2), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        propose(&mut m, &mut ctx, 4, cmd(9), r(1));
        ctx.sends.clear();
        m.on_message(
            r(0),
            MenciusMsg::ReadProbe(ReadRequest { seq: 7 }),
            &mut ctx,
        );
        match &ctx.sends[..] {
            [(to, MenciusMsg::ReadMark { reply, owner_marks })] => {
                assert_eq!(*to, r(0));
                assert_eq!(reply.seq, 7);
                assert_eq!(reply.mark, 5, "scalar mark covers the whole slot table");
                assert_eq!(
                    owner_marks,
                    &vec![0, 5, 0],
                    "per-owner: only owner 1's logged slot 4 constrains; \
                     the responder's own entry is its execution cursor"
                );
            }
            other => panic!("expected one ReadMark, got {other:?}"),
        }
    }

    #[test]
    fn in_flight_proposals_do_not_block_probed_reads() {
        // Replica 1 has an own proposal in flight (logged at the reader,
        // unacked, uncommitted — no client has seen its result). Under
        // the old scalar logged-top mark the read would park above it
        // and wait out the proposal's full commit round; per-owner marks
        // let the owner's answer exclude it.
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        propose(&mut m, &mut ctx, 1, cmd(11), r(1));
        ctx.sends.clear();
        m.on_client_read(read(9), &mut ctx);
        assert!(ctx.read_replies.is_empty(), "waiting on the probe quorum");
        // Owner 1 answers: its execution cursor is still 0, so its own
        // entry excludes the in-flight slot 1 even though its scalar
        // logged-top mark (2) covers it.
        m.on_message(
            r(1),
            MenciusMsg::ReadMark {
                reply: ReadReply { seq: 1, mark: 2 },
                owner_marks: vec![0, 0, 0],
            },
            &mut ctx,
        );
        assert_eq!(
            ctx.read_replies.len(),
            1,
            "read served without waiting for the in-flight proposal"
        );
        assert_eq!(ctx.read_replies[0].id.seq, 9);
        assert_eq!(m.pending_reads(), 0);
    }

    #[test]
    fn read_falls_back_to_replication_without_sm_access() {
        let mut m = MenciusBcast::new(r(0), Membership::uniform(3));
        let mut ctx = TestCtx::new();
        ctx.serve_reads = false;
        m.on_client_read(read(4), &mut ctx);
        m.on_message(
            r(1),
            MenciusMsg::ReadMark {
                reply: ReadReply { seq: 1, mark: 0 },
                owner_marks: vec![0, 0, 0],
            },
            &mut ctx,
        );
        assert!(ctx.read_replies.is_empty());
        assert!(
            ctx.sends
                .iter()
                .any(|(_, msg)| matches!(msg, MenciusMsg::Propose { .. })),
            "unserveable read must be replicated as an ordinary command"
        );
    }

    #[test]
    fn mencius_reports_commit_watermark_read_path() {
        let m = MenciusBcast::new(r(0), Membership::uniform(3));
        assert_eq!(m.read_path(), ReadPath::CommitWatermark);
    }
}
