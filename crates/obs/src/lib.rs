//! # rsm-obs
//!
//! The observability layer of the Clock-RSM reproduction: a lock-light
//! metrics [`Registry`] plus per-command [trace spans](Tracer) that
//! decompose a command's latency into the paper's terms (prepare
//! replication, stable-timestamp wait, commit, execution, reply).
//!
//! The crate is a dependency-free leaf: protocols never see it (they
//! talk to the driver through `rsm_core`'s `Context` observability
//! hooks), while the drivers (`simnet`, `rsm-runtime`), the transport,
//! and the benches record into it directly.
//!
//! ## Hot-path cost contract
//!
//! * [`Counter::add`], [`Gauge::set`], and [`Histogram::record`] are a
//!   single relaxed atomic RMW on a pre-resolved handle — no locks, no
//!   allocation, no branches beyond the bucket index. Handles are
//!   resolved once (one registry mutex acquisition per *name*, cached
//!   by [`NodeObs`]) and cloned freely.
//! * [`Tracer::sampled`] is a pure hash of the span key; an unsampled
//!   command costs exactly that and nothing else. Sampled stamps take
//!   the tracer mutex, so sampling is the knob that bounds tracing cost
//!   on saturated runs ([`ObsConfig::sample_shift`]).
//! * Nothing in this crate reads wall-clock time. Every stamp carries a
//!   caller-provided timestamp — virtual time under `simnet`, monotonic
//!   micros since the cluster epoch under the threaded runtime — so
//!   instrumented simulator runs stay byte-for-byte deterministic.
//!
//! ## Snapshot semantics
//!
//! [`Registry::snapshot`] captures every metric into a
//! [`MetricsSnapshot`] with `BTreeMap` (name-sorted) ordering:
//! snapshots of deterministic runs compare equal with `==`, export to
//! stable JSON ([`MetricsSnapshot::to_json`]), and subtract
//! ([`MetricsSnapshot::delta`]) to scope counters to a window. A
//! snapshot is *not* an atomic cut across metrics — each metric is read
//! individually — which is fine for the monotone counters and
//! single-writer gauges recorded here.
//!
//! ## Sampling and the slow-command log
//!
//! The tracer samples 1-in-2^[`sample_shift`](ObsConfig::sample_shift)
//! span keys (0 = every command) with a deterministic key hash, so the
//! same commands are sampled on every replay. Completed spans whose
//! end-to-end latency meets [`ObsConfig::slow_threshold`] are copied to
//! a bounded slow-command log ([`Tracer::slow_spans`]) with their full
//! stage breakdown.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod registry;
mod trace;

pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, NodeObs, Registry,
};
pub use trace::{ObsConfig, Span, Tracer, MAX_STAGES};

/// Largest value over a set of gauges (e.g. the deepest per-peer
/// outbound queue), `0` when empty or all-negative-free.
pub fn gauge_max(gauges: &[Gauge]) -> i64 {
    gauges.iter().map(Gauge::get).max().unwrap_or(0)
}
