//! The metrics registry: counters, gauges, log-scale histograms, and
//! deterministic snapshots.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` (relaxed; allocation- and lock-free).
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins signed gauge. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value (relaxed; allocation- and lock-free).
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (e.g. queue enter/leave).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log-scale buckets: bucket `i > 0` covers
/// `[2^(i-1), 2^i - 1]`; bucket 0 holds zeros.
const BUCKETS: usize = 64;

#[derive(Debug)]
struct HistogramCells {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// A fixed-bucket log2-scale histogram (64 buckets covering the full
/// `u64` range). Recording is one relaxed add per cell — no locks, no
/// allocation. Cloning shares the cells.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCells {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }
}

fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()).min(BUCKETS as u32 - 1) as usize
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Captures the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets: self
                .0
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
        }
    }
}

/// The captured contents of one [`Histogram`]: totals plus the nonzero
/// `(bucket index, count)` pairs, index-sorted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Nonzero buckets as `(index, count)`; bucket `i > 0` covers
    /// `[2^(i-1), 2^i - 1]`, bucket 0 holds zeros.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate quantile (`0.0..=1.0`): the inclusive upper bound of
    /// the bucket holding the q-th observation. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return if i == 0 {
                    0
                } else {
                    (1u64 << i).wrapping_sub(1)
                };
            }
        }
        u64::MAX
    }

    fn saturating_sub(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let earlier_counts: HashMap<u32, u64> = earlier.buckets.iter().copied().collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: self
                .buckets
                .iter()
                .filter_map(|&(i, n)| {
                    let d = n.saturating_sub(earlier_counts.get(&i).copied().unwrap_or(0));
                    (d > 0).then_some((i, d))
                })
                .collect(),
        }
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A shared registry of named metrics.
///
/// Registration (`counter`/`gauge`/`histogram`) takes the registry
/// mutex and allocates on first use of a name; the returned handles
/// record lock-free thereafter. Re-registering a name returns the SAME
/// underlying cell, so a replica that recovers keeps accumulating into
/// its existing counters. Cloning shares the registry.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Adopts an externally created gauge cell under `name`, so a value
    /// maintained elsewhere (e.g. a transport queue depth updated by its
    /// own threads) appears in snapshots without double bookkeeping.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered.
    pub fn register_gauge(&self, name: &str, gauge: Gauge) {
        let mut metrics = self.metrics.lock().unwrap();
        let prev = metrics.insert(name.to_string(), Metric::Gauge(gauge));
        assert!(prev.is_none(), "metric {name:?} is already registered");
    }

    /// Captures every metric into a name-sorted, comparable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.hists.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.metrics.lock().unwrap().len())
            .finish()
    }
}

/// The captured state of a [`Registry`]: name-sorted maps per metric
/// kind. Deterministic runs produce `==`-equal snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram contents by name.
    pub hists: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The window between `earlier` and `self`: counters and histograms
    /// subtract (saturating), gauges keep their later value.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in &mut out.counters {
            *v = v.saturating_sub(earlier.counters.get(name).copied().unwrap_or(0));
        }
        for (name, h) in &mut out.hists {
            if let Some(e) = earlier.hists.get(name) {
                *h = h.saturating_sub(e);
            }
        }
        out
    }

    /// Serializes to JSON with stable (name-sorted) key order.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\n    {}: {v}", json_str(name));
        }
        s.push_str("\n  },\n  \"gauges\": {");
        first = true;
        for (name, v) in &self.gauges {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\n    {}: {v}", json_str(name));
        }
        s.push_str("\n  },\n  \"histograms\": {");
        first = true;
        for (name, h) in &self.hists {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(
                s,
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"buckets\": [",
                json_str(name),
                h.count,
                h.sum
            );
            for (k, &(i, n)) in h.buckets.iter().enumerate() {
                if k > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "[{i}, {n}]");
            }
            s.push_str("]}");
        }
        s.push_str("\n  }\n}");
        s
    }
}

/// Minimal JSON string escaping (metric names are ASCII identifiers,
/// but stay correct for anything).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A per-node view of a [`Registry`] that caches metric handles by
/// `&'static str` name (plus an optional small index, e.g. a peer
/// replica id), so the hot path resolves a metric with one `HashMap`
/// probe instead of a registry mutex acquisition.
///
/// Names are namespaced as `r<node>.<name>` (and `r<node>.<name>.<idx>`
/// for indexed metrics) so every replica's metrics stay distinguishable
/// in one registry. Drivers own one `NodeObs` per replica; it is not
/// `Sync` and wants `&mut` — exactly the shape of a node event loop.
#[derive(Debug)]
pub struct NodeObs {
    registry: Registry,
    prefix: String,
    counters: HashMap<(&'static str, u32), Counter>,
    gauges: HashMap<(&'static str, u32), Gauge>,
    hists: HashMap<(&'static str, u32), Histogram>,
}

/// Cache key for the un-indexed variant of a metric name.
const NO_IDX: u32 = u32::MAX;

impl NodeObs {
    /// A view for node `node` over `registry`.
    pub fn new(registry: Registry, node: u16) -> Self {
        NodeObs {
            registry,
            prefix: format!("r{node}"),
            counters: HashMap::new(),
            gauges: HashMap::new(),
            hists: HashMap::new(),
        }
    }

    fn full_name(prefix: &str, name: &str, idx: u32) -> String {
        if idx == NO_IDX {
            format!("{prefix}.{name}")
        } else {
            format!("{prefix}.{name}.{idx}")
        }
    }

    /// Adds `delta` to the node's counter `name`.
    pub fn count(&mut self, name: &'static str, delta: u64) {
        let (registry, prefix) = (&self.registry, &self.prefix);
        self.counters
            .entry((name, NO_IDX))
            .or_insert_with(|| registry.counter(&Self::full_name(prefix, name, NO_IDX)))
            .add(delta);
    }

    /// Adds `delta` to the node's indexed counter `name.idx`.
    pub fn count_idx(&mut self, name: &'static str, idx: u16, delta: u64) {
        let (registry, prefix) = (&self.registry, &self.prefix);
        self.counters
            .entry((name, u32::from(idx)))
            .or_insert_with(|| registry.counter(&Self::full_name(prefix, name, u32::from(idx))))
            .add(delta);
    }

    /// Sets the node's gauge `name`.
    pub fn gauge(&mut self, name: &'static str, value: i64) {
        let (registry, prefix) = (&self.registry, &self.prefix);
        self.gauges
            .entry((name, NO_IDX))
            .or_insert_with(|| registry.gauge(&Self::full_name(prefix, name, NO_IDX)))
            .set(value);
    }

    /// Sets the node's indexed gauge `name.idx` (e.g. a per-peer depth).
    pub fn gauge_idx(&mut self, name: &'static str, idx: u16, value: i64) {
        let (registry, prefix) = (&self.registry, &self.prefix);
        self.gauges
            .entry((name, u32::from(idx)))
            .or_insert_with(|| registry.gauge(&Self::full_name(prefix, name, u32::from(idx))))
            .set(value);
    }

    /// Records into the node's histogram `name`.
    pub fn hist(&mut self, name: &'static str, value: u64) {
        let (registry, prefix) = (&self.registry, &self.prefix);
        self.hists
            .entry((name, NO_IDX))
            .or_insert_with(|| registry.histogram(&Self::full_name(prefix, name, NO_IDX)))
            .record(value);
    }

    /// The registry this view writes into.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("a.writes");
        c.add(3);
        reg.counter("a.writes").inc(); // same cell
        let g = reg.gauge("a.depth");
        g.set(7);
        g.add(-2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a.writes"], 4);
        assert_eq!(snap.gauges["a.depth"], 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_006);
        // Zeros land in bucket 0; 1 in bucket 1; 2..3 in bucket 2.
        assert_eq!(s.buckets[0], (0, 1));
        assert_eq!(s.buckets[1], (1, 1));
        assert_eq!(s.buckets[2], (2, 2));
        assert_eq!(s.quantile(0.0), 0);
        assert!(s.quantile(0.5) >= 3);
        assert!(s.quantile(1.0) >= 1_000_000);
        // The quantile never exceeds the next power-of-two bound.
        assert!(s.quantile(1.0) < 2_097_152);
    }

    #[test]
    fn snapshot_delta_subtracts_counters_keeps_gauges() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        let h = reg.histogram("h");
        c.add(5);
        g.set(1);
        h.record(10);
        let early = reg.snapshot();
        c.add(2);
        g.set(9);
        h.record(10);
        h.record(2_000);
        let late = reg.snapshot();
        let d = late.delta(&early);
        assert_eq!(d.counters["c"], 2);
        assert_eq!(d.gauges["g"], 9);
        assert_eq!(d.hists["h"].count, 2);
        assert_eq!(d.hists["h"].sum, 2_010);
    }

    #[test]
    fn snapshots_compare_and_export_deterministically() {
        let build = || {
            let reg = Registry::new();
            reg.counter("z.last").add(1);
            reg.counter("a.first").add(2);
            reg.gauge("m.depth").set(-3);
            reg.histogram("lat").record(100);
            reg.snapshot()
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let json = a.to_json();
        // Name-sorted order and all three sections present.
        assert!(json.find("a.first").unwrap() < json.find("z.last").unwrap());
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"m.depth\": -3"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn node_obs_prefixes_and_caches() {
        let reg = Registry::new();
        let mut n0 = NodeObs::new(reg.clone(), 0);
        let mut n1 = NodeObs::new(reg.clone(), 1);
        n0.count("commits", 2);
        n0.count("commits", 1);
        n1.count("commits", 5);
        n0.gauge_idx("outq", 2, 11);
        n0.hist("lat", 64);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["r0.commits"], 3);
        assert_eq!(snap.counters["r1.commits"], 5);
        assert_eq!(snap.gauges["r0.outq.2"], 11);
        assert_eq!(snap.hists["r0.lat"].count, 1);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.gauge("x");
        reg.counter("x");
    }
}
