//! Per-command trace spans with deterministic sampling and a
//! slow-command log.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Stage slots a span can carry. Drivers map their protocol-level stage
/// enum (`rsm_core::obs::TraceStage`) onto indexes below this bound.
pub const MAX_STAGES: usize = 8;

/// Spans retained per tracer (completed + open). Beyond the cap new
/// spans are counted as dropped instead of recorded, bounding memory on
/// unsampled long runs; see [`Tracer::dropped`].
const MAX_SPANS: usize = 1 << 20;

/// Slow-command log bound.
const MAX_SLOW: usize = 4_096;

/// Observability configuration shared by both drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Trace 1-in-2^shift commands (0 = every command), selected by a
    /// deterministic hash of the span key so replays sample the same
    /// commands.
    pub sample_shift: u32,
    /// Completed spans at or above this end-to-end latency (in the
    /// driver's time unit, microseconds everywhere in this workspace)
    /// are copied to the slow-command log.
    pub slow_threshold: Option<u64>,
    /// How often (same time unit) the driver polls protocols for gauge
    /// state (`Protocol::obs_poll`: stable-timestamp lag, `LatestTV`
    /// staleness, ballot).
    pub poll_interval: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            sample_shift: 0,
            slow_threshold: None,
            poll_interval: 10_000,
        }
    }
}

impl ObsConfig {
    /// Trace every command, poll every 10 ms, no slow log.
    pub fn all() -> Self {
        ObsConfig::default()
    }

    /// Sets the sampling shift (trace 1-in-2^`shift` commands).
    pub fn sample_shift(mut self, shift: u32) -> Self {
        self.sample_shift = shift;
        self
    }

    /// Sets the slow-command threshold.
    pub fn slow_threshold(mut self, threshold: u64) -> Self {
        self.slow_threshold = Some(threshold);
        self
    }

    /// Sets the protocol gauge poll interval.
    pub fn poll_interval(mut self, interval: u64) -> Self {
        assert!(interval > 0, "poll interval must be positive");
        self.poll_interval = interval;
        self
    }
}

/// One traced command's stage stamps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The span key (packed from the command id by the driver).
    pub key: u64,
    /// The replica the command was submitted at; mid-pipeline stages
    /// are stamped only there (every replica replicates and executes a
    /// command, but only the origin's pipeline is the client's latency).
    pub origin: u16,
    /// First-wins stage timestamps, indexed by the driver's stage enum.
    pub stages: [Option<u64>; MAX_STAGES],
    /// Same-key re-submissions observed after the first (client
    /// retries re-enter stage 0 without resetting the stamps).
    pub retries: u32,
}

impl Span {
    /// The stamp of `stage`, if recorded.
    pub fn stage(&self, stage: usize) -> Option<u64> {
        self.stages[stage]
    }

    /// `later - earlier` when both stages are stamped.
    pub fn delta(&self, earlier: usize, later: usize) -> Option<u64> {
        Some(self.stages[later]?.saturating_sub(self.stages[earlier]?))
    }
}

#[derive(Debug, Default)]
struct TraceState {
    open: HashMap<u64, Span>,
    /// Completed spans in completion order (deterministic under simnet).
    done: Vec<Span>,
    slow: Vec<Span>,
    dropped: u64,
}

/// Collects [`Span`]s across one run. Cloning shares the collector;
/// all methods take `&self` and are thread-safe (the threaded runtime
/// stamps from node, router, and client threads).
#[derive(Clone, Debug)]
pub struct Tracer {
    cfg: ObsConfig,
    state: Arc<Mutex<TraceState>>,
}

/// splitmix64 — the sampling hash. Deterministic across runs and
/// platforms.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl Tracer {
    /// A tracer with the given sampling and slow-log configuration.
    pub fn new(cfg: ObsConfig) -> Self {
        Tracer {
            cfg,
            state: Arc::new(Mutex::new(TraceState::default())),
        }
    }

    /// The tracer's configuration.
    pub fn config(&self) -> ObsConfig {
        self.cfg
    }

    /// Whether spans with this key are traced. Pure hash check — the
    /// entire cost of an unsampled command.
    pub fn sampled(&self, key: u64) -> bool {
        self.cfg.sample_shift == 0 || mix(key) & ((1 << self.cfg.sample_shift) - 1) == 0
    }

    /// Opens (or re-enters) the span `key` at its origin replica,
    /// stamping stage 0. A repeat `begin` on an open span counts a
    /// retry and keeps the original stamps (first-wins).
    pub fn begin(&self, key: u64, origin: u16, stage0_at: u64) {
        if !self.sampled(key) {
            return;
        }
        let mut st = self.state.lock().unwrap();
        if let Some(span) = st.open.get_mut(&key) {
            span.retries += 1;
            return;
        }
        if st.open.len() + st.done.len() >= MAX_SPANS {
            st.dropped += 1;
            return;
        }
        let mut stages = [None; MAX_STAGES];
        stages[0] = Some(stage0_at);
        st.open.insert(
            key,
            Span {
                key,
                origin,
                stages,
                retries: 0,
            },
        );
    }

    /// Stamps `stage` on the open span `key` (first-wins; no-op when
    /// the key is unsampled or the span was never begun).
    ///
    /// # Panics
    ///
    /// Panics if `stage >= MAX_STAGES`.
    pub fn record(&self, key: u64, stage: usize, at: u64) {
        assert!(stage < MAX_STAGES);
        if !self.sampled(key) {
            return;
        }
        let mut st = self.state.lock().unwrap();
        if let Some(span) = st.open.get_mut(&key) {
            span.stages[stage].get_or_insert(at);
        }
    }

    /// Stamps `stage` only when `replica` is the span's origin — how
    /// drivers keep commit/execute stamps on the client-facing replica
    /// while every replica applies the command.
    pub fn record_at_origin(&self, key: u64, replica: u16, stage: usize, at: u64) {
        assert!(stage < MAX_STAGES);
        if !self.sampled(key) {
            return;
        }
        let mut st = self.state.lock().unwrap();
        if let Some(span) = st.open.get_mut(&key) {
            if span.origin == replica {
                span.stages[stage].get_or_insert(at);
            }
        }
    }

    /// Completes the span: stamps `stage` (the terminal one, e.g.
    /// "replied") and moves it to the completed stream. A span whose
    /// end-to-end latency meets the slow threshold is also copied to
    /// the slow-command log.
    pub fn complete(&self, key: u64, stage: usize, at: u64) {
        assert!(stage < MAX_STAGES);
        if !self.sampled(key) {
            return;
        }
        let mut st = self.state.lock().unwrap();
        let Some(mut span) = st.open.remove(&key) else {
            return;
        };
        span.stages[stage].get_or_insert(at);
        if let Some(threshold) = self.cfg.slow_threshold {
            let e2e = span.stages[0].map(|s| at.saturating_sub(s)).unwrap_or(0);
            if e2e >= threshold && st.slow.len() < MAX_SLOW {
                st.slow.push(span.clone());
            }
        }
        st.done.push(span);
    }

    /// Completed spans in completion order.
    pub fn completed(&self) -> Vec<Span> {
        self.state.lock().unwrap().done.clone()
    }

    /// Spans begun but never completed (client never got a reply —
    /// e.g. lost across a crash), in unspecified order.
    pub fn open_spans(&self) -> Vec<Span> {
        let st = self.state.lock().unwrap();
        let mut open: Vec<Span> = st.open.values().cloned().collect();
        open.sort_by_key(|s| s.key);
        open
    }

    /// The slow-command log (bounded; completion order).
    pub fn slow_spans(&self) -> Vec<Span> {
        self.state.lock().unwrap().slow.clone()
    }

    /// Spans dropped by the retention cap.
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_stamp_first_wins_and_complete() {
        let t = Tracer::new(ObsConfig::all());
        t.begin(7, 2, 100);
        t.record(7, 1, 150);
        t.record(7, 1, 175); // first-wins
        t.record_at_origin(7, 0, 2, 160); // wrong replica: no stamp
        t.record_at_origin(7, 2, 2, 180);
        t.complete(7, 6, 300);
        let done = t.completed();
        assert_eq!(done.len(), 1);
        let span = &done[0];
        assert_eq!(span.stage(0), Some(100));
        assert_eq!(span.stage(1), Some(150));
        assert_eq!(span.stage(2), Some(180));
        assert_eq!(span.stage(6), Some(300));
        assert_eq!(span.delta(0, 6), Some(200));
        assert!(t.open_spans().is_empty());
    }

    #[test]
    fn retries_reuse_the_span() {
        let t = Tracer::new(ObsConfig::all());
        t.begin(9, 0, 10);
        t.begin(9, 0, 500);
        t.complete(9, 6, 600);
        let done = t.completed();
        assert_eq!(done[0].retries, 1);
        assert_eq!(done[0].stage(0), Some(10));
    }

    #[test]
    fn sampling_is_deterministic_and_thins() {
        let t = Tracer::new(ObsConfig::all().sample_shift(3));
        let sampled: Vec<u64> = (0..1_000).filter(|&k| t.sampled(k)).collect();
        // Roughly 1 in 8, same set every time.
        assert!(
            sampled.len() > 60 && sampled.len() < 250,
            "{}",
            sampled.len()
        );
        let t2 = Tracer::new(ObsConfig::all().sample_shift(3));
        let again: Vec<u64> = (0..1_000).filter(|&k| t2.sampled(k)).collect();
        assert_eq!(sampled, again);
        // Unsampled keys never materialize spans.
        for k in 0..100u64 {
            t.begin(k, 0, 1);
            t.complete(k, 6, 2);
        }
        assert!(t.completed().iter().all(|s| t.sampled(s.key)));
    }

    #[test]
    fn slow_log_catches_threshold_crossers() {
        let t = Tracer::new(ObsConfig::all().slow_threshold(100));
        t.begin(1, 0, 0);
        t.complete(1, 6, 99); // fast
        t.begin(2, 0, 0);
        t.complete(2, 6, 100); // slow
        let slow = t.slow_spans();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].key, 2);
        assert_eq!(t.completed().len(), 2);
    }
}
