//! Seeded schedule generator.
//!
//! Every schedule is a pure function of `(seed, protocol)`: the same seed
//! always yields byte-identical knobs and fault scripts, so a failing
//! seed found by the swarm can be replayed anywhere. The generator is
//! *sound by construction* — it only emits fault programs the protocols
//! are contractually required to survive:
//!
//! - at most a minority of replicas are crashed at any instant;
//! - every crash is recovered, every partition healed, and every link
//!   chaos window cleared before the settle window at the end of the
//!   horizon, so the liveness oracle ("commits resume after the last
//!   fault") is a fair check;
//! - partition windows never overlap crash windows (the combination can
//!   transiently destroy the quorum even with a minority down);
//! - clock anomalies are bounded: steps within ±100 ms, freezes and
//!   drift bursts well under the settle window, so they may perturb
//!   latency but never excuse a safety or liveness violation.

use harness::Fault;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsm_core::time::{Micros, MILLIS};
use rsm_core::ReplicaId;

use crate::schedule::{Knobs, ProtocolKind, Schedule};

/// Quiet tail after the last fault effect: long enough for failure
/// detection, re-election, reconfiguration, and client retries to run
/// their course before the liveness oracle looks for commits.
pub const SETTLE_US: Micros = 2_500 * MILLIS;

/// Faults start after warmup plus a little steady-state traffic.
pub const FAULT_START_US: Micros = 800 * MILLIS;

/// Generates the schedule for a seed, rotating protocols by seed so a
/// contiguous seed range covers all of them evenly.
pub fn generate(seed: u64) -> Schedule {
    let protocol = ProtocolKind::ALL[(seed % ProtocolKind::ALL.len() as u64) as usize];
    generate_for(seed, protocol)
}

/// Generates the schedule for a seed and a fixed protocol.
pub fn generate_for(seed: u64, protocol: ProtocolKind) -> Schedule {
    // Mix the protocol into the stream so the same seed produces
    // different (but still deterministic) programs per protocol.
    let stream = seed ^ (protocol_index(protocol) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut rng = StdRng::seed_from_u64(stream);

    let replicas = if rng.gen_range(0..4usize) == 0 { 5 } else { 3 };
    let clients_per_site = rng.gen_range(1..=3usize);
    // The dedup window must cover the client population — an undersized
    // window legitimately re-applies retries (LRU eviction), which is a
    // misconfiguration, not a protocol bug. The tight option stresses
    // eviction at exactly the contractual bound.
    let total_clients = replicas * clients_per_site;
    let knobs = Knobs {
        replicas,
        clients_per_site,
        read_pct: *pick(&mut rng, &[0u8, 20, 50]),
        cas_pct: *pick(&mut rng, &[0u8, 20, 40]),
        batch_max: *pick(&mut rng, &[0usize, 0, 8]),
        checkpoint_every: *pick(&mut rng, &[0u64, 32, 64]),
        session_window: *pick(&mut rng, &[0, 0, total_clients, 4 * total_clients]),
        pre_vote: rng.gen::<bool>(),
        horizon_ms: *pick(&mut rng, &[6_000u64, 8_000, 10_000]),
        latency_us: *pick(&mut rng, &[5_000u64, 20_000]),
        jitter_us: *pick(&mut rng, &[0u64, 2_000, 5_000]),
    };

    let lo = FAULT_START_US;
    let hi = knobs.horizon_ms * MILLIS - SETTLE_US;
    let max_down = (replicas - 1) / 2;

    let mut entries: Vec<(Micros, Fault)> = Vec::new();
    // Closed [start, end] windows during which a replica is down or a
    // link is cut; used to keep the program survivable.
    let mut crashes: Vec<(Micros, Micros, usize)> = Vec::new();
    let mut partitions: Vec<(Micros, Micros)> = Vec::new();

    let actions = rng.gen_range(2..=7usize);
    for _ in 0..actions {
        match rng.gen_range(0..100u32) {
            0..=24 => {
                // Crash + recover pair.
                let dur = rng.gen_range(300 * MILLIS..=1_500 * MILLIS);
                let t1 = rng.gen_range(lo..hi.saturating_sub(dur));
                let t2 = t1 + dur;
                let victim = rng.gen_range(0..replicas);
                let concurrent = crashes
                    .iter()
                    .filter(|&&(s, e, _)| overlaps(s, e, t1, t2))
                    .count();
                let victim_busy = crashes
                    .iter()
                    .any(|&(s, e, v)| v == victim && overlaps(s, e, t1, t2));
                let cut = partitions.iter().any(|&(s, e)| overlaps(s, e, t1, t2));
                if concurrent >= max_down || victim_busy || cut {
                    // Degrade to a harmless clock nudge instead of
                    // risking quorum loss.
                    push_clock_jump(&mut entries, &mut rng, replicas, lo, hi);
                    continue;
                }
                let r = ReplicaId::new(victim as u16);
                entries.push((t1, Fault::Crash(r)));
                entries.push((t2, Fault::Recover(r)));
                crashes.push((t1, t2, victim));
            }
            25..=39 => {
                // Partition + heal pair on one link.
                let dur = rng.gen_range(300 * MILLIS..=1_500 * MILLIS);
                let t1 = rng.gen_range(lo..hi.saturating_sub(dur));
                let t2 = t1 + dur;
                let clash = crashes.iter().any(|&(s, e, _)| overlaps(s, e, t1, t2))
                    || partitions.iter().any(|&(s, e)| overlaps(s, e, t1, t2));
                if clash {
                    push_clock_jump(&mut entries, &mut rng, replicas, lo, hi);
                    continue;
                }
                let a = rng.gen_range(0..replicas);
                let b = (a + rng.gen_range(1..replicas)) % replicas;
                let (a, b) = (ReplicaId::new(a as u16), ReplicaId::new(b as u16));
                entries.push((t1, Fault::Partition(a, b)));
                entries.push((t2, Fault::Heal(a, b)));
                partitions.push((t1, t2));
            }
            40..=54 => push_clock_jump(&mut entries, &mut rng, replicas, lo, hi),
            55..=64 => {
                let dur = rng.gen_range(10 * MILLIS..=400 * MILLIS);
                let at = rng.gen_range(lo..hi);
                let r = ReplicaId::new(rng.gen_range(0..replicas) as u16);
                entries.push((at, Fault::ClockFreeze(r, dur)));
            }
            65..=79 => {
                let dur = rng.gen_range(100 * MILLIS..=1_000 * MILLIS);
                let at = rng.gen_range(lo..hi.saturating_sub(dur));
                let magnitude = rng.gen_range(10_000..=200_000i64);
                let ppm = if rng.gen::<bool>() {
                    magnitude
                } else {
                    -magnitude
                };
                let r = ReplicaId::new(rng.gen_range(0..replicas) as u16);
                entries.push((at, Fault::ClockDrift(r, ppm, dur)));
            }
            80..=89 => {
                // Bounded extra one-way delay on one link for a window.
                let dur = rng.gen_range(300 * MILLIS..=1_200 * MILLIS);
                let t1 = rng.gen_range(lo..hi.saturating_sub(dur));
                let extra = rng.gen_range(5 * MILLIS..=60 * MILLIS);
                let (a, b) = link(&mut rng, replicas);
                entries.push((t1, Fault::LinkDelay(a, b, extra)));
                entries.push((t1 + dur, Fault::LinkDelay(a, b, 0)));
            }
            _ => {
                // Per-message jitter (cross-link reordering) for a window.
                let dur = rng.gen_range(300 * MILLIS..=1_200 * MILLIS);
                let t1 = rng.gen_range(lo..hi.saturating_sub(dur));
                let jitter = rng.gen_range(MILLIS..=30 * MILLIS);
                let (a, b) = link(&mut rng, replicas);
                entries.push((t1, Fault::LinkJitter(a, b, jitter)));
                entries.push((t1 + dur, Fault::LinkJitter(a, b, 0)));
            }
        }
    }

    entries.sort_by_key(|&(at, _)| at);
    Schedule {
        seed,
        protocol,
        knobs,
        entries,
        canary: false,
    }
}

/// A canary schedule: same generator, but with the session-dedup bypass
/// armed and a guaranteed retry-duplicating fault injected. Used to
/// prove the pipeline still catches (and shrinks) the known-fixed
/// retry double-apply bug.
///
/// The trigger is a partition between a client site and the Paxos
/// leader: the forwarded command parks on the cut link (or in the
/// candidate's pending queue), the client's retries stack behind it,
/// and at heal every copy is decided in its own slot. With dedup
/// bypassed each copy applies — a deterministic duplicate. The trigger
/// targets the leader-based protocols; use [`ProtocolKind::Paxos`] or
/// [`ProtocolKind::PaxosBcast`].
pub fn canary(seed: u64, protocol: ProtocolKind) -> Schedule {
    let mut s = generate_for(seed, protocol);
    s.canary = true;
    // Keep the generated clock/link chaos but replace the crash and
    // partition program with the one injected partition window, so the
    // trigger can never stack with a generated fault into quorum loss.
    s.entries.retain(|(_, f)| {
        !matches!(
            f,
            Fault::Crash(_) | Fault::Recover(_) | Fault::Partition(_, _) | Fault::Heal(_, _)
        )
    });
    // Cut site 0's clients off from the leader (replica 1) for long
    // enough that the 800 ms retry timer fires at least once.
    let (a, b) = (ReplicaId::new(0), ReplicaId::new(1));
    s.entries.push((1_200 * MILLIS, Fault::Partition(a, b)));
    s.entries.push((2_700 * MILLIS, Fault::Heal(a, b)));
    s.entries.sort_by_key(|&(t, _)| t);
    s
}

fn protocol_index(p: ProtocolKind) -> usize {
    ProtocolKind::ALL.iter().position(|&q| q == p).unwrap()
}

fn overlaps(s: Micros, e: Micros, t1: Micros, t2: Micros) -> bool {
    s <= t2 && t1 <= e
}

fn pick<'a, T>(rng: &mut StdRng, options: &'a [T]) -> &'a T {
    &options[rng.gen_range(0..options.len())]
}

fn link(rng: &mut StdRng, replicas: usize) -> (ReplicaId, ReplicaId) {
    let a = rng.gen_range(0..replicas);
    let b = (a + rng.gen_range(1..replicas)) % replicas;
    (ReplicaId::new(a as u16), ReplicaId::new(b as u16))
}

fn push_clock_jump(
    entries: &mut Vec<(Micros, Fault)>,
    rng: &mut StdRng,
    replicas: usize,
    lo: Micros,
    hi: Micros,
) {
    let at = rng.gen_range(lo..hi);
    let magnitude = rng.gen_range(MILLIS as i64..=100 * MILLIS as i64);
    let delta = if rng.gen::<bool>() {
        magnitude
    } else {
        -magnitude
    };
    let r = ReplicaId::new(rng.gen_range(0..replicas) as u16);
    entries.push((at, Fault::ClockJump(r, delta)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_means_identical_schedule() {
        for seed in 0..50 {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        // Not a tautology — proves the seed actually feeds the stream.
        let distinct: std::collections::HashSet<String> =
            (0..20).map(|s| format!("{:?}", generate(s))).collect();
        assert!(distinct.len() >= 19);
    }

    #[test]
    fn schedules_are_survivable_by_construction() {
        for seed in 0..300 {
            let s = generate(seed);
            let hi = s.knobs.horizon_ms * MILLIS - SETTLE_US;
            let max_down = (s.knobs.replicas - 1) / 2;

            let mut down: Vec<bool> = vec![false; s.knobs.replicas];
            let mut cut = 0usize;
            let mut delayed: std::collections::HashMap<(usize, usize), bool> = Default::default();
            for &(at, f) in &s.entries {
                assert!(at >= FAULT_START_US, "seed {seed}: fault before start");
                assert!(at <= hi, "seed {seed}: fault inside settle window");
                match f {
                    Fault::Crash(r) => {
                        down[r.index()] = true;
                        let n_down = down.iter().filter(|&&d| d).count();
                        assert!(n_down <= max_down, "seed {seed}: quorum lost");
                        assert_eq!(cut, 0, "seed {seed}: crash under partition");
                    }
                    Fault::Recover(r) => down[r.index()] = false,
                    Fault::Partition(_, _) => {
                        cut += 1;
                        assert!(
                            down.iter().all(|&d| !d),
                            "seed {seed}: partition under crash"
                        );
                    }
                    Fault::Heal(_, _) => cut -= 1,
                    Fault::ClockJump(_, d) => {
                        assert!(d.unsigned_abs() <= 100 * MILLIS, "seed {seed}")
                    }
                    Fault::ClockFreeze(_, d) => assert!(d <= 400 * MILLIS, "seed {seed}"),
                    Fault::ClockDrift(_, ppm, d) => {
                        assert!(ppm.unsigned_abs() <= 200_000, "seed {seed}");
                        assert!(d <= 1_000 * MILLIS, "seed {seed}");
                    }
                    Fault::LinkDelay(a, b, d) => {
                        delayed.insert((a.index(), b.index()), d > 0);
                    }
                    Fault::LinkJitter(a, b, d) => {
                        delayed.insert((a.index(), b.index()), d > 0);
                    }
                }
            }
            assert!(down.iter().all(|&d| !d), "seed {seed}: unrecovered crash");
            assert_eq!(cut, 0, "seed {seed}: unhealed partition");
            assert!(
                delayed.values().all(|&on| !on),
                "seed {seed}: link chaos left on"
            );
        }
    }

    #[test]
    fn canary_always_has_a_leader_partition_to_force_retries() {
        for seed in 0..40 {
            let s = canary(seed, ProtocolKind::PaxosBcast);
            assert!(s.canary);
            assert!(s
                .entries
                .iter()
                .any(|(_, f)| matches!(f, Fault::Partition(_, _))));
            assert!(s
                .entries
                .iter()
                .any(|(_, f)| matches!(f, Fault::Heal(_, _))));
        }
    }
}
