//! The swarm driver: generate → execute → grade → shrink → reproduce.
//!
//! A swarm runs a contiguous seed range through the generator, executes
//! every schedule, and for each failure runs the shrinker and renders a
//! self-contained reproducer ready to paste into
//! `tests/chaos_regressions.rs`. Everything is a pure function of the
//! starting seed, so a CI failure names the exact seed to replay.

use crate::exec::{self, Failure};
use crate::gen;
use crate::schedule::{ProtocolKind, Schedule};
use crate::shrink::{self, ShrinkOutcome};

/// Swarm parameters.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// First seed; the swarm runs seeds `start_seed..start_seed + schedules`.
    pub start_seed: u64,
    /// How many schedules to run per protocol rotation.
    pub schedules: usize,
    /// Protocols to rotate through (defaults to all four).
    pub protocols: Vec<ProtocolKind>,
    /// Simulator-run budget for shrinking each failure.
    pub shrink_budget: usize,
    /// Stop after this many distinct failures (0 = never stop early).
    pub max_failures: usize,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            start_seed: 0,
            schedules: 100,
            protocols: ProtocolKind::ALL.to_vec(),
            shrink_budget: 80,
            max_failures: 3,
        }
    }
}

/// One failing schedule, shrunk and rendered.
#[derive(Debug, Clone)]
pub struct SwarmFailure {
    /// The schedule as generated.
    pub original: Schedule,
    /// The failure the original produced.
    pub failure: Failure,
    /// The shrinker's output.
    pub shrunk: ShrinkOutcome,
}

impl SwarmFailure {
    /// Renders a complete `#[test]` function reproducing the minimized
    /// failure, ready to commit to `tests/chaos_regressions.rs`.
    pub fn reproducer(&self) -> String {
        let s = &self.shrunk.minimized;
        let name = format!(
            "chaos_seed_{}_{}_{}",
            s.seed,
            s.protocol.name().replace('-', "_"),
            self.shrunk.failure.kind.name().replace('-', "_"),
        );
        format!(
            "/// Auto-shrunk reproducer: seed {} on {} failed the `{}` oracle.\n\
             /// Keep this test failing-then-fixed: it must PASS once the bug is\n\
             /// fixed (the assertion below flips from expecting the failure to\n\
             /// expecting a clean run).\n\
             #[test]\n\
             fn {}() {{\n\
             let schedule = {};\n\
             assert_eq!(rsm_chaos::exec::run(&schedule), None);\n\
             }}\n",
            self.original.seed,
            s.protocol.name(),
            self.shrunk.failure.kind.name(),
            name,
            indent(&s.to_rust_literal(), 4),
        )
    }
}

/// Swarm results.
#[derive(Debug, Clone)]
pub struct SwarmReport {
    /// Schedules executed (excluding shrink replays).
    pub executed: usize,
    /// Failures found, shrunk, and rendered.
    pub failures: Vec<SwarmFailure>,
}

impl SwarmReport {
    /// True when every schedule passed every oracle.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the swarm. `progress` is called after every schedule with
/// (seed, protocol, failed-so-far) — the CLI uses it for a heartbeat,
/// tests pass a no-op.
pub fn run_swarm(
    cfg: &SwarmConfig,
    mut progress: impl FnMut(u64, ProtocolKind, usize),
) -> SwarmReport {
    let mut report = SwarmReport {
        executed: 0,
        failures: Vec::new(),
    };
    'outer: for i in 0..cfg.schedules {
        let seed = cfg.start_seed + i as u64;
        for &protocol in &cfg.protocols {
            let schedule = gen::generate_for(seed, protocol);
            report.executed += 1;
            if let Some(failure) = exec::run(&schedule) {
                let shrunk = shrink::shrink(&schedule, &failure, cfg.shrink_budget);
                report.failures.push(SwarmFailure {
                    original: schedule,
                    failure,
                    shrunk,
                });
                if cfg.max_failures > 0 && report.failures.len() >= cfg.max_failures {
                    break 'outer;
                }
            }
            progress(seed, protocol, report.failures.len());
        }
    }
    report
}

fn indent(text: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    text.lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 0 {
                l.to_string()
            } else {
                format!("{pad}{l}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::FailureKind;

    #[test]
    fn reproducer_text_is_a_complete_test_fn() {
        let schedule = gen::canary(2, ProtocolKind::ClockRsm);
        let failure = Failure {
            kind: FailureKind::Duplicate,
            detail: String::new(),
        };
        let sf = SwarmFailure {
            original: schedule.clone(),
            failure: failure.clone(),
            shrunk: ShrinkOutcome {
                minimized: schedule,
                failure,
                runs: 0,
            },
        };
        let text = sf.reproducer();
        assert!(text.contains("#[test]"));
        assert!(text.contains("fn chaos_seed_2_clock_rsm_duplicate()"));
        assert!(text.contains("rsm_chaos::exec::run(&schedule)"));
        assert!(text.contains("ProtocolKind::ClockRsm"));
    }
}
