//! The unit the fuzzer searches over: a fault schedule plus the knob
//! settings it runs under.
//!
//! A [`Schedule`] is a pure value — protocol choice, cluster shape,
//! workload mix, and a time-ordered list of [`Fault`] injections. Running
//! one is deterministic (the simulator derives everything else from the
//! seed), so a schedule that fails once fails forever: it can be shrunk,
//! printed as a Rust literal, and committed as a regression test.

use harness::Fault;
use rsm_core::time::Micros;

/// Which replication protocol a schedule exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// Clock-RSM with failure detection and reconfiguration enabled.
    ClockRsm,
    /// Leader-based Multi-Paxos (commit notices), leader failover leases.
    Paxos,
    /// Multi-Paxos with accept broadcast, leader failover leases.
    PaxosBcast,
    /// Mencius rotating coordinator.
    Mencius,
}

impl ProtocolKind {
    /// All kinds, in swarm rotation order.
    pub const ALL: [ProtocolKind; 4] = [
        ProtocolKind::ClockRsm,
        ProtocolKind::Paxos,
        ProtocolKind::PaxosBcast,
        ProtocolKind::Mencius,
    ];

    /// Short name used in artifacts and test labels.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::ClockRsm => "clock-rsm",
            ProtocolKind::Paxos => "paxos",
            ProtocolKind::PaxosBcast => "paxos-bcast",
            ProtocolKind::Mencius => "mencius",
        }
    }

    fn literal(self) -> &'static str {
        match self {
            ProtocolKind::ClockRsm => "ProtocolKind::ClockRsm",
            ProtocolKind::Paxos => "ProtocolKind::Paxos",
            ProtocolKind::PaxosBcast => "ProtocolKind::PaxosBcast",
            ProtocolKind::Mencius => "ProtocolKind::Mencius",
        }
    }
}

/// Configuration knobs a schedule fixes for its run. The generator
/// diversifies these (swarm testing): many bugs only surface under a
/// particular batching/checkpoint/session-window combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Knobs {
    /// Cluster size (3 or 5).
    pub replicas: usize,
    /// Closed-loop clients per site, on every site.
    pub clients_per_site: usize,
    /// Percentage of operations issued as reads.
    pub read_pct: u8,
    /// Percentage of writes issued as private-key CAS chains; any CAS
    /// failure is a correctness violation (see `harness::workload`).
    pub cas_pct: u8,
    /// Batch cap (0 = batching disabled).
    pub batch_max: usize,
    /// Checkpoint cadence in commits, with compaction (0 = disabled).
    pub checkpoint_every: u64,
    /// Session dedup window override (0 = protocol default).
    pub session_window: usize,
    /// Use pre-vote probing before Paxos elections (ignored by the
    /// other protocols).
    pub pre_vote: bool,
    /// Measured run length in milliseconds; all fault effects clear
    /// well before the end so the liveness oracle has a quiet tail.
    pub horizon_ms: u64,
    /// Uniform one-way link latency in microseconds.
    pub latency_us: Micros,
    /// Uniform per-message network jitter bound in microseconds.
    pub jitter_us: Micros,
}

/// One searched input to the simulator: protocol, knobs, and a fault
/// script. `canary` additionally disables session dedup under retries
/// (a resurrected, known-fixed bug) so the pipeline can prove it still
/// catches and shrinks that class of failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Seed for both the workload RNG and the simulator.
    pub seed: u64,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Fixed configuration for this run.
    pub knobs: Knobs,
    /// Fault injections at absolute virtual times (sorted ascending).
    pub entries: Vec<(Micros, Fault)>,
    /// Re-introduce the session-dedup bug (test builds only).
    pub canary: bool,
}

impl Schedule {
    /// Virtual time of the last fault entry (0 if the script is empty).
    pub fn last_fault_at(&self) -> Micros {
        self.entries.iter().map(|&(at, _)| at).max().unwrap_or(0)
    }

    /// Renders the schedule as a Rust expression that reconstructs it
    /// verbatim — the payload of a committed reproducer. The emitted
    /// text only needs `rsm_chaos::{Schedule, Knobs, ProtocolKind}`,
    /// `harness::Fault`, and `rsm_core::ReplicaId` in scope.
    pub fn to_rust_literal(&self) -> String {
        let mut s = String::new();
        s.push_str("Schedule {\n");
        s.push_str(&format!("    seed: {},\n", self.seed));
        s.push_str(&format!("    protocol: {},\n", self.protocol.literal()));
        let k = &self.knobs;
        s.push_str(&format!(
            "    knobs: Knobs {{ replicas: {}, clients_per_site: {}, read_pct: {}, \
             cas_pct: {}, batch_max: {}, checkpoint_every: {}, session_window: {}, \
             pre_vote: {}, horizon_ms: {}, latency_us: {}, jitter_us: {} }},\n",
            k.replicas,
            k.clients_per_site,
            k.read_pct,
            k.cas_pct,
            k.batch_max,
            k.checkpoint_every,
            k.session_window,
            k.pre_vote,
            k.horizon_ms,
            k.latency_us,
            k.jitter_us,
        ));
        if self.entries.is_empty() {
            s.push_str("    entries: vec![],\n");
        } else {
            s.push_str("    entries: vec![\n");
            for (at, fault) in &self.entries {
                s.push_str(&format!("        ({}, {}),\n", at, fault_literal(fault)));
            }
            s.push_str("    ],\n");
        }
        s.push_str(&format!("    canary: {},\n", self.canary));
        s.push('}');
        s
    }
}

fn fault_literal(f: &Fault) -> String {
    fn r(id: rsm_core::ReplicaId) -> String {
        format!("ReplicaId::new({})", id.index())
    }
    match *f {
        Fault::Crash(a) => format!("Fault::Crash({})", r(a)),
        Fault::Recover(a) => format!("Fault::Recover({})", r(a)),
        Fault::Partition(a, b) => format!("Fault::Partition({}, {})", r(a), r(b)),
        Fault::Heal(a, b) => format!("Fault::Heal({}, {})", r(a), r(b)),
        Fault::ClockJump(a, d) => format!("Fault::ClockJump({}, {})", r(a), d),
        Fault::ClockFreeze(a, d) => format!("Fault::ClockFreeze({}, {})", r(a), d),
        Fault::ClockDrift(a, ppm, d) => {
            format!("Fault::ClockDrift({}, {}, {})", r(a), ppm, d)
        }
        Fault::LinkDelay(a, b, d) => {
            format!("Fault::LinkDelay({}, {}, {})", r(a), r(b), d)
        }
        Fault::LinkJitter(a, b, d) => {
            format!("Fault::LinkJitter({}, {}, {})", r(a), r(b), d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsm_core::ReplicaId;

    fn sample() -> Schedule {
        Schedule {
            seed: 7,
            protocol: ProtocolKind::Mencius,
            knobs: Knobs {
                replicas: 3,
                clients_per_site: 2,
                read_pct: 20,
                cas_pct: 40,
                batch_max: 8,
                checkpoint_every: 32,
                session_window: 4,
                pre_vote: true,
                horizon_ms: 6_000,
                latency_us: 20_000,
                jitter_us: 2_000,
            },
            entries: vec![
                (1_000_000, Fault::Crash(ReplicaId::new(2))),
                (
                    1_500_000,
                    Fault::ClockDrift(ReplicaId::new(0), -150_000, 400_000),
                ),
                (2_000_000, Fault::Recover(ReplicaId::new(2))),
            ],
            canary: true,
        }
    }

    #[test]
    fn literal_mentions_every_component() {
        let lit = sample().to_rust_literal();
        assert!(lit.contains("seed: 7"));
        assert!(lit.contains("ProtocolKind::Mencius"));
        assert!(lit.contains("Fault::Crash(ReplicaId::new(2))"));
        assert!(lit.contains("Fault::ClockDrift(ReplicaId::new(0), -150000, 400000)"));
        assert!(lit.contains("canary: true"));
        assert!(lit.contains("checkpoint_every: 32"));
    }

    #[test]
    fn last_fault_at_takes_the_max() {
        assert_eq!(sample().last_fault_at(), 2_000_000);
        let empty = Schedule {
            entries: vec![],
            ..sample()
        };
        assert_eq!(empty.last_fault_at(), 0);
    }
}
