//! VOPR-style deterministic chaos fuzzer for the replication stack.
//!
//! The pipeline, end to end:
//!
//! 1. [`gen::generate`] expands a seed into a [`schedule::Schedule`] — a
//!    protocol choice, configuration knobs, and a fault script composed
//!    of crashes, partitions, clock anomalies, and link chaos, sound by
//!    construction (the cluster is contractually required to survive it).
//! 2. [`exec::run`] executes the schedule under the deterministic
//!    simulator and grades the result against every oracle: the
//!    linearizability checkers, replica state-hash agreement, CAS-chain
//!    integrity, log boundedness under compaction, and post-fault
//!    liveness.
//! 3. [`shrink::shrink`] delta-debugs a failing schedule down to a
//!    minimal script that still fails the *same* oracle (the vendored
//!    proptest shim has no shrinking — this crate supplies it).
//! 4. [`swarm::run_swarm`] drives seed ranges through the above and
//!    renders each minimized failure as a self-contained `#[test]`
//!    reproducer for `tests/chaos_regressions.rs`.
//!
//! Everything is a pure function of the seed: the same seed replays the
//! same schedule, the same failure, and the same shrink, byte for byte.
//!
//! The `chaos_swarm` binary exposes the swarm for CI:
//!
//! ```text
//! chaos_swarm --seeds 0..300 --shrink-budget 80 --artifact target/chaos.txt
//! ```

pub mod exec;
pub mod gen;
pub mod schedule;
pub mod shrink;
pub mod swarm;

pub use exec::{Failure, FailureKind};
pub use schedule::{Knobs, ProtocolKind, Schedule};
pub use shrink::ShrinkOutcome;
pub use swarm::{SwarmConfig, SwarmFailure, SwarmReport};
