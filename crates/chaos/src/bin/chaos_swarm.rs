//! CI entry point for the chaos swarm.
//!
//! Runs a seed range through the generate → execute → grade → shrink
//! pipeline and exits non-zero if any schedule fails an oracle. On
//! failure it writes an artifact file containing, for every failure:
//! the seed, the failing oracle, the failure detail, and a minimized
//! reproducer test ready to commit to `tests/chaos_regressions.rs`.
//!
//! Usage:
//!
//! ```text
//! chaos_swarm [--seeds LO..HI] [--protocols clock-rsm,paxos,...]
//!             [--shrink-budget N] [--max-failures N] [--artifact PATH]
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use rsm_chaos::schedule::ProtocolKind;
use rsm_chaos::swarm::{run_swarm, SwarmConfig};

fn main() -> ExitCode {
    let mut cfg = SwarmConfig {
        start_seed: 0,
        schedules: 100,
        protocols: ProtocolKind::ALL.to_vec(),
        shrink_budget: 80,
        max_failures: 3,
    };
    let mut artifact: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args
            .get(i + 1)
            .map(String::as_str)
            .unwrap_or_else(|| die(&format!("{flag} needs a value")));
        match flag {
            "--seeds" => {
                let (lo, hi) = value
                    .split_once("..")
                    .unwrap_or_else(|| die("--seeds expects LO..HI"));
                let lo: u64 = lo.parse().unwrap_or_else(|_| die("bad --seeds low bound"));
                let hi: u64 = hi.parse().unwrap_or_else(|_| die("bad --seeds high bound"));
                if hi <= lo {
                    die("--seeds range is empty");
                }
                cfg.start_seed = lo;
                cfg.schedules = (hi - lo) as usize;
            }
            "--protocols" => {
                cfg.protocols = value
                    .split(',')
                    .map(|name| {
                        ProtocolKind::ALL
                            .into_iter()
                            .find(|p| p.name() == name)
                            .unwrap_or_else(|| die(&format!("unknown protocol {name}")))
                    })
                    .collect();
            }
            "--shrink-budget" => {
                cfg.shrink_budget = value.parse().unwrap_or_else(|_| die("bad budget"));
            }
            "--max-failures" => {
                cfg.max_failures = value.parse().unwrap_or_else(|_| die("bad count"));
            }
            "--artifact" => artifact = Some(value.to_string()),
            other => die(&format!("unknown flag {other}")),
        }
        i += 2;
    }

    let protocols: Vec<&str> = cfg.protocols.iter().map(|p| p.name()).collect();
    println!(
        "chaos swarm: seeds {}..{} x [{}], shrink budget {}",
        cfg.start_seed,
        cfg.start_seed + cfg.schedules as u64,
        protocols.join(", "),
        cfg.shrink_budget,
    );

    let mut done = 0usize;
    let total = cfg.schedules * cfg.protocols.len();
    let report = run_swarm(&cfg, |seed, protocol, failures| {
        done += 1;
        if done.is_multiple_of(25) || done == total {
            println!(
                "  [{done}/{total}] seed {seed} ({}) — {failures} failure(s) so far",
                protocol.name()
            );
        }
    });

    println!(
        "chaos swarm: {} schedules executed, {} failure(s)",
        report.executed,
        report.failures.len()
    );
    if report.all_ok() {
        return ExitCode::SUCCESS;
    }

    let mut text = String::new();
    for f in &report.failures {
        text.push_str(&format!(
            "== seed {} protocol {} oracle {} ==\n{}\n\n\
             original schedule ({} fault entries), minimized to {} in {} runs:\n\n{}\n\n",
            f.original.seed,
            f.original.protocol.name(),
            f.failure.kind.name(),
            f.failure.detail,
            f.original.entries.len(),
            f.shrunk.minimized.entries.len(),
            f.shrunk.runs,
            f.reproducer(),
        ));
    }
    print!("{text}");
    if let Some(path) = artifact {
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(text.as_bytes())) {
            Ok(()) => println!("reproducers written to {path}"),
            Err(e) => eprintln!("could not write artifact {path}: {e}"),
        }
    }
    ExitCode::FAILURE
}

fn die(msg: &str) -> ! {
    eprintln!("chaos_swarm: {msg}");
    std::process::exit(2);
}
