//! Delta-debugging shrinker for failing schedules.
//!
//! The vendored proptest shim deliberately has no shrinking, so the
//! fuzzer ships its own: a ddmin pass over the fault script, then knob
//! simplification, then horizon truncation, iterated to a fixed point
//! under a run budget. The invariant throughout is that the candidate
//! still fails with the *same* [`FailureKind`] as the original — a
//! shrunk reproducer demonstrates the original class of bug, not some
//! artifact of the shrinking itself.

use harness::Fault;
use rsm_core::time::MILLIS;

use crate::exec::{self, Failure, FailureKind};
use crate::gen::{FAULT_START_US, SETTLE_US};
use crate::schedule::Schedule;

/// Result of a shrink: the minimal schedule found, the failure it
/// reproduces, and how many simulator runs the search spent.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The smallest schedule that still fails with the original kind.
    pub minimized: Schedule,
    /// The failure the minimized schedule produces.
    pub failure: Failure,
    /// Simulator runs consumed by the search.
    pub runs: usize,
}

/// Shrinks `original` (which fails with `failure`) under a budget of at
/// most `budget` simulator runs. Always returns a schedule that fails
/// with the original kind — in the worst case, the original itself.
pub fn shrink(original: &Schedule, failure: &Failure, budget: usize) -> ShrinkOutcome {
    let mut search = Search {
        kind: failure.kind,
        runs: 0,
        budget,
        best_failure: failure.clone(),
    };
    let mut best = original.clone();

    // Iterate all phases to a fixed point: a knob reduction can unlock
    // further entry removal and vice versa.
    loop {
        let before = (best.entries.len(), best.knobs, best.canary);
        ddmin_entries(&mut best, &mut search);
        reduce_knobs(&mut best, &mut search);
        truncate_horizon(&mut best, &mut search);
        if search.exhausted() || (best.entries.len(), best.knobs, best.canary) == before {
            break;
        }
    }

    ShrinkOutcome {
        minimized: best,
        failure: search.best_failure,
        runs: search.runs,
    }
}

struct Search {
    kind: FailureKind,
    runs: usize,
    budget: usize,
    best_failure: Failure,
}

impl Search {
    fn exhausted(&self) -> bool {
        self.runs >= self.budget
    }

    /// Runs a candidate; true iff it reproduces the original kind.
    fn holds(&mut self, candidate: &Schedule) -> bool {
        if self.exhausted() {
            return false;
        }
        // A liveness repro must stay survivable-by-construction; an
        // unsound candidate (say, a crash whose recovery was dropped)
        // stalls trivially and would shrink to a meaningless script.
        if self.kind == FailureKind::Stalled && !survivable(candidate) {
            return false;
        }
        self.runs += 1;
        match exec::run(candidate) {
            Some(f) if f.kind == self.kind => {
                self.best_failure = f;
                true
            }
            _ => false,
        }
    }
}

/// Greedy ddmin over the fault script: try dropping windows of entries,
/// halving the window until single entries.
fn ddmin_entries(best: &mut Schedule, search: &mut Search) {
    let mut window = best.entries.len().div_ceil(2).max(1);
    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < best.entries.len() {
            if search.exhausted() {
                return;
            }
            let end = (start + window).min(best.entries.len());
            let mut candidate = best.clone();
            candidate.entries.drain(start..end);
            if search.holds(&candidate) {
                *best = candidate;
                progressed = true;
                // Re-test the same position: the next window slid in.
            } else {
                start = end;
            }
        }
        if window == 1 && !progressed {
            return;
        }
        if !progressed {
            window = (window / 2).max(1);
        }
    }
}

/// Tries each knob simplification once, keeping those that preserve the
/// failure. Order is roughly "most simplifying first".
fn reduce_knobs(best: &mut Schedule, search: &mut Search) {
    let reductions: Vec<fn(&mut Schedule)> = vec![
        |s| s.knobs.clients_per_site = 1,
        |s| s.knobs.read_pct = 0,
        |s| s.knobs.cas_pct = 0,
        |s| s.knobs.batch_max = 0,
        |s| s.knobs.checkpoint_every = 0,
        |s| s.knobs.session_window = 0,
        |s| s.knobs.pre_vote = false,
        |s| s.knobs.jitter_us = 0,
        |s| s.knobs.latency_us = 5_000,
        |s| {
            if s.knobs.replicas > 3 && max_replica_ref(s) < 3 {
                s.knobs.replicas = 3;
            }
        },
    ];
    for reduce in reductions {
        let mut candidate = best.clone();
        reduce(&mut candidate);
        if candidate != *best && search.holds(&candidate) {
            *best = candidate;
        }
    }
}

/// Cuts the run short: just enough horizon for the remaining faults to
/// play out plus the settle window.
fn truncate_horizon(best: &mut Schedule, search: &mut Search) {
    let needed_us = best.last_fault_at().max(FAULT_START_US) + SETTLE_US;
    let minimal_ms = needed_us.div_ceil(MILLIS).div_ceil(500) * 500;
    if minimal_ms >= best.knobs.horizon_ms {
        return;
    }
    let mut candidate = best.clone();
    candidate.knobs.horizon_ms = minimal_ms;
    if search.holds(&candidate) {
        *best = candidate;
    }
}

fn max_replica_ref(s: &Schedule) -> usize {
    s.entries
        .iter()
        .flat_map(|(_, f)| match *f {
            Fault::Crash(a)
            | Fault::Recover(a)
            | Fault::ClockJump(a, _)
            | Fault::ClockFreeze(a, _)
            | Fault::ClockDrift(a, _, _) => vec![a.index()],
            Fault::Partition(a, b) | Fault::Heal(a, b) => vec![a.index(), b.index()],
            Fault::LinkDelay(a, b, _) | Fault::LinkJitter(a, b, _) => {
                vec![a.index(), b.index()]
            }
        })
        .max()
        .unwrap_or(0)
}

/// Mirrors the generator's survivability rules: minority down, every
/// crash recovered, partitions healed, link chaos cleared, nothing
/// scheduled inside the settle window.
pub fn survivable(s: &Schedule) -> bool {
    let hi = (s.knobs.horizon_ms * MILLIS).saturating_sub(SETTLE_US);
    let max_down = (s.knobs.replicas - 1) / 2;
    let mut down = vec![false; s.knobs.replicas];
    let mut cut: isize = 0;
    let mut chaotic: std::collections::HashMap<(usize, usize), bool> = Default::default();
    for &(at, f) in &s.entries {
        if at > hi {
            return false;
        }
        match f {
            Fault::Crash(r) => {
                if r.index() >= down.len() || down[r.index()] || cut > 0 {
                    return false;
                }
                down[r.index()] = true;
                if down.iter().filter(|&&d| d).count() > max_down {
                    return false;
                }
            }
            Fault::Recover(r) => {
                if r.index() >= down.len() || !down[r.index()] {
                    return false;
                }
                down[r.index()] = false;
            }
            Fault::Partition(_, _) => {
                if down.iter().any(|&d| d) {
                    return false;
                }
                cut += 1;
            }
            Fault::Heal(_, _) => {
                cut -= 1;
                if cut < 0 {
                    return false;
                }
            }
            Fault::LinkDelay(a, b, d) | Fault::LinkJitter(a, b, d) => {
                chaotic.insert((a.index(), b.index()), d > 0);
            }
            Fault::ClockJump(_, _) | Fault::ClockFreeze(_, _) | Fault::ClockDrift(_, _, _) => {}
        }
    }
    down.iter().all(|&d| !d) && cut == 0 && chaotic.values().all(|&on| !on)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Knobs, ProtocolKind};
    use rsm_core::ReplicaId;

    fn knobs() -> Knobs {
        Knobs {
            replicas: 3,
            clients_per_site: 3,
            read_pct: 20,
            cas_pct: 20,
            batch_max: 8,
            checkpoint_every: 32,
            session_window: 4,
            pre_vote: false,
            horizon_ms: 6_000,
            latency_us: 20_000,
            jitter_us: 2_000,
        }
    }

    #[test]
    fn survivable_accepts_paired_faults_and_rejects_orphans() {
        let base = Schedule {
            seed: 1,
            protocol: ProtocolKind::ClockRsm,
            knobs: knobs(),
            entries: vec![
                (1_000 * MILLIS, Fault::Crash(ReplicaId::new(1))),
                (2_000 * MILLIS, Fault::Recover(ReplicaId::new(1))),
            ],
            canary: false,
        };
        assert!(survivable(&base));

        let orphan = Schedule {
            entries: vec![(1_000 * MILLIS, Fault::Crash(ReplicaId::new(1)))],
            ..base.clone()
        };
        assert!(!survivable(&orphan));

        let late = Schedule {
            entries: vec![(5_900 * MILLIS, Fault::ClockJump(ReplicaId::new(0), 1_000))],
            ..base.clone()
        };
        assert!(!survivable(&late));

        let quorum_loss = Schedule {
            entries: vec![
                (1_000 * MILLIS, Fault::Crash(ReplicaId::new(1))),
                (1_100 * MILLIS, Fault::Crash(ReplicaId::new(2))),
                (2_000 * MILLIS, Fault::Recover(ReplicaId::new(1))),
                (2_000 * MILLIS, Fault::Recover(ReplicaId::new(2))),
            ],
            ..base
        };
        assert!(!survivable(&quorum_loss));
    }

    #[test]
    fn shrink_minimizes_a_canary_failure() {
        // A deliberately noisy canary schedule: one load-bearing
        // partition window (client site cut from the leader) buried
        // under irrelevant chaos.
        let noisy = Schedule {
            seed: 5,
            protocol: ProtocolKind::PaxosBcast,
            knobs: Knobs {
                horizon_ms: 5_500,
                ..knobs()
            },
            entries: vec![
                (900 * MILLIS, Fault::ClockJump(ReplicaId::new(2), 40_000)),
                (
                    1_000 * MILLIS,
                    Fault::LinkJitter(ReplicaId::new(0), ReplicaId::new(2), 5_000),
                ),
                (
                    1_200 * MILLIS,
                    Fault::Partition(ReplicaId::new(0), ReplicaId::new(1)),
                ),
                (
                    1_300 * MILLIS,
                    Fault::ClockDrift(ReplicaId::new(2), 80_000, 300_000),
                ),
                (
                    1_600 * MILLIS,
                    Fault::LinkJitter(ReplicaId::new(0), ReplicaId::new(2), 0),
                ),
                (
                    1_700 * MILLIS,
                    Fault::ClockFreeze(ReplicaId::new(2), 100_000),
                ),
                (
                    2_700 * MILLIS,
                    Fault::Heal(ReplicaId::new(0), ReplicaId::new(1)),
                ),
            ],
            canary: true,
        };
        let failure = exec::run(&noisy).expect("noisy canary must fail");
        assert_eq!(failure.kind, FailureKind::Duplicate);

        let out = shrink(&noisy, &failure, 60);
        assert_eq!(out.failure.kind, FailureKind::Duplicate);
        assert!(
            out.minimized.entries.len() <= 2,
            "expected the crash pair (or less), got {:?}",
            out.minimized.entries
        );
        // The reproducer must still reproduce.
        let replay = exec::run(&out.minimized).expect("minimized must still fail");
        assert_eq!(replay.kind, FailureKind::Duplicate);
    }
}
