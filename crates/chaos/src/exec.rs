//! Schedule execution and oracle evaluation.
//!
//! [`run`] turns a [`Schedule`] into a deterministic simulator run and
//! grades the result against every oracle the harness exposes: the
//! linearizability checkers, replica snapshot agreement, CAS-chain
//! integrity, log boundedness under compaction, and post-fault liveness.
//! A `None` return means the schedule passed; `Some(Failure)` carries a
//! stable [`FailureKind`] (the shrinker's fixed point) plus a
//! human-readable detail string.

use clock_rsm::ClockRsmConfig;
use harness::{run_latency, ExperimentConfig, ExperimentResult, ProtocolChoice};
use rsm_core::batch::BatchPolicy;
use rsm_core::checkpoint::CheckpointPolicy;
use rsm_core::lease::LeaseConfig;
use rsm_core::matrix::LatencyMatrix;
use rsm_core::time::{Micros, MILLIS};
use rsm_obs::ObsConfig;

use crate::gen::SETTLE_US;
use crate::schedule::{ProtocolKind, Schedule};

/// Warmup before the measured window opens.
pub const WARMUP_US: Micros = 100 * MILLIS;

/// Client retry timeout; well above any generated link delay so a retry
/// implies a genuinely lost reply, not an in-flight one.
const RETRY_US: Micros = 800 * MILLIS;

/// Initial Paxos leader (matches the failover test suite).
const PAXOS_LEADER: u16 = 1;

/// Compacted logs must stay under this many live entries; generated
/// horizons commit far more commands than this, so an uncompacted log
/// crosses it comfortably.
const LOG_BOUND: usize = 2_000;

/// What an oracle caught. The shrinker preserves this exact kind while
/// minimizing, so a shrunk reproducer still demonstrates the original
/// class of failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The same client command applied more than once on some replica.
    Duplicate,
    /// Replica histories are not fragments of one total order.
    TotalOrder,
    /// A replica's committed timestamps regressed.
    Monotonic,
    /// A commit violated real-time (issue/reply) ordering.
    RealTime,
    /// A read returned a value no linearization point explains.
    ReadValue,
    /// Final replica state hashes diverged.
    SnapshotDivergence,
    /// A private-key CAS chain broke (lost or misordered write).
    CasChainBroken,
    /// A compacting replica's log grew without bound.
    LogUnbounded,
    /// Commits did not resume after the last fault cleared.
    Stalled,
    /// The instrumentation itself misbehaved: a counter decreased
    /// between the mid-run and final snapshots, or a replica's
    /// executed-command counter disagrees with its commit history
    /// length (the basis of the total-order check).
    MetricRegression,
}

impl FailureKind {
    /// Short name used in artifacts and test labels.
    pub fn name(self) -> &'static str {
        match self {
            FailureKind::Duplicate => "duplicate",
            FailureKind::TotalOrder => "total-order",
            FailureKind::Monotonic => "monotonic",
            FailureKind::RealTime => "real-time",
            FailureKind::ReadValue => "read-value",
            FailureKind::SnapshotDivergence => "snapshot-divergence",
            FailureKind::CasChainBroken => "cas-chain-broken",
            FailureKind::LogUnbounded => "log-unbounded",
            FailureKind::Stalled => "stalled",
            FailureKind::MetricRegression => "metric-regression",
        }
    }
}

/// A graded oracle violation. `detail` is deterministic for a given
/// schedule — the same seed reproduces it byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// Which oracle fired.
    pub kind: FailureKind,
    /// Deterministic human-readable evidence.
    pub detail: String,
}

/// Maps a schedule's protocol to the harness cluster choice, with the
/// failure-handling configuration each protocol needs to survive the
/// generated fault programs.
pub fn protocol_choice(s: &Schedule) -> ProtocolChoice {
    let lease = if s.knobs.pre_vote {
        LeaseConfig::after(400 * MILLIS).with_pre_vote()
    } else {
        LeaseConfig::after(400 * MILLIS)
    };
    match s.protocol {
        ProtocolKind::ClockRsm => ProtocolChoice::clock_rsm_with(
            ClockRsmConfig::default()
                .with_delta_us(Some(50 * MILLIS))
                .with_failure_detection(Some(400 * MILLIS))
                .with_synod_retry_us(100 * MILLIS)
                .with_reconfig_retry_us(100 * MILLIS),
        ),
        ProtocolKind::Paxos => ProtocolChoice::paxos_failover(PAXOS_LEADER, lease),
        ProtocolKind::PaxosBcast => ProtocolChoice::paxos_bcast_failover(PAXOS_LEADER, lease),
        ProtocolKind::Mencius => {
            if s.knobs.checkpoint_every > 0 {
                // A finite history cap puts retention pressure on
                // recovery paths, the same shape long-outage tests use.
                ProtocolChoice::mencius_with_history_cap(64)
            } else {
                ProtocolChoice::mencius()
            }
        }
    }
}

/// Maps a schedule to the harness experiment configuration.
pub fn experiment_config(s: &Schedule) -> ExperimentConfig {
    let k = &s.knobs;
    let mut cfg = ExperimentConfig::new(LatencyMatrix::uniform(k.replicas, k.latency_us))
        .seed(s.seed)
        .jitter_us(k.jitter_us)
        .clients_per_site(k.clients_per_site)
        .think_max_us(30 * MILLIS)
        .warmup_us(WARMUP_US)
        .duration_us(k.horizon_ms * MILLIS)
        .read_fraction(f64::from(k.read_pct) / 100.0)
        .cas_fraction(f64::from(k.cas_pct) / 100.0)
        .client_retry_us(RETRY_US)
        .record_ops(true)
        .session_canary(s.canary)
        // Every chaos run is instrumented (full span sampling), so the
        // swarm fuzzes the observability layer alongside the protocols:
        // the metric oracle below grades the counters it produces.
        .observe(ObsConfig::all());
    if k.batch_max > 0 {
        cfg = cfg.batch(BatchPolicy::max(k.batch_max));
    }
    if k.checkpoint_every > 0 {
        cfg = cfg.checkpoint(CheckpointPolicy::every(k.checkpoint_every).with_compaction(true));
    }
    if k.session_window > 0 {
        cfg = cfg.session_window(k.session_window);
    }
    for &(at, f) in &s.entries {
        cfg = cfg.fault(at, f);
    }
    cfg
}

/// Executes a schedule and grades it. Deterministic: the same schedule
/// returns the same outcome, byte for byte.
pub fn run(s: &Schedule) -> Option<Failure> {
    let result = run_latency(protocol_choice(s), &experiment_config(s));
    evaluate(s, &result)
}

/// Grades an experiment result against every oracle, most specific
/// first. The ordering makes the failure kind stable under shrinking:
/// e.g. a duplicate apply can knock several checkers over, but it is
/// always classified as [`FailureKind::Duplicate`].
pub fn evaluate(s: &Schedule, r: &ExperimentResult) -> Option<Failure> {
    let violation = || r.checks.violation.clone().unwrap_or_default();
    if !r.checks.no_duplicates_ok {
        return Some(Failure {
            kind: FailureKind::Duplicate,
            detail: violation(),
        });
    }
    if !r.checks.total_order_ok {
        return Some(Failure {
            kind: FailureKind::TotalOrder,
            detail: violation(),
        });
    }
    if !r.checks.monotonic_ok {
        return Some(Failure {
            kind: FailureKind::Monotonic,
            detail: violation(),
        });
    }
    if !r.checks.real_time_ok {
        return Some(Failure {
            kind: FailureKind::RealTime,
            detail: violation(),
        });
    }
    if !r.checks.read_values_ok {
        return Some(Failure {
            kind: FailureKind::ReadValue,
            detail: violation(),
        });
    }
    if !r.snapshots_agree {
        return Some(Failure {
            kind: FailureKind::SnapshotDivergence,
            detail: format!(
                "replica state hashes diverged (commits {:?})",
                r.commit_counts
            ),
        });
    }
    if r.cas_failures > 0 {
        return Some(Failure {
            kind: FailureKind::CasChainBroken,
            detail: format!(
                "{} of {} private-key CAS ops failed",
                r.cas_failures, r.cas_count
            ),
        });
    }
    // Clock-RSM is exempt: with failure detection on (which [`run`]
    // always configures, so crashes are survivable) it keeps the full
    // prepared-command history for reconfiguration and skips compaction
    // by design — see `ClockRsm::keeps_history`.
    if s.knobs.checkpoint_every > 0 && s.protocol != ProtocolKind::ClockRsm {
        if let Some((i, &len)) = r
            .log_lens
            .iter()
            .enumerate()
            .find(|&(_, &len)| len > LOG_BOUND)
        {
            return Some(Failure {
                kind: FailureKind::LogUnbounded,
                detail: format!(
                    "replica {i} holds {len} log entries despite compaction \
                     every {} commits",
                    s.knobs.checkpoint_every
                ),
            });
        }
    }
    // Liveness: the generator clears every fault effect SETTLE_US before
    // the end of the horizon, so commits must flow in the final stretch.
    let end = WARMUP_US + s.knobs.horizon_ms * MILLIS;
    let tail = end - MILLIS * 1_000;
    let alive = (0..r.commit_times.len()).any(|i| r.last_commit_at(i).is_some_and(|t| t >= tail));
    if !alive {
        return Some(Failure {
            kind: FailureKind::Stalled,
            detail: format!(
                "no commits after t={tail}us (last fault at t={}us, settle {}us)",
                s.last_fault_at(),
                SETTLE_US
            ),
        });
    }
    // The instrumentation oracle (graded only on observed runs):
    // counters are monotone — the final snapshot can never be below the
    // mid-run one — and each replica's executed-command counter must
    // equal its commit count, the history length every ordering check
    // above was graded on. Crash-recovery replays count on both sides,
    // so the equality survives any fault program.
    if let (Some(mid), Some(fin)) = (&r.metrics_mid, &r.metrics) {
        for (name, &at_mid) in &mid.counters {
            let at_end = fin.counters.get(name).copied().unwrap_or(0);
            if at_end < at_mid {
                return Some(Failure {
                    kind: FailureKind::MetricRegression,
                    detail: format!("counter {name} regressed {at_mid} -> {at_end}"),
                });
            }
        }
        for (i, &commits) in r.commit_counts.iter().enumerate() {
            let counted = fin
                .counters
                .get(&format!("r{i}.commands.executed"))
                .copied()
                .unwrap_or(0);
            if counted != commits {
                return Some(Failure {
                    kind: FailureKind::MetricRegression,
                    detail: format!(
                        "replica {i}: executed-command counter {counted} != \
                         commit history length {commits}"
                    ),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Knobs;
    use harness::Fault;
    use rsm_core::ReplicaId;

    fn quick_knobs() -> Knobs {
        Knobs {
            replicas: 3,
            clients_per_site: 2,
            read_pct: 20,
            cas_pct: 20,
            batch_max: 0,
            checkpoint_every: 0,
            session_window: 0,
            pre_vote: false,
            horizon_ms: 4_000,
            latency_us: 5_000,
            jitter_us: 0,
        }
    }

    #[test]
    fn clean_schedules_pass_every_oracle() {
        for protocol in ProtocolKind::ALL {
            let s = Schedule {
                seed: 11,
                protocol,
                knobs: quick_knobs(),
                entries: vec![],
                canary: false,
            };
            assert_eq!(run(&s), None, "{}", protocol.name());
        }
    }

    /// A partition between site 0's clients and the leader (replica 1):
    /// the forwarded command and its retries stack behind the cut and
    /// are all decided at heal — duplicates iff dedup is bypassed.
    fn canary_schedule(protocol: ProtocolKind) -> Schedule {
        Schedule {
            seed: 3,
            protocol,
            knobs: Knobs {
                horizon_ms: 5_500,
                ..quick_knobs()
            },
            entries: vec![
                (
                    1_200 * MILLIS,
                    Fault::Partition(ReplicaId::new(0), ReplicaId::new(1)),
                ),
                (
                    2_700 * MILLIS,
                    Fault::Heal(ReplicaId::new(0), ReplicaId::new(1)),
                ),
            ],
            canary: true,
        }
    }

    #[test]
    fn canary_partition_schedule_trips_the_duplicate_oracle() {
        for protocol in [ProtocolKind::Paxos, ProtocolKind::PaxosBcast] {
            let s = canary_schedule(protocol);
            let failure = run(&s).expect("canary must fail");
            assert_eq!(failure.kind, FailureKind::Duplicate, "{}", failure.detail);
            // Same schedule, canary disarmed: the dedup window absorbs
            // the retries and every oracle passes.
            let fixed = Schedule { canary: false, ..s };
            assert_eq!(run(&fixed), None, "{}", protocol.name());
        }
    }

    #[test]
    fn failures_replay_byte_for_byte() {
        let s = canary_schedule(ProtocolKind::PaxosBcast);
        let a = run(&s);
        let b = run(&s);
        assert_eq!(a, b);
        assert!(a.is_some());
    }
}
